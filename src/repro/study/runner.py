"""The study runner: builds, runs, and flushes one simulated study.

:class:`DeltaStudy` is the library's main entry point on the generation
side.  It assembles the cluster, scheduler, ops layer, fault injector,
noise generator, and utilization sampler from a
:class:`~repro.study.config.StudyConfig`, runs the discrete-event
simulation over the full measurement window, and writes the on-disk
artifacts the analysis pipeline consumes.

    >>> from pathlib import Path
    >>> from repro import DeltaStudy, StudyConfig
    >>> study = DeltaStudy(StudyConfig.small())
    >>> artifacts = study.run(Path("/tmp/delta-run"))   # doctest: +SKIP
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterator, List, Optional, Tuple

import itertools

from ..calibration.hopper import HopperProjection, apply_projection
from ..cluster.inventory import Inventory
from ..cluster.topology import Cluster, DELTA_A100_GPUS
from ..core.arch import Architecture
from ..core.exceptions import SimulationInterrupted
from ..core.timebase import DAY, HOUR
from ..faults.config import scale_counts
from ..faults.injector import FaultInjector
from ..obs import Telemetry
from ..ops.manager import OpsManager
from ..ops.repair import RepairTimeModel
from ..recovery.machine import GangRecoveryManager
from ..sim.checkpoint import (
    CheckpointConfig,
    CheckpointRecorder,
    RunCheckpoint,
)
from ..sim.engine import Engine
from ..sim.rng import RngRegistry
from ..slurm.accounting import AccountingWriter
from ..slurm.scheduler import Scheduler
from ..slurm.types import JobRequest
from ..syslog.noise import generate_noise
from ..syslog.records import LogBus
from ..syslog.writer import write_day_partitioned
from ..workload.generator import WorkloadGenerator
from .artifacts import StudyArtifacts
from .config import StudyConfig


class _JobFeeder:
    """Feeds job submissions into the engine one event at a time.

    Keeps at most one pending submission event on the heap regardless
    of stream length, so multi-million-job runs do not pre-materialize
    millions of closures.
    """

    def __init__(
        self, engine: Engine, scheduler: Scheduler, requests: List[JobRequest]
    ) -> None:
        self._engine = engine
        self._scheduler = scheduler
        self._iterator: Iterator[JobRequest] = iter(requests)
        self._advance()

    def _advance(self) -> None:
        request = next(self._iterator, None)
        if request is None:
            return
        self._engine.schedule(
            max(request.submit_time, self._engine.now),
            lambda r=request: self._submit(r),
            priority=-5,
            label="submit",
        )

    def _submit(self, request: JobRequest) -> None:
        self._scheduler.submit(request)
        self._advance()


def _build_injectors(
    cfg: StudyConfig,
    *,
    engine: Engine,
    cluster: Cluster,
    scheduler,
    ops,
    log_bus,
    rngs: RngRegistry,
    metrics,
) -> List[FaultInjector]:
    """Build the run's fault injector(s).

    Homogeneous A100 shapes keep the historical single-injector path —
    same stream names, same arguments — so existing seeds remain
    byte-identical.  Heterogeneous shapes get one injector per
    architecture: the A100 sub-fleet runs the configured suite scaled
    to its GPU share of the Delta calibration fleet, and the GH200
    sub-fleet runs the Hopper projection applied to that same suite
    (so ablations carry over), scaled likewise.  Injectors share one
    episode-id counter so ground-truth episode ids stay unique.
    """
    shape = cfg.cluster_shape
    if shape.gh200_nodes == 0:
        return [
            FaultInjector(
                engine=engine,
                cluster=cluster,
                scheduler=scheduler,
                ops=ops,
                log_bus=log_bus,
                suite=cfg.fault_suite,
                window=cfg.window,
                rngs=rngs,
                fault_scale=cfg.fault_scale,
                metrics=metrics,
            )
        ]
    projection = (
        cfg.hopper_projection
        if cfg.hopper_projection is not None
        else HopperProjection()
    )
    episode_ids = itertools.count(1)
    injectors: List[FaultInjector] = []
    for arch in shape.architectures:
        if arch is Architecture.A100:
            suite = scale_counts(
                cfg.fault_suite, shape.gpu_count_for(arch) / DELTA_A100_GPUS
            )
        else:
            suite = scale_counts(
                apply_projection(cfg.fault_suite.without_episode(), projection),
                shape.gpu_count_for(arch) / DELTA_A100_GPUS,
            )
        injector = FaultInjector(
            engine=engine,
            cluster=cluster,
            scheduler=scheduler,
            ops=ops,
            log_bus=log_bus,
            suite=suite,
            window=cfg.window,
            rngs=rngs,
            fault_scale=cfg.fault_scale,
            metrics=metrics,
            stream_prefix=f"arch.{arch.value}.",
            nodes=cluster.gpu_nodes_for(arch),
            episode_ids=episode_ids,
        )
        injectors.append(injector)
    return injectors


def _merged_logical_events(injectors: List[FaultInjector]):
    """Ground truth across injectors, time-ordered.

    The single-injector case returns the list untouched (creation
    order), preserving the historical artifact byte-for-byte.
    """
    if len(injectors) == 1:
        return injectors[0].logical_events
    merged = [e for injector in injectors for e in injector.logical_events]
    merged.sort(key=lambda e: e.time)
    return merged


class DeltaStudy:
    """One simulated Delta resilience study."""

    def __init__(self, config: StudyConfig) -> None:
        self._config = config

    @property
    def config(self) -> StudyConfig:
        """The run's configuration."""
        return self._config

    def run(
        self,
        output_dir: Optional[Path] = None,
        telemetry: Optional[Telemetry] = None,
        *,
        checkpoint: Optional[CheckpointConfig] = None,
        resume: bool = False,
        on_engine: Optional[Callable[[Engine], None]] = None,
        interrupt_at_day: Optional[float] = None,
    ) -> StudyArtifacts:
        """Run the full simulation; optionally write on-disk artifacts.

        Args:
            output_dir: where to write ``syslog/``, ``inventory.json``,
                ``sacct.csv``, and ``truth.csv``.  ``None`` keeps the
                run memory-only (useful for tests that only need the
                ground truth).
            telemetry: optional :class:`~repro.obs.Telemetry`; when
                enabled the run is traced (span timestamps on the
                simulation clock — DESIGN §9), every subsystem feeds
                the metrics registry, and phase events are logged.
            checkpoint: optional engine checkpoint configuration; when
                given, the run writes a replay-verified watermark chain
                at the configured sim-time cadence (DESIGN §10).
            resume: with ``checkpoint``, verify an existing watermark
                chain while replaying (raises
                :class:`~repro.core.exceptions.CheckpointError` on
                divergence) before extending it.  A missing or damaged
                checkpoint file simply starts a fresh chain.
            on_engine: hook invoked with the built :class:`Engine`
                before the run starts — the campaign chaos harness uses
                it to plant process-kill events at a sim-time.
            interrupt_at_day: crash-recovery drill — raise
                :class:`~repro.core.exceptions.SimulationInterrupted`
                when the simulation clock reaches this day.  Checkpoint
                records written before the interrupt stay valid.

        Returns:
            the :class:`~repro.study.artifacts.StudyArtifacts`.
        """
        cfg = self._config
        tel = telemetry if telemetry is not None else Telemetry.disabled()
        metrics = tel.metrics if tel.enabled else None
        with tel.tracer.span("simulate", seed=cfg.seed):
            with tel.tracer.span("build"):
                cluster = Cluster(cfg.cluster_shape)
                cluster.validate()
                rngs = RngRegistry(cfg.seed)
                engine = Engine(horizon=cfg.window.end, metrics=metrics)
                # Sim-domain telemetry keeps simulation time, never the
                # wall clock: same seed, byte-identical artifacts.
                tel.set_clock(lambda: engine.now)
                log_bus = LogBus()
                scheduler = Scheduler(engine, cluster, metrics=metrics)
                repair = RepairTimeModel(cfg.repair, rngs.stream("ops.repair"))
                ops = OpsManager(
                    engine=engine,
                    cluster=cluster,
                    scheduler=scheduler,
                    repair_model=repair,
                    policy=cfg.ops_policy,
                    window=cfg.window,
                    rng=rngs.stream("ops.detection"),
                    on_event=log_bus.emit,
                    metrics=metrics,
                )
                injectors = _build_injectors(
                    cfg,
                    engine=engine,
                    cluster=cluster,
                    scheduler=scheduler,
                    ops=ops,
                    log_bus=log_bus,
                    rngs=rngs,
                    metrics=metrics,
                )
            recorder: Optional[CheckpointRecorder] = None
            if checkpoint is not None:
                loaded = (
                    RunCheckpoint.load(checkpoint.path) if resume else None
                )
                recorder = CheckpointRecorder(
                    checkpoint,
                    engine,
                    rngs,
                    cfg.digest(),
                    resume_from=loaded,
                    metrics=metrics,
                )
                recorder.arm()
            if interrupt_at_day is not None:

                def _interrupt() -> None:
                    raise SimulationInterrupted(
                        f"interrupted at sim day {interrupt_at_day:.2f} "
                        f"(crash-recovery drill)"
                    )

                engine.schedule(
                    interrupt_at_day * DAY,
                    _interrupt,
                    priority=-100,
                    label="chaos:interrupt",
                )
            if on_engine is not None:
                on_engine(engine)
            tel.logger.event(
                "simulate.start",
                seed=cfg.seed,
                horizon_days=cfg.window.end / 86400.0,
                gpu_nodes=cfg.cluster_shape.gpu_node_count,
            )
            with tel.tracer.span("arm"):
                for injector in injectors:
                    injector.arm()
                recovery_manager: Optional[GangRecoveryManager] = None
                if cfg.recovery is not None:
                    recovery_manager = GangRecoveryManager(
                        engine=engine,
                        cluster=cluster,
                        scheduler=scheduler,
                        log_bus=log_bus,
                        policy=cfg.recovery,
                        rng=rngs.stream("recovery"),
                        metrics=metrics,
                    )
                    recovery_manager.arm()

            with tel.tracer.span("workload"):
                generator = WorkloadGenerator(
                    cfg.workload, rngs.stream("workload")
                )
                requests = generator.generate(cfg.window)
                _JobFeeder(engine, scheduler, requests)

            utilization_samples: List[Tuple[float, float]] = []
            interval = cfg.utilization_sample_interval_hours * HOUR

            def sample_utilization() -> None:
                utilization_samples.append(
                    (engine.now, scheduler.gpu_busy_fraction())
                )
                if engine.now + interval < engine.horizon:
                    engine.schedule_after(
                        interval, sample_utilization, label="sample:utilization"
                    )

            engine.schedule(
                interval / 2.0, sample_utilization, label="sample:utilization"
            )

            with tel.tracer.span("engine-run") as run_span:
                engine.run()
                if run_span is not None:
                    run_span.set_attr("executed_events", engine.executed_events)
            if recorder is not None:
                recorder.finalize()
            engine.flush_metrics()
            logical_events = _merged_logical_events(injectors)
            tel.logger.event(
                "simulate.engine-done",
                executed_events=engine.executed_events,
                logical_errors=len(logical_events),
                job_records=len(scheduler.records),
            )

            # Benign noise and excluded XIDs never interact with the DES
            # state, so they are generated in one vectorized pass post-run.
            with tel.tracer.span("noise"):
                noise = generate_noise(
                    cfg.noise,
                    node_names=[n.name for n in cluster.nodes()],
                    gpu_node_names=[n.name for n in cluster.gpu_nodes()],
                    window=cfg.window,
                    rng=rngs.stream("syslog.noise"),
                )
                log_bus.extend(noise)
            if metrics is not None:
                metrics.counter(
                    "sim_log_lines_total",
                    "raw log lines on the bus (faults + ops + noise)",
                ).inc(len(log_bus))

            syslog_dir = inventory_path = sacct_path = truth_path = None
            if output_dir is not None:
                with tel.tracer.span("write-artifacts"):
                    output_dir.mkdir(parents=True, exist_ok=True)
                    syslog_dir = output_dir / "syslog"
                    write_day_partitioned(
                        syslog_dir,
                        log_bus.sorted_records(),
                        compress=cfg.compress_logs,
                    )
                    inventory_path = output_dir / "inventory.json"
                    Inventory.from_cluster(cluster).save(inventory_path)
                    sacct_path = output_dir / "sacct.csv"
                    truth_path = output_dir / "truth.csv"
                    with AccountingWriter(sacct_path, truth_path) as writer:
                        for record in sorted(
                            scheduler.records, key=lambda r: r.end_time
                        ):
                            writer.write(record)
            tel.logger.event(
                "simulate.done",
                log_lines=len(log_bus),
                downtime_records=len(ops.downtime_records),
            )

        artifacts = StudyArtifacts(
            output_dir=output_dir,
            syslog_dir=syslog_dir,
            inventory_path=inventory_path,
            sacct_path=sacct_path,
            truth_path=truth_path,
            window=cfg.window,
            node_count=cfg.cluster_shape.gpu_node_count,
            logical_events=logical_events,
            downtime_records=ops.downtime_records,
            job_records=scheduler.records,
            utilization_samples=utilization_samples,
            raw_log_lines=len(log_bus),
            recovery=(
                recovery_manager.summary()
                if recovery_manager is not None
                else None
            ),
        )
        if output_dir is not None:
            artifacts.save_result(output_dir / "result.json")
        return artifacts
