"""The study runner: builds, runs, and flushes one simulated study.

:class:`DeltaStudy` is the library's main entry point on the generation
side.  It assembles the cluster, scheduler, ops layer, fault injector,
noise generator, and utilization sampler from a
:class:`~repro.study.config.StudyConfig`, runs the discrete-event
simulation over the full measurement window, and writes the on-disk
artifacts the analysis pipeline consumes.

    >>> from pathlib import Path
    >>> from repro import DeltaStudy, StudyConfig
    >>> study = DeltaStudy(StudyConfig.small())
    >>> artifacts = study.run(Path("/tmp/delta-run"))   # doctest: +SKIP
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from ..cluster.inventory import Inventory
from ..cluster.topology import Cluster
from ..core.timebase import HOUR
from ..faults.injector import FaultInjector
from ..ops.manager import OpsManager
from ..ops.repair import RepairTimeModel
from ..sim.engine import Engine
from ..sim.rng import RngRegistry
from ..slurm.accounting import AccountingWriter
from ..slurm.scheduler import Scheduler
from ..slurm.types import JobRequest
from ..syslog.noise import generate_noise
from ..syslog.records import LogBus
from ..syslog.writer import write_day_partitioned
from ..workload.generator import WorkloadGenerator
from .artifacts import StudyArtifacts
from .config import StudyConfig


class _JobFeeder:
    """Feeds job submissions into the engine one event at a time.

    Keeps at most one pending submission event on the heap regardless
    of stream length, so multi-million-job runs do not pre-materialize
    millions of closures.
    """

    def __init__(
        self, engine: Engine, scheduler: Scheduler, requests: List[JobRequest]
    ) -> None:
        self._engine = engine
        self._scheduler = scheduler
        self._iterator: Iterator[JobRequest] = iter(requests)
        self._advance()

    def _advance(self) -> None:
        request = next(self._iterator, None)
        if request is None:
            return
        self._engine.schedule(
            max(request.submit_time, self._engine.now),
            lambda r=request: self._submit(r),
            priority=-5,
            label="submit",
        )

    def _submit(self, request: JobRequest) -> None:
        self._scheduler.submit(request)
        self._advance()


class DeltaStudy:
    """One simulated Delta resilience study."""

    def __init__(self, config: StudyConfig) -> None:
        self._config = config

    @property
    def config(self) -> StudyConfig:
        """The run's configuration."""
        return self._config

    def run(self, output_dir: Optional[Path] = None) -> StudyArtifacts:
        """Run the full simulation; optionally write on-disk artifacts.

        Args:
            output_dir: where to write ``syslog/``, ``inventory.json``,
                ``sacct.csv``, and ``truth.csv``.  ``None`` keeps the
                run memory-only (useful for tests that only need the
                ground truth).

        Returns:
            the :class:`~repro.study.artifacts.StudyArtifacts`.
        """
        cfg = self._config
        cluster = Cluster(cfg.cluster_shape)
        cluster.validate()
        rngs = RngRegistry(cfg.seed)
        engine = Engine(horizon=cfg.window.end)
        log_bus = LogBus()
        scheduler = Scheduler(engine, cluster)
        repair = RepairTimeModel(cfg.repair, rngs.stream("ops.repair"))
        ops = OpsManager(
            engine=engine,
            cluster=cluster,
            scheduler=scheduler,
            repair_model=repair,
            policy=cfg.ops_policy,
            window=cfg.window,
            rng=rngs.stream("ops.detection"),
            on_event=log_bus.emit,
        )
        injector = FaultInjector(
            engine=engine,
            cluster=cluster,
            scheduler=scheduler,
            ops=ops,
            log_bus=log_bus,
            suite=cfg.fault_suite,
            window=cfg.window,
            rngs=rngs,
            fault_scale=cfg.fault_scale,
        )
        injector.arm()

        generator = WorkloadGenerator(cfg.workload, rngs.stream("workload"))
        requests = generator.generate(cfg.window)
        _JobFeeder(engine, scheduler, requests)

        utilization_samples: List[Tuple[float, float]] = []
        interval = cfg.utilization_sample_interval_hours * HOUR

        def sample_utilization() -> None:
            utilization_samples.append(
                (engine.now, scheduler.gpu_busy_fraction())
            )
            if engine.now + interval < engine.horizon:
                engine.schedule_after(interval, sample_utilization)

        engine.schedule(interval / 2.0, sample_utilization)

        engine.run()

        # Benign noise and excluded XIDs never interact with the DES
        # state, so they are generated in one vectorized pass post-run.
        noise = generate_noise(
            cfg.noise,
            node_names=[n.name for n in cluster.nodes()],
            gpu_node_names=[n.name for n in cluster.gpu_nodes()],
            window=cfg.window,
            rng=rngs.stream("syslog.noise"),
        )
        log_bus.extend(noise)

        syslog_dir = inventory_path = sacct_path = truth_path = None
        if output_dir is not None:
            output_dir.mkdir(parents=True, exist_ok=True)
            syslog_dir = output_dir / "syslog"
            write_day_partitioned(
                syslog_dir, log_bus.sorted_records(), compress=cfg.compress_logs
            )
            inventory_path = output_dir / "inventory.json"
            Inventory.from_cluster(cluster).save(inventory_path)
            sacct_path = output_dir / "sacct.csv"
            truth_path = output_dir / "truth.csv"
            with AccountingWriter(sacct_path, truth_path) as writer:
                for record in sorted(
                    scheduler.records, key=lambda r: r.end_time
                ):
                    writer.write(record)

        return StudyArtifacts(
            output_dir=output_dir,
            syslog_dir=syslog_dir,
            inventory_path=inventory_path,
            sacct_path=sacct_path,
            truth_path=truth_path,
            window=cfg.window,
            node_count=cfg.cluster_shape.gpu_node_count,
            logical_events=injector.logical_events,
            downtime_records=ops.downtime_records,
            job_records=scheduler.records,
            utilization_samples=utilization_samples,
            raw_log_lines=len(log_bus),
        )
