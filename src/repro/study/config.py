"""Top-level study configuration.

:class:`StudyConfig` aggregates every subsystem's configuration into a
single object with Delta defaults.  Presets:

* :meth:`StudyConfig.delta` — the full 1170-day, 106-node study at a
  chosen job scale (the benchmark configuration).
* :meth:`StudyConfig.small` — a shrunk cluster and window for tests and
  quick examples; rates are kept at Delta levels so behaviour is
  representative even though absolute counts are small.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Optional

from ..cluster.topology import ClusterShape
from ..core.periods import StudyWindow
from ..faults.config import FaultSuiteConfig
from ..ops.manager import OpsPolicy
from ..ops.repair import RepairTimeConfig
from ..recovery.config import RecoveryPolicy
from ..syslog.noise import NoiseConfig
from ..workload.generator import WorkloadConfig
from ..calibration.delta import delta_fault_suite
from ..calibration.hopper import HopperProjection


@dataclass(frozen=True)
class StudyConfig:
    """Everything one simulation run needs.

    Attributes:
        seed: root seed for all random streams.
        cluster_shape: node mix (defaults to Delta's 106 A100 nodes).
        window: measurement window (defaults to the 1170-day study).
        fault_suite: calibrated fault models.
        workload: job-stream scaling and mix.
        ops_policy: SRE behaviour.
        repair: unavailable-duration model.
        noise: benign log traffic intensity.
        fault_scale: multiplier on all error onset rates (tests may
            shrink windows and boost rates to keep counts meaningful).
        utilization_sample_interval_hours: cadence of the GPU busy
            fraction sampler.
        compress_logs: gzip the per-day syslog files (the archival form
            of Delta's consolidated logs; the pipeline reads both).
        recovery: optional gang-job recovery policy; when set, gang
            jobs are injected and the recovery state machine runs
            (``None`` keeps runs byte-identical to pre-recovery
            builds).
        hopper_projection: multipliers for the Hopper sub-fleet of a
            heterogeneous shape (``gh200_nodes > 0``); ``None`` uses
            the default :class:`~repro.calibration.hopper.HopperProjection`.
            Ignored for homogeneous A100 shapes, which keep the
            historical single-injector code path byte-for-byte.
    """

    seed: int = 2022
    cluster_shape: ClusterShape = field(default_factory=ClusterShape)
    window: StudyWindow = field(default_factory=StudyWindow.delta_default)
    fault_suite: FaultSuiteConfig = field(default_factory=delta_fault_suite)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    ops_policy: OpsPolicy = field(default_factory=OpsPolicy)
    repair: RepairTimeConfig = field(default_factory=RepairTimeConfig)
    noise: NoiseConfig = field(default_factory=NoiseConfig)
    fault_scale: float = 1.0
    utilization_sample_interval_hours: float = 6.0
    compress_logs: bool = False
    recovery: Optional[RecoveryPolicy] = None
    hopper_projection: Optional[HopperProjection] = None

    def __post_init__(self) -> None:
        if self.fault_scale <= 0:
            raise ValueError("fault_scale must be positive")
        if self.utilization_sample_interval_hours <= 0:
            raise ValueError("utilization sample interval must be positive")

    def digest(self) -> str:
        """Deterministic hash of the full configuration.

        The engine checkpointer stamps this into the watermark chain so
        a ``--resume`` against a different configuration is refused
        instead of silently verified against the wrong digests.  The
        config is a tree of frozen dataclasses, enums, and numbers, so
        its ``repr`` is stable for equal configurations.
        """
        return hashlib.sha256(repr(self).encode("utf-8")).hexdigest()

    @classmethod
    def delta(
        cls,
        seed: int = 2022,
        job_scale: float = 0.05,
        fault_scale: float = 1.0,
    ) -> "StudyConfig":
        """The full Delta study at a chosen job scale.

        ``job_scale=0.05`` runs ~72k GPU jobs plus ~84k CPU jobs over
        the 1170-day window — enough for job-impact statistics while a
        full run stays around a minute.
        """
        return cls(
            seed=seed,
            workload=WorkloadConfig(job_scale=job_scale),
            fault_scale=fault_scale,
        )

    @classmethod
    def delta_workload_focused(
        cls, seed: int = 2022, job_scale: float = 0.05
    ) -> "StudyConfig":
        """Delta with faults thinned to a trace level (for Table III).

        At reduced job scale the full-scale error flux terminates far
        more of the (scaled) job population than the 0.23% seen on the
        real machine, distorting elapsed-time tails.  The job-population
        experiment (E3/E7) therefore runs with ``fault_scale=0.02``,
        restoring the paper's regime in which GPU errors are a
        negligible perturbation of the workload statistics.
        """
        return cls(
            seed=seed,
            workload=WorkloadConfig(
                job_scale=job_scale, error_kill_allowance=0.002
            ),
            fault_scale=0.02,
        )

    @classmethod
    def small(
        cls,
        seed: int = 7,
        pre_days: float = 20.0,
        op_days: float = 60.0,
        job_scale: float = 0.02,
        fault_scale: float = 1.0,
        include_episode: bool = False,
    ) -> "StudyConfig":
        """A fast configuration for tests and quickstart examples.

        Shrinks the cluster (8 GPU nodes) and the window while keeping
        Table I's *count targets*: the calibration spreads the same
        expected number of logical errors over whatever window it is
        given, so even an 80-day run produces paper-scale counts for
        every event class and every code path fires.  Use
        ``fault_scale`` to thin the error volume further.
        """
        suite = delta_fault_suite(include_episode=include_episode)
        if include_episode:
            episode = suite.defective_episode
            assert episode is not None
            episode = replace(
                episode,
                start_day=min(2.0, pre_days / 4),
                end_day=min(5.0, pre_days / 2),
            )
            suite = replace(suite, defective_episode=episode)
        return cls(
            seed=seed,
            cluster_shape=ClusterShape(
                four_way_nodes=6, eight_way_nodes=2, cpu_nodes=2
            ),
            window=StudyWindow.scaled(pre_days=pre_days, op_days=op_days),
            fault_suite=suite,
            workload=WorkloadConfig(job_scale=job_scale, max_gpu_count=16),
            fault_scale=fault_scale,
            utilization_sample_interval_hours=2.0,
        )
