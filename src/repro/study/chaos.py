"""Process-level chaos for campaign workers.

PR 1 proved the Stage-II pipeline against corrupted *data*; this
module proves the campaign supervisor against misbehaving *processes*.
A seeded :class:`WorkerChaosConfig` decides, deterministically per
``(cell, attempt)``, whether a worker subprocess should die mid-run —
and how:

* ``kill`` — SIGKILL itself at a sim-time fraction of the horizon
  (models the OOM killer / a segfault: no cleanup, no exit status
  handshake);
* ``hang`` — stop making progress forever (models a wedged driver
  call; only the supervisor's wall-clock timeout can reclaim it);
* ``garbage-exit`` — exit immediately with a meaningless nonzero code
  and no result artifact (models a corrupted interpreter teardown).

Injection rides the :class:`~repro.sim.engine.Engine` event heap
(label prefix ``chaos:``, which the checkpoint digests exclude), so a
given seed kills a given attempt at exactly the same point in the
simulation every time — the supervisor's recovery paths are tested
reproducibly, and a retried attempt resuming from the killed
attempt's checkpoint chain still verifies.

``max_strikes_per_cell`` bounds how many attempts of one cell chaos
may sabotage, so a campaign with ``max_attempts > max_strikes_per_cell``
provably converges to full coverage.
"""

from __future__ import annotations

import hashlib
import os
import random
import signal
import time
from dataclasses import dataclass
from typing import Optional

from ..core.exceptions import ConfigurationError
from ..sim.engine import Engine

#: Chaos actions, in cumulative-probability order.
ACTION_KILL = "kill"
ACTION_HANG = "hang"
ACTION_GARBAGE = "garbage-exit"
ACTION_NONE = "none"

#: Exit code used by ``garbage-exit`` (deliberately unmapped).
GARBAGE_EXIT_CODE = 113


def _attempt_rng(seed: int, cell_id: str, attempt: int) -> random.Random:
    """A deterministic RNG keyed on (chaos seed, cell, attempt)."""
    key = f"{seed}:{cell_id}:{attempt}".encode("utf-8")
    return random.Random(int.from_bytes(hashlib.sha256(key).digest()[:8], "big"))


@dataclass(frozen=True)
class WorkerChaosConfig:
    """Seeded fault plan generator for campaign workers.

    Attributes:
        seed: chaos seed; independent of the simulation seeds.
        kill_probability: chance an attempt is SIGKILLed mid-run.
        hang_probability: chance an attempt hangs forever.
        garbage_exit_probability: chance an attempt exits with a
            garbage status and no result.
        max_strikes_per_cell: attempts beyond this index run clean, so
            retries converge.
        min_fraction / max_fraction: the sim-time trigger point is
            drawn uniformly from this range of the horizon.
    """

    seed: int = 0
    kill_probability: float = 0.0
    hang_probability: float = 0.0
    garbage_exit_probability: float = 0.0
    max_strikes_per_cell: int = 1
    min_fraction: float = 0.25
    max_fraction: float = 0.75

    def __post_init__(self) -> None:
        total = (
            self.kill_probability
            + self.hang_probability
            + self.garbage_exit_probability
        )
        if not 0.0 <= total <= 1.0:
            raise ConfigurationError(
                f"chaos action probabilities must sum to [0, 1], got {total}"
            )
        if not 0.0 <= self.min_fraction <= self.max_fraction <= 1.0:
            raise ConfigurationError(
                "chaos trigger fractions must satisfy "
                f"0 <= min <= max <= 1, got [{self.min_fraction}, "
                f"{self.max_fraction}]"
            )
        if self.max_strikes_per_cell < 0:
            raise ConfigurationError("max_strikes_per_cell must be >= 0")

    @classmethod
    def storm(cls, seed: int = 0, strikes: int = 1) -> "WorkerChaosConfig":
        """Every first-``strikes`` attempt dies, uniformly by mode."""
        return cls(
            seed=seed,
            kill_probability=0.4,
            hang_probability=0.3,
            garbage_exit_probability=0.3,
            max_strikes_per_cell=strikes,
        )

    def plan(self, cell_id: str, attempt: int) -> "WorkerChaosPlan":
        """The deterministic plan for one ``(cell, attempt)``.

        Attempts are 1-based; attempts beyond ``max_strikes_per_cell``
        always get the no-op plan.
        """
        if attempt > self.max_strikes_per_cell:
            return WorkerChaosPlan(action=ACTION_NONE, at_fraction=0.0)
        rng = _attempt_rng(self.seed, cell_id, attempt)
        draw = rng.random()
        if draw < self.kill_probability:
            action = ACTION_KILL
        elif draw < self.kill_probability + self.hang_probability:
            action = ACTION_HANG
        elif draw < (
            self.kill_probability
            + self.hang_probability
            + self.garbage_exit_probability
        ):
            action = ACTION_GARBAGE
        else:
            return WorkerChaosPlan(action=ACTION_NONE, at_fraction=0.0)
        fraction = self.min_fraction + rng.random() * (
            self.max_fraction - self.min_fraction
        )
        return WorkerChaosPlan(action=action, at_fraction=fraction)


@dataclass(frozen=True)
class WorkerChaosPlan:
    """What one worker attempt should do to itself, and when."""

    action: str
    at_fraction: float

    @property
    def is_noop(self) -> bool:
        return self.action == ACTION_NONE

    def to_json(self) -> dict:
        """JSON-serializable form (recorded in the campaign manifest)."""
        return {"action": self.action, "at_fraction": self.at_fraction}

    @classmethod
    def from_json(cls, payload: Optional[dict]) -> Optional["WorkerChaosPlan"]:
        if payload is None:
            return None
        return cls(
            action=str(payload["action"]),
            at_fraction=float(payload["at_fraction"]),
        )

    def arm(self, engine: Engine) -> None:
        """Plant the self-sabotage event on a worker's engine heap.

        The event label carries the ``chaos:`` prefix so checkpoint
        digests ignore it (a clean retry must still verify the killed
        attempt's watermark chain).
        """
        if self.is_noop:
            return
        engine.schedule(
            self.at_fraction * engine.horizon,
            self._execute,
            priority=-99,
            label=f"chaos:{self.action}",
        )

    def _execute(self) -> None:  # pragma: no cover - dies or loops forever
        if self.action == ACTION_KILL:
            os.kill(os.getpid(), signal.SIGKILL)
        elif self.action == ACTION_HANG:
            while True:
                time.sleep(0.25)
        elif self.action == ACTION_GARBAGE:
            os._exit(GARBAGE_EXIT_CODE)
