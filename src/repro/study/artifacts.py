"""Artifacts of one study run.

A run produces two kinds of output:

* **On-disk artifacts** — exactly what the paper's pipeline consumed:
  a day-partitioned syslog directory, the hardware inventory, and the
  Slurm accounting CSV (plus the validation-only ground-truth sidecar).
* **In-memory ground truth** — logical error events, downtime records,
  finished job records, utilization samples.  Validation tests compare
  pipeline output against these; the pipeline itself only reads the
  on-disk artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..core.atomicio import atomic_write_json
from ..core.periods import PeriodName, StudyWindow
from ..core.records import DowntimeRecord, GpuErrorEvent
from ..core.xid import EventClass
from ..recovery.machine import RecoverySummary
from ..slurm.types import JobRecord


@dataclass
class StudyArtifacts:
    """Everything a finished run leaves behind.

    Attributes:
        output_dir: root of the on-disk artifacts (``None`` when the
            run was memory-only).
        syslog_dir: directory of per-day syslog files.
        inventory_path: the hardware inventory JSON.
        sacct_path: the Slurm accounting CSV.
        truth_path: validation-only sidecar with kill causes/ML truth.
        window: the study window the run covered.
        node_count: number of A100 nodes simulated.
        logical_events: ground-truth logical errors, in emission order.
        downtime_records: node-unavailability episodes.
        job_records: finished jobs, in completion order.
        utilization_samples: (time, busy_fraction) samples.
        raw_log_lines: total raw syslog lines written.
        recovery: gang-recovery accounting when the run had a recovery
            policy, else ``None``.
    """

    output_dir: Path | None
    syslog_dir: Path | None
    inventory_path: Path | None
    sacct_path: Path | None
    truth_path: Path | None
    window: StudyWindow
    node_count: int
    logical_events: List[GpuErrorEvent] = field(default_factory=list)
    downtime_records: List[DowntimeRecord] = field(default_factory=list)
    job_records: List[JobRecord] = field(default_factory=list)
    utilization_samples: List[Tuple[float, float]] = field(default_factory=list)
    raw_log_lines: int = 0
    recovery: Optional[RecoverySummary] = None

    def logical_counts(self) -> Dict[PeriodName, Dict[EventClass, int]]:
        """Ground-truth logical-error counts by period and class."""
        counts: Dict[PeriodName, Dict[EventClass, int]] = {
            PeriodName.PRE_OPERATIONAL: {},
            PeriodName.OPERATIONAL: {},
        }
        for event in self.logical_events:
            period = self.window.period_of(event.time)
            bucket = counts[period]
            bucket[event.event_class] = bucket.get(event.event_class, 0) + 1
        return counts

    def mean_utilization(self, period: PeriodName) -> float:
        """Mean sampled GPU busy fraction over one period."""
        bounds = self.window.period(period)
        values = [
            u for t, u in self.utilization_samples if bounds.contains(t)
        ]
        if not values:
            return 0.0
        return sum(values) / len(values)

    def result_payload(self) -> Dict[str, object]:
        """The run reduced to a deterministic JSON-serializable summary.

        This is what a campaign worker reports back to the supervisor
        (written as ``result.json`` in the cell directory): the
        ground-truth logical-error counts per period and class — the
        inputs to the campaign's Table I/II aggregation — plus job,
        downtime, and utilization totals.  Equal runs produce equal
        payloads byte-for-byte, which is what lets the supervisor
        assert that a chaos-interrupted campaign converged to the same
        aggregates as an uninterrupted one.
        """
        counts = self.logical_counts()
        payload: Dict[str, object] = {
            "window_days": self.window.total_days,
            "node_count": self.node_count,
            "logical_errors": len(self.logical_events),
            "logical_counts": {
                period.value: {
                    event_class.value: n
                    for event_class, n in sorted(
                        bucket.items(), key=lambda item: item[0].value
                    )
                }
                for period, bucket in counts.items()
            },
            "downtime_episodes": len(self.downtime_records),
            "jobs_finished": len(self.job_records),
            "raw_log_lines": self.raw_log_lines,
            "mean_utilization": {
                period.value: round(self.mean_utilization(period), 9)
                for period in PeriodName
            },
        }
        # The key exists only on recovery runs, keeping pre-recovery
        # payloads (and the campaign determinism checks) byte-stable.
        if self.recovery is not None:
            payload["recovery"] = self.recovery.to_dict()
        return payload

    def save_result(self, path: Path) -> None:
        """Atomically write :meth:`result_payload` as ``result.json``."""
        atomic_write_json(path, self.result_payload(), indent=2)

    def summary(self) -> str:
        """A short human-readable run summary."""
        lines = [
            f"window: {self.window.total_days:.0f} days "
            f"({self.window.pre_operational.duration_days:.0f} pre-op "
            f"+ {self.window.operational.duration_days:.0f} op)",
            f"nodes: {self.node_count}",
            f"logical errors: {len(self.logical_events)}",
            f"raw log lines: {self.raw_log_lines}",
            f"jobs finished: {len(self.job_records)}",
            f"downtime episodes: {len(self.downtime_records)}",
        ]
        if self.recovery is not None:
            r = self.recovery
            lines.append(
                f"recovery: {r.gangs} gangs, {r.incidents} incidents, "
                f"goodput {r.goodput:.3f}, "
                f"mean ETTR {r.mean_ettr_minutes:.1f} min"
            )
        return "\n".join(lines)
