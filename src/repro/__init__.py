"""repro — reproduction of "Characterizing Modern GPU Resilience and
Impact in HPC Systems: A Case Study of A100 GPUs" (DSN 2025).

The library has two halves that mirror the paper's pipeline (Fig. 1):

* **Generation** (:class:`DeltaStudy`) — a discrete-event simulator of
  the Delta HPC system (106 A100 nodes, Slurm workload, calibrated GPU
  fault processes, SRE operations) that emits the raw artifacts the
  paper's authors collected: day-partitioned syslog with NVRM XID
  lines and a Slurm accounting database.
* **Analysis** (:mod:`repro.pipeline`, :mod:`repro.analysis`) — the
  paper's Stage-II/III processing: regex extraction, error coalescing,
  MTBE statistics (Table I), job-impact attribution (Table II), job
  population statistics (Table III), and availability (Figure 2).

Quickstart::

    from pathlib import Path
    from repro import DeltaStudy, StudyConfig

    artifacts = DeltaStudy(StudyConfig.small()).run(Path("out"))
    print(artifacts.summary())
"""

from .cluster import Cluster, ClusterShape
from .core import (
    ErrorCategory,
    EventClass,
    PeriodName,
    StudyWindow,
)
from .study import DeltaStudy, StudyArtifacts, StudyConfig

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "ClusterShape",
    "ErrorCategory",
    "EventClass",
    "PeriodName",
    "StudyWindow",
    "DeltaStudy",
    "StudyArtifacts",
    "StudyConfig",
    "__version__",
]
