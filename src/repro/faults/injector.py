"""The fault injector: drives every error process through the engine.

For each configured fault class the injector pre-draws onset times from
the calibrated arrival processes, schedules them on the simulation
engine, and — when an onset fires — executes the full consequence
chain:

1. render the NVRM log lines (with duplicate-line bursts) onto the
   log bus;
2. run the mechanistic recovery models (memory chain, NVLink CRC);
3. expose and probabilistically terminate the jobs the error reaches;
4. raise recovery requests with the SRE ops layer;
5. fire cross-class propagation (PMU → MMU).

The injector also keeps a ground-truth list of
:class:`~repro.core.records.GpuErrorEvent` used by validation tests to
check that Stage-II extraction + coalescing recovers exactly the
logical errors that occurred.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..cluster.gpu import GpuHealth, GpuState
from ..cluster.node import Node, NodeState
from ..cluster.topology import Cluster
from ..core.periods import PeriodName, StudyWindow
from ..core.records import GpuErrorEvent
from ..core.xid import EventClass, primary_xid
from ..gpu.memory import MemoryRecoveryModel
from ..gpu.nvlink import NvlinkFaultModel
from ..obs.metrics import NOOP
from ..ops.manager import OpsManager
from ..ops.repair import RecoveryKind
from ..sim.engine import Engine
from ..sim.rng import RngRegistry
from ..slurm.scheduler import Scheduler
from ..syslog.nvrm import render_event_line
from ..syslog.records import LogBus
from .arrivals import PersistentEpisodeProcess, PiecewisePoissonProcess
from .config import (
    FaultSuiteConfig,
    ImpactPolicy,
    KillScope,
    SimpleFaultConfig,
    TargetPolicy,
)

#: Probability split between the paired XID codes of a class.
_PAIRED_XID_SPLIT: Dict[EventClass, Tuple[Tuple[int, float], ...]] = {
    EventClass.GSP_ERROR: ((119, 0.8), (120, 0.2)),
    EventClass.PMU_SPI_ERROR: ((122, 0.85), (123, 0.15)),
}

#: Delay distribution for error→job-kill (must stay inside the paper's
#: 20-second attribution window).
_KILL_DELAY_LO = 0.5
_KILL_DELAY_HI = 12.0


class FaultInjector:
    """Schedules and executes every fault process of a study run.

    Args:
        engine: simulation kernel.
        cluster: the machine.
        scheduler: job scheduler (victim lookup and kills).
        ops: SRE ops manager (recovery requests).
        log_bus: destination for raw log lines.
        suite: the calibrated fault-suite configuration.
        window: study window.
        rngs: per-subsystem random streams.
        fault_scale: multiplier on all onset rates (tests shrink it
            together with the window).
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            per-class/per-XID injection counters are maintained when
            present.
        stream_prefix: prefix for every RNG stream name the injector
            derives.  The default empty prefix preserves the historical
            stream names (and therefore byte-identical artifacts for
            homogeneous runs); heterogeneous runs give each per-
            architecture injector its own prefix so their draws are
            independent.
        nodes: optional node subset this injector targets (per-
            architecture sub-fleets); ``None`` targets every GPU node.
        episode_ids: optional shared episode-id counter so several
            injectors on one engine keep ground-truth ids unique.
    """

    def __init__(
        self,
        engine: Engine,
        cluster: Cluster,
        scheduler: Scheduler,
        ops: OpsManager,
        log_bus: LogBus,
        suite: FaultSuiteConfig,
        window: StudyWindow,
        rngs: RngRegistry,
        fault_scale: float = 1.0,
        metrics=None,
        stream_prefix: str = "",
        nodes: Optional[List[Node]] = None,
        episode_ids: Optional[Iterator[int]] = None,
    ) -> None:
        if fault_scale <= 0:
            raise ValueError(f"fault_scale must be positive, got {fault_scale}")
        self._engine = engine
        self._cluster = cluster
        self._scheduler = scheduler
        self._ops = ops
        self._log_bus = log_bus
        self._suite = suite
        self._window = window
        self._rngs = rngs
        self._prefix = stream_prefix
        self._scale = fault_scale
        self._episode_ids = (
            episode_ids if episode_ids is not None else itertools.count(1)
        )
        self._gpu_nodes = (
            list(nodes) if nodes is not None else cluster.gpu_nodes()
        )
        if not self._gpu_nodes:
            raise ValueError("injector needs at least one target GPU node")
        self._nvlink_model = NvlinkFaultModel(
            cluster, suite.nvlink.link_model, self._stream("faults.nvlink.model")
        )
        self._memory_models = {
            PeriodName.PRE_OPERATIONAL: MemoryRecoveryModel(
                suite.memory_chain.pre_op.recovery,
                self._stream("faults.memory.pre_op"),
            ),
            PeriodName.OPERATIONAL: MemoryRecoveryModel(
                suite.memory_chain.op.recovery,
                self._stream("faults.memory.op"),
            ),
        }
        #: Ground truth: every logical error that occurred, in order of
        #: creation (validation only — the pipeline never sees this).
        self.logical_events: List[GpuErrorEvent] = []
        if metrics is None:
            self._m_injected = self._m_log_lines = self._m_kills = NOOP
        else:
            self._m_injected = metrics.counter(
                "faults_injected_total",
                "logical GPU errors injected, by event class and XID",
                labels=("event_class", "xid"),
            )
            self._m_log_lines = metrics.counter(
                "faults_log_lines_total",
                "NVRM log lines emitted (duplicate bursts included)",
            )
            self._m_kills = metrics.counter(
                "faults_kills_scheduled_total",
                "job kills scheduled, by causal event class",
                labels=("cause",),
            )

    def _stream(self, name: str) -> np.random.Generator:
        """Named RNG stream under this injector's prefix."""
        return self._rngs.stream(self._prefix + name)

    # ------------------------------------------------------------------
    # Arming: pre-draw arrivals and schedule onsets
    # ------------------------------------------------------------------

    def arm(self) -> None:
        """Draw all onset times and schedule them on the engine."""
        for cfg in self._suite.simple_faults:
            self._arm_simple(cfg)
        self._arm_memory_chain()
        self._arm_nvlink()
        if self._suite.defective_episode is not None:
            self._arm_defective_episode()

    def _arm_simple(self, cfg: SimpleFaultConfig) -> None:
        pre_rate, op_rate = cfg.onset_rates_per_hour(self._window)
        coupling = self._suite.utilization_coupling
        if coupling is not None and cfg.event_class in coupling.coupled_classes:
            pre_rate = coupling.derive_pre_op_rate(op_rate)
        process = PiecewisePoissonProcess(
            pre_rate * self._scale, op_rate * self._scale
        )
        rng = self._stream(f"faults.arrivals.{cfg.event_class.value}")
        for time in process.sample(rng, self._window):
            self._engine.schedule(
                float(time),
                lambda c=cfg: self._simple_onset(c),
                label=f"onset:{cfg.event_class.value}",
            )

    def _arm_memory_chain(self) -> None:
        pre_rate, op_rate = self._suite.memory_chain.onset_rates_per_hour(
            self._window
        )
        process = PiecewisePoissonProcess(
            pre_rate * self._scale, op_rate * self._scale
        )
        rng = self._stream("faults.arrivals.memory_chain")
        for time in process.sample(rng, self._window):
            self._engine.schedule(
                float(time), self._memory_onset, label="onset:memory"
            )

    def _arm_nvlink(self) -> None:
        cfg = self._suite.nvlink
        manifest_size = self._expected_nvlink_manifest_size()
        divisor = manifest_size * cfg.episode.mean_errors
        pre_rate = (
            cfg.pre_op_count
            / divisor
            / self._window.pre_operational.duration_hours
        )
        op_rate = cfg.op_count / divisor / self._window.operational.duration_hours
        process = PiecewisePoissonProcess(
            pre_rate * self._scale, op_rate * self._scale
        )
        rng = self._stream("faults.arrivals.nvlink")
        for time in process.sample(rng, self._window):
            self._engine.schedule(
                float(time), self._nvlink_onset, label="onset:nvlink"
            )

    def _expected_nvlink_manifest_size(self) -> float:
        """Mean GPUs a manifestation touches, weighted by node mix."""
        link = self._suite.nvlink.link_model
        sizes: List[float] = []
        for node in self._gpu_nodes:
            extra_slots = node.gpu_count - 2
            # Expected extras of the truncated geometric spread.
            p = link.extra_spread_probability
            expected_extra = sum(p**k for k in range(1, extra_slots + 1))
            multi = 2.0 + expected_extra
            sizes.append(
                (1.0 - link.multi_gpu_probability) * 1.0
                + link.multi_gpu_probability * multi
            )
        return float(np.mean(sizes))

    def _arm_defective_episode(self) -> None:
        cfg = self._suite.defective_episode
        assert cfg is not None
        node = self._gpu_nodes[cfg.node_ordinal % len(self._gpu_nodes)]
        process = PersistentEpisodeProcess(
            start=cfg.start_day * 86400.0,
            end=cfg.end_day * 86400.0,
            gap_floor_seconds=cfg.gap_floor_seconds,
            mean_extra_seconds=cfg.mean_extra_seconds,
        )
        rng = self._stream("faults.episode.defective")
        times = process.sample(rng)
        episode_id = next(self._episode_ids)
        for time in times:
            self._engine.schedule(
                float(time),
                lambda n=node, t=float(time): self._defective_error(
                    n, cfg.gpu_index, episode_id
                ),
                label="episode:uncontained",
            )
        # Discovery and replacement at the episode's end.
        self._engine.schedule(
            cfg.end_day * 86400.0 + 60.0,
            lambda: self._defective_discovered(node, cfg.gpu_index),
            label="episode:discovery",
        )

    # ------------------------------------------------------------------
    # Target selection
    # ------------------------------------------------------------------

    def _pick_gpu(self, policy: TargetPolicy) -> Optional[Tuple[Node, GpuState]]:
        rng = self._stream("faults.targeting")
        if policy is TargetPolicy.BUSY_GPU:
            busy = [
                (node, gpu)
                for node in self._gpu_nodes
                if node.state is not NodeState.DOWN
                for gpu in node.gpus
                if gpu.busy
            ]
            if busy:
                return busy[int(rng.integers(0, len(busy)))]
        for _ in range(8):
            node = self._gpu_nodes[int(rng.integers(0, len(self._gpu_nodes)))]
            if node.state is not NodeState.DOWN:
                return (node, node.gpus[int(rng.integers(0, node.gpu_count))])
        return None

    def _pick_node(self) -> Optional[Node]:
        rng = self._stream("faults.targeting")
        for _ in range(8):
            node = self._gpu_nodes[int(rng.integers(0, len(self._gpu_nodes)))]
            if node.state is not NodeState.DOWN:
                return node
        return None

    # ------------------------------------------------------------------
    # Logging helpers
    # ------------------------------------------------------------------

    def _draw_xid(self, event_class: EventClass, primary: Optional[int]) -> Optional[int]:
        split = _PAIRED_XID_SPLIT.get(event_class)
        if split is None:
            return primary
        rng = self._stream("faults.xid_split")
        roll = rng.random()
        cumulative = 0.0
        for code, weight in split:
            cumulative += weight
            if roll < cumulative:
                return code
        return split[-1][0]

    def _log_logical(
        self,
        node: Node,
        gpu: GpuState,
        event_class: EventClass,
        xid: Optional[int],
        episode_id: int,
        affected: Tuple[int, ...] = (),
        duplicates_mean: Optional[float] = None,
        duplicate_spread: Optional[float] = None,
    ) -> None:
        """Emit one logical error: log lines + ground-truth record."""
        now = self._engine.now
        rng = self._stream("faults.duplication")
        line = render_event_line(event_class, xid, gpu.pci_address, rng)
        self._log_bus.emit(now, node.name, line)
        mean_extra = (
            self._suite.duplication.mean_extra_lines
            if duplicates_mean is None
            else duplicates_mean
        )
        spread = (
            self._suite.duplication.max_spread_seconds
            if duplicate_spread is None
            else duplicate_spread
        )
        extra = int(rng.poisson(mean_extra))
        if extra and spread > 0:
            offsets = np.sort(rng.uniform(0.2, spread, size=extra))
            for offset in offsets:
                self._log_bus.emit(now + float(offset), node.name, line)
        self._m_injected.labels(
            event_class=event_class.value,
            xid=str(xid) if xid is not None else "none",
        ).inc()
        self._m_log_lines.inc(1 + (extra if spread > 0 else 0))
        self.logical_events.append(
            GpuErrorEvent(
                time=now,
                node=node.name,
                gpu_index=gpu.index,
                event_class=event_class,
                xid=xid,
                episode_id=episode_id,
                affected_gpus=affected,
            )
        )

    # ------------------------------------------------------------------
    # Simple fault classes (MMU, GSP, PMU, fallen-off-the-bus)
    # ------------------------------------------------------------------

    def _simple_onset(
        self,
        cfg: SimpleFaultConfig,
        forced_target: Optional[Tuple[Node, GpuState]] = None,
        allow_propagation: bool = True,
    ) -> None:
        target = forced_target or self._pick_gpu(cfg.target)
        if target is None:
            return
        node, gpu = target
        episode_id = next(self._episode_ids)
        xid = self._draw_xid(cfg.event_class, cfg.xid)
        self._log_logical(node, gpu, cfg.event_class, xid, episode_id)
        self._schedule_episode_repeats(cfg, node, gpu, episode_id)
        self._apply_impact(cfg.impact, cfg.event_class, node, gpu)
        if allow_propagation:
            self._maybe_propagate_mmu(cfg.impact, node, gpu)

    def _schedule_episode_repeats(
        self, cfg: SimpleFaultConfig, node: Node, gpu: GpuState, episode_id: int
    ) -> None:
        shape = cfg.episode
        if shape.mean_extra_errors <= 0:
            return
        rng = self._stream(f"faults.episode.{cfg.event_class.value}")
        count = int(rng.poisson(shape.mean_extra_errors))
        if count == 0:
            return
        duration = rng.exponential(shape.mean_duration_hours * 3600.0)
        offsets = np.sort(rng.uniform(0.0, max(duration, 1.0), size=count))
        # Enforce the minimum gap so repeats stay distinct after coalescing.
        last = 0.0
        for raw in offsets:
            offset = max(float(raw), last + shape.min_gap_seconds)
            last = offset
            time = self._engine.now + offset
            if time >= self._window.end:
                break
            self._engine.schedule(
                time,
                lambda c=cfg, n=node, g=gpu, e=episode_id: self._episode_repeat(
                    c, n, g, e
                ),
                label=f"repeat:{cfg.event_class.value}",
            )

    def _episode_repeat(
        self, cfg: SimpleFaultConfig, node: Node, gpu: GpuState, episode_id: int
    ) -> None:
        xid = self._draw_xid(cfg.event_class, cfg.xid)
        self._log_logical(node, gpu, cfg.event_class, xid, episode_id)
        # Each repeated error exposes whatever jobs are running then —
        # a flapping GSP keeps crashing new work placed on the node.
        self._apply_impact(
            cfg.impact, cfg.event_class, node, gpu, kills_only=True
        )

    def _apply_impact(
        self,
        impact: ImpactPolicy,
        event_class: EventClass,
        node: Node,
        gpu: GpuState,
        kills_only: bool = False,
    ) -> None:
        rng = self._stream("faults.impact")
        if impact.kill_probability > 0:
            if impact.kill_scope is KillScope.NODE:
                victims = self._scheduler.jobs_on_node(node.name)
            else:
                victims = self._scheduler.jobs_using_gpu(node.name, gpu.index)
            for job_id in victims:
                # The roll is consumed unconditionally so enabling gang
                # jobs never perturbs the fate of the ordinary
                # population; gangs themselves die deterministically —
                # no distributed training survives a member fault.
                roll = rng.random()
                if self._scheduler.is_gang(job_id) or roll < impact.kill_probability:
                    self._schedule_kill(
                        job_id,
                        event_class,
                        impact.node_failure_state,
                        node=node.name,
                    )
        if kills_only:
            return
        if (
            impact.recovery_kind is not None
            and rng.random() < impact.recovery_probability
        ):
            gpu.health = GpuHealth.FAILED
            self._ops.request_recovery(
                node.name, event_class, impact.recovery_kind, gpu.index
            )

    def _schedule_kill(
        self,
        job_id: int,
        cause: EventClass,
        node_failure: bool,
        node: Optional[str] = None,
    ) -> None:
        rng = self._stream("faults.impact")
        delay = float(rng.uniform(_KILL_DELAY_LO, _KILL_DELAY_HI))
        self._m_kills.labels(cause=cause.value).inc()
        self._engine.schedule_after(
            delay,
            lambda: self._scheduler.kill_job(job_id, cause, node_failure, node=node),
            priority=5,
            label=f"kill:{job_id}",
        )

    def _maybe_propagate_mmu(
        self, impact: ImpactPolicy, node: Node, gpu: GpuState
    ) -> None:
        if impact.propagate_mmu_probability <= 0:
            return
        rng = self._stream("faults.impact")
        if rng.random() >= impact.propagate_mmu_probability:
            return
        mmu_cfg = self._suite.fault_for(EventClass.MMU_ERROR)
        delay = float(rng.exponential(impact.propagate_delay_mean_s))
        self._engine.schedule_after(
            delay,
            lambda: self._simple_onset(
                mmu_cfg, forced_target=(node, gpu), allow_propagation=False
            ),
            label="propagate:pmu-mmu",
        )

    # ------------------------------------------------------------------
    # Memory chain
    # ------------------------------------------------------------------

    def _memory_onset(self) -> None:
        target = self._pick_gpu(self._suite.memory_chain.target)
        if target is None:
            return
        node, gpu = target
        period = self._window.period_of(self._engine.now)
        params = self._suite.memory_chain.params_for(period)
        model = self._memory_models[period]
        rng = self._stream("faults.memory.branches")
        outcome = model.process_uncorrectable(
            gpu,
            force_remap_failure=rng.random() < params.remap_failure_probability,
            touches_active_process=(
                rng.random() < params.recovery.active_touch_probability
            ),
        )
        episode_id = next(self._episode_ids)
        for event in outcome.logged_events:
            self._log_logical(node, gpu, event, primary_xid(event), episode_id)
        if outcome.processes_terminated or outcome.uncontained:
            cause = (
                EventClass.UNCONTAINED_MEMORY_ERROR
                if outcome.uncontained
                else EventClass.CONTAINED_MEMORY_ERROR
            )
            for job_id in self._scheduler.jobs_using_gpu(node.name, gpu.index):
                self._schedule_kill(job_id, cause, node_failure=False, node=node.name)
        if outcome.remap_failed:
            self._ops.record_rrf(node.name, gpu.index)
        if outcome.needs_reset:
            cause = (
                EventClass.UNCONTAINED_MEMORY_ERROR
                if outcome.uncontained
                else EventClass.ROW_REMAP_FAILURE
                if outcome.remap_failed
                else EventClass.UNCORRECTABLE_ECC
            )
            gpu.health = GpuHealth.FAILED
            self._ops.request_recovery(
                node.name, cause, self._suite.memory_chain.recovery_kind, gpu.index
            )

    # ------------------------------------------------------------------
    # NVLink
    # ------------------------------------------------------------------

    def _nvlink_onset(self) -> None:
        cfg = self._suite.nvlink
        node = self._pick_nvlink_node(cfg.active_link_bias)
        if node is None:
            return
        manifest = self._nvlink_model.manifest(node.name)
        episode_id = next(self._episode_ids)
        for index in manifest.affected_gpus:
            self._log_logical(
                node,
                node.gpu(index),
                EventClass.NVLINK_ERROR,
                74,
                episode_id,
                affected=manifest.affected_gpus,
            )
        self._schedule_nvlink_repeats(node, manifest.affected_gpus, episode_id)
        self._apply_nvlink_impact(node, manifest.affected_gpus, manifest.masked_by_retry)
        rng = self._stream("faults.impact")
        if rng.random() < cfg.recovery_probability:
            self._ops.request_recovery(
                node.name,
                EventClass.NVLINK_ERROR,
                cfg.recovery_kind,
                manifest.affected_gpus[0],
            )

    def _pick_nvlink_node(self, active_bias: float) -> Optional[Node]:
        """Pick the node an NVLink fault strikes.

        With probability ``active_bias`` the fault lands on a node
        whose NVLink plane carries live multi-GPU traffic (when one
        exists); otherwise anywhere.
        """
        rng = self._stream("faults.targeting")
        if active_bias > 0 and rng.random() < active_bias:
            active = self._scheduler.nodes_with_multi_gpu_jobs()
            candidates = [
                name
                for name in active
                if self._cluster.node(name).state is not NodeState.DOWN
            ]
            if candidates:
                return self._cluster.node(
                    candidates[int(rng.integers(0, len(candidates)))]
                )
        return self._pick_node()

    def _schedule_nvlink_repeats(
        self, node: Node, affected: Tuple[int, ...], episode_id: int
    ) -> None:
        shape = self._suite.nvlink.episode
        if shape.mean_extra_errors <= 0:
            return
        rng = self._stream("faults.episode.nvlink")
        count = int(rng.poisson(shape.mean_extra_errors))
        if count == 0:
            return
        duration = rng.exponential(shape.mean_duration_hours * 3600.0)
        offsets = np.sort(rng.uniform(0.0, max(duration, 1.0), size=count))
        last = 0.0
        for raw in offsets:
            offset = max(float(raw), last + shape.min_gap_seconds)
            last = offset
            time = self._engine.now + offset
            if time >= self._window.end:
                break
            self._engine.schedule(
                time,
                lambda n=node, a=affected, e=episode_id: self._nvlink_repeat(n, a, e),
                label="repeat:nvlink",
            )

    def _nvlink_repeat(
        self, node: Node, affected: Tuple[int, ...], episode_id: int
    ) -> None:
        for index in affected:
            self._log_logical(
                node,
                node.gpu(index),
                EventClass.NVLINK_ERROR,
                74,
                episode_id,
                affected=affected,
            )
        # Repeated link errors re-expose whatever is running; the CRC
        # retry lottery is drawn independently each time.
        rng = self._stream("faults.impact")
        masked = bool(
            self._suite.nvlink.link_model.crc_retry_enabled
            and rng.random()
            < self._suite.nvlink.link_model.retry_success_probability
        )
        self._apply_nvlink_impact(node, affected, masked)

    def _apply_nvlink_impact(
        self, node: Node, affected: Tuple[int, ...], masked: bool
    ) -> None:
        cfg = self._suite.nvlink
        crc_enabled = cfg.link_model.crc_retry_enabled
        if masked:
            return
        rng = self._stream("faults.impact")
        victims = set()
        for index in affected:
            victims.update(self._scheduler.jobs_using_gpu(node.name, index))
        for job_id in victims:
            gpu_count = self._scheduler.job_gpu_count(job_id)
            if gpu_count >= 2:
                # The job's collective traffic rode the faulty link.
                # Gangs always die (roll still consumed — see
                # _apply_impact for why); ordinary jobs take the draw.
                roll = rng.random()
                if self._scheduler.is_gang(job_id) or roll < cfg.link_fatal_probability:
                    self._schedule_kill(
                        job_id,
                        EventClass.NVLINK_ERROR,
                        node_failure=False,
                        node=node.name,
                    )
            elif not crc_enabled:
                # Without CRC detection, corrupt transfers can reach
                # even single-GPU memory traffic routed over the fabric.
                if rng.random() < cfg.link_fatal_probability * 0.5:
                    self._schedule_kill(
                        job_id,
                        EventClass.NVLINK_ERROR,
                        node_failure=False,
                        node=node.name,
                    )

    # ------------------------------------------------------------------
    # Defective-GPU persistent episode
    # ------------------------------------------------------------------

    def _defective_error(self, node: Node, gpu_index: int, episode_id: int) -> None:
        cfg = self._suite.defective_episode
        assert cfg is not None
        gpu = node.gpu(gpu_index)
        gpu.health = GpuHealth.DEGRADED
        self._log_logical(
            node,
            gpu,
            EventClass.UNCONTAINED_MEMORY_ERROR,
            95,
            episode_id,
            duplicates_mean=cfg.duplicates_mean,
            duplicate_spread=cfg.gap_floor_seconds * 0.8,
        )
        for job_id in self._scheduler.jobs_using_gpu(node.name, gpu_index):
            self._schedule_kill(
                job_id,
                EventClass.UNCONTAINED_MEMORY_ERROR,
                node_failure=False,
                node=node.name,
            )

    def _defective_discovered(self, node: Node, gpu_index: int) -> None:
        """SREs finally notice the episode and swap the unit."""
        node.gpu(gpu_index).health = GpuHealth.FAILED
        self._ops.request_recovery(
            node.name,
            EventClass.UNCONTAINED_MEMORY_ERROR,
            RecoveryKind.REPLACE,
            gpu_index,
            force=True,
        )
