"""Stochastic fault models, arrival processes, and the fault injector."""

from .arrivals import (
    PersistentEpisodeProcess,
    PiecewisePoissonProcess,
    UtilizationCoupledProcess,
    sample_poisson_arrivals,
)
from .config import (
    DefectiveEpisodeConfig,
    DuplicationConfig,
    EpisodeShape,
    FaultSuiteConfig,
    ImpactPolicy,
    KillScope,
    MemoryChainConfig,
    MemoryChainPeriodParams,
    NvlinkFaultConfig,
    SimpleFaultConfig,
    TargetPolicy,
    UtilizationCouplingConfig,
)
from .injector import FaultInjector

__all__ = [
    "PersistentEpisodeProcess",
    "PiecewisePoissonProcess",
    "UtilizationCoupledProcess",
    "sample_poisson_arrivals",
    "DefectiveEpisodeConfig",
    "DuplicationConfig",
    "EpisodeShape",
    "FaultSuiteConfig",
    "ImpactPolicy",
    "KillScope",
    "MemoryChainConfig",
    "MemoryChainPeriodParams",
    "NvlinkFaultConfig",
    "SimpleFaultConfig",
    "TargetPolicy",
    "UtilizationCouplingConfig",
    "FaultInjector",
]
