"""Fault-model configuration: everything Table I calibrates.

The fault layer is organized around *onset processes* and *episodes*:
an underlying hardware fault (one onset) typically produces several
logical errors before it is cleared — a GSP fault keeps timing out RPCs
until the node is rebooted, an MMU fault storm repeats across a job's
lifetime.  Table I counts **logical errors** (coalesced log events), so
calibration works backwards:

    onset_rate = target_count / mean_errors_per_episode / period_hours

Four model families cover the study:

* :class:`SimpleFaultConfig` — MMU, GSP, PMU SPI, fallen-off-the-bus.
* :class:`MemoryChainConfig` — the uncorrectable-ECC chain whose
  branches (RRE/RRF, contained/uncontained) are executed mechanically
  by :class:`~repro.gpu.memory.MemoryRecoveryModel`.
* :class:`NvlinkFaultConfig` — NVLink errors with multi-GPU
  manifestation and CRC-retry masking.
* :class:`DefectiveEpisodeConfig` — the 17-day persistent uncontained
  episode from one faulty GPU (Section IV(vi)).

:class:`UtilizationCouplingConfig` optionally replaces the piecewise
per-period calibration of selected classes with a mechanistic
rate-vs-utilization law (ablation A5): the pre-operational rate is then
*derived* from the utilization difference instead of measured.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ..core.exceptions import CalibrationError
from ..core.periods import PeriodName, StudyWindow
from ..core.xid import EventClass
from ..gpu.memory import MemoryRecoveryConfig
from ..gpu.nvlink import NvlinkConfig
from ..ops.repair import RecoveryKind


class TargetPolicy(enum.Enum):
    """How a fault class picks its victim GPU."""

    #: Any GPU, uniformly (true hardware wear-out).
    UNIFORM_GPU = "uniform_gpu"
    #: Prefer a busy GPU; fall back to any (workload-triggered faults
    #: such as MMU errors).
    BUSY_GPU = "busy_gpu"


class KillScope(enum.Enum):
    """Which jobs an error can take down."""

    #: Jobs whose allocation includes the erroring GPU.
    GPU = "gpu"
    #: Every job with an allocation on the node (node-fatal errors).
    NODE = "node"


@dataclass(frozen=True)
class EpisodeShape:
    """How many logical errors one fault onset produces, and when.

    Attributes:
        mean_extra_errors: expected logical errors *beyond* the onset
            error (Poisson-distributed per episode).
        mean_duration_hours: repeats spread exponentially over roughly
            this horizon after the onset.
        min_gap_seconds: repeats are spaced at least this far apart so
            they survive error coalescing as distinct logical errors
            (they are distinct errors, not duplicates).
    """

    mean_extra_errors: float = 0.0
    mean_duration_hours: float = 1.0
    min_gap_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.mean_extra_errors < 0:
            raise CalibrationError("mean_extra_errors must be non-negative")
        if self.mean_duration_hours <= 0 or self.min_gap_seconds < 0:
            raise CalibrationError("episode shape parameters out of range")

    @property
    def mean_errors(self) -> float:
        """Expected logical errors per episode (onset included)."""
        return 1.0 + self.mean_extra_errors


@dataclass(frozen=True)
class ImpactPolicy:
    """What one fault onset does to jobs and to the node.

    Attributes:
        kill_probability: chance each exposed job is terminated
            (Table II's per-class propagation probabilities).
        kill_scope: GPU-granular or node-fatal.
        node_failure_state: record kills as ``NODE_FAIL`` (reboots)
            instead of ``FAILED``.
        recovery_kind: intervention requested from the ops layer, or
            ``None`` when the error clears without one.
        recovery_probability: chance the onset triggers that request
            (health checks do not page for every single error).
        propagate_mmu_probability: chance this error spawns a follow-on
            MMU error (the PMU → MMU chain of Section IV(iv)).
        propagate_delay_mean_s: mean delay of that follow-on error.
    """

    kill_probability: float = 0.0
    kill_scope: KillScope = KillScope.GPU
    node_failure_state: bool = False
    recovery_kind: Optional[RecoveryKind] = None
    recovery_probability: float = 0.0
    propagate_mmu_probability: float = 0.0
    propagate_delay_mean_s: float = 120.0

    def __post_init__(self) -> None:
        for name in (
            "kill_probability",
            "recovery_probability",
            "propagate_mmu_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise CalibrationError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class SimpleFaultConfig:
    """A calibrated fault class (MMU, GSP, PMU, fallen-off-the-bus).

    ``pre_op_count`` / ``op_count`` are the Table I logical-error
    targets at full scale over the full study window; onset rates are
    derived from them and the episode shape.
    """

    event_class: EventClass
    xid: int
    pre_op_count: float
    op_count: float
    episode: EpisodeShape = EpisodeShape()
    target: TargetPolicy = TargetPolicy.UNIFORM_GPU
    impact: ImpactPolicy = ImpactPolicy()

    def __post_init__(self) -> None:
        if self.pre_op_count < 0 or self.op_count < 0:
            raise CalibrationError(
                f"{self.event_class}: counts must be non-negative"
            )

    def onset_rates_per_hour(self, window: StudyWindow) -> Tuple[float, float]:
        """(pre-op, op) system-wide onset rates implied by the targets."""
        per_episode = self.episode.mean_errors
        pre = self.pre_op_count / per_episode / window.pre_operational.duration_hours
        op = self.op_count / per_episode / window.operational.duration_hours
        return (pre, op)


@dataclass(frozen=True)
class MemoryChainPeriodParams:
    """Per-period calibration of the uncorrectable-ECC chain.

    Attributes:
        uncorrectable_count: target aggregate uncorrectable errors.
        remap_failure_probability: chance a remap attempt fails (the
            pre-operational defect population; 15/46 pre-op, 0 op).
        recovery: the driver-mechanism configuration for the period
            (touch probability, containment success, DBE logging).
    """

    uncorrectable_count: float
    remap_failure_probability: float
    recovery: MemoryRecoveryConfig

    def __post_init__(self) -> None:
        if self.uncorrectable_count < 0:
            raise CalibrationError("uncorrectable_count must be non-negative")
        if not 0.0 <= self.remap_failure_probability <= 1.0:
            raise CalibrationError("remap_failure_probability must be in [0, 1]")


@dataclass(frozen=True)
class MemoryChainConfig:
    """The full memory-error chain calibration (both periods)."""

    pre_op: MemoryChainPeriodParams
    op: MemoryChainPeriodParams
    #: Recovery request issued when the chain says a reset is needed.
    recovery_kind: RecoveryKind = RecoveryKind.RESET
    #: Victim selection: busy GPUs surface uncorrectable errors more
    #: (active traffic plus scrubbing of touched pages).
    target: TargetPolicy = TargetPolicy.BUSY_GPU

    def params_for(self, period: PeriodName) -> MemoryChainPeriodParams:
        """Select the period's parameters."""
        if period is PeriodName.PRE_OPERATIONAL:
            return self.pre_op
        return self.op

    def onset_rates_per_hour(self, window: StudyWindow) -> Tuple[float, float]:
        """(pre-op, op) uncorrectable-error onset rates."""
        return (
            self.pre_op.uncorrectable_count
            / window.pre_operational.duration_hours,
            self.op.uncorrectable_count / window.operational.duration_hours,
        )


@dataclass(frozen=True)
class NvlinkFaultConfig:
    """NVLink error calibration.

    ``pre_op_count`` / ``op_count`` target *per-GPU logged errors*
    (Table I counts one error per GPU that reported the XID 74), so the
    onset rate divides out the expected manifestation size as well as
    the episode mean.
    """

    pre_op_count: float = 2_092.0
    op_count: float = 1_922.0
    episode: EpisodeShape = EpisodeShape(mean_extra_errors=0.0)
    link_model: NvlinkConfig = NvlinkConfig()
    #: Chance a job actively driving the erroring link fails when CRC
    #: retry does not mask the error.
    link_fatal_probability: float = 0.95
    #: Probability an onset strikes a node whose NVLink plane is under
    #: active multi-GPU traffic (links fail disproportionately under
    #: load); the remainder strike uniformly, often idle links — the
    #: paper's explanation for the 46% of jobs that survive.
    active_link_bias: float = 0.05
    recovery_kind: RecoveryKind = RecoveryKind.RESET
    recovery_probability: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.link_fatal_probability <= 1.0:
            raise CalibrationError("link_fatal_probability must be in [0, 1]")
        if not 0.0 <= self.active_link_bias <= 1.0:
            raise CalibrationError("active_link_bias must be in [0, 1]")
        if not 0.0 <= self.recovery_probability <= 1.0:
            raise CalibrationError("recovery_probability must be in [0, 1]")


@dataclass(frozen=True)
class DefectiveEpisodeConfig:
    """The persistent uncontained-error episode of Section IV(vi).

    One faulty GPU erred continuously from May 5 to May 21, 2022
    (pre-operational), producing ~38,900 coalesced errors out of more
    than a million raw log lines, and was replaced on discovery.

    Attributes:
        start_day / end_day: study days bounding the episode.
        gap_floor_seconds / mean_extra_seconds: logical-error spacing
            (see :class:`~repro.faults.arrivals.PersistentEpisodeProcess`).
        duplicates_mean: raw duplicate lines per logical error (drives
            the >1M raw-line volume).
        node_ordinal: which 4-way node hosts the faulty unit.
        gpu_index: which GPU on that node is faulty.
    """

    start_day: float = 124.0  # 2022-05-05
    end_day: float = 140.0  # 2022-05-21
    gap_floor_seconds: float = 30.0
    mean_extra_seconds: float = 5.53
    duplicates_mean: float = 26.0
    node_ordinal: int = 17
    gpu_index: int = 2

    def __post_init__(self) -> None:
        if self.end_day <= self.start_day:
            raise CalibrationError("episode must span at least part of a day")
        if self.duplicates_mean < 0:
            raise CalibrationError("duplicates_mean must be non-negative")

    @property
    def expected_logical_errors(self) -> float:
        """Expected coalesced error count for the episode."""
        duration = (self.end_day - self.start_day) * 86400.0
        return duration / (self.gap_floor_seconds + self.mean_extra_seconds)


@dataclass(frozen=True)
class DuplicationConfig:
    """Raw-line duplication for ordinary (non-episode) errors.

    The same error produces several identical log lines in close
    succession (Section III-B); coalescing must undo this.
    """

    mean_extra_lines: float = 2.0
    max_spread_seconds: float = 8.0

    def __post_init__(self) -> None:
        if self.mean_extra_lines < 0 or self.max_spread_seconds < 0:
            raise CalibrationError("duplication parameters must be non-negative")


@dataclass(frozen=True)
class UtilizationCouplingConfig:
    """Mechanistic utilization → error-rate coupling (ablation A5).

    When enabled for a class, its operational-period rate still matches
    the Table I calibration, but the pre-operational rate is *derived*
    from the utilization law ``rate ∝ floor + slope·u`` instead of the
    measured pre-op count.  The default levels reproduce the paper's
    GSP degradation factor (~5.6x) from the utilization jump alone.

    Attributes:
        coupled_classes: event classes governed by the law.
        floor / slope: the affine law's parameters.
        pre_op_utilization / op_utilization: period GPU busy fractions.
    """

    coupled_classes: Tuple[EventClass, ...] = (
        EventClass.GSP_ERROR,
        EventClass.PMU_SPI_ERROR,
    )
    floor: float = 0.08
    slope: float = 1.0
    pre_op_utilization: float = 0.06
    op_utilization: float = 0.72

    def __post_init__(self) -> None:
        if self.floor < 0 or self.slope < 0:
            raise CalibrationError("floor/slope must be non-negative")
        for name in ("pre_op_utilization", "op_utilization"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise CalibrationError(f"{name} must be in [0, 1]")

    def rate_multiplier(self, period: PeriodName) -> float:
        """The law's value for a period's utilization level."""
        u = (
            self.pre_op_utilization
            if period is PeriodName.PRE_OPERATIONAL
            else self.op_utilization
        )
        return self.floor + self.slope * u

    def derive_pre_op_rate(self, op_rate_per_hour: float) -> float:
        """Pre-op onset rate implied by the op-period rate and the law."""
        op_mult = self.rate_multiplier(PeriodName.OPERATIONAL)
        pre_mult = self.rate_multiplier(PeriodName.PRE_OPERATIONAL)
        if op_mult <= 0:
            raise CalibrationError("operational multiplier must be positive")
        return op_rate_per_hour * pre_mult / op_mult


@dataclass(frozen=True)
class FaultSuiteConfig:
    """Everything the fault injector needs for one run."""

    simple_faults: Tuple[SimpleFaultConfig, ...]
    memory_chain: MemoryChainConfig
    nvlink: NvlinkFaultConfig
    defective_episode: Optional[DefectiveEpisodeConfig] = None
    duplication: DuplicationConfig = DuplicationConfig()
    utilization_coupling: Optional[UtilizationCouplingConfig] = None

    def fault_for(self, event_class: EventClass) -> SimpleFaultConfig:
        """Look up a simple fault class; raises on unknown classes."""
        for cfg in self.simple_faults:
            if cfg.event_class is event_class:
                return cfg
        raise CalibrationError(f"no simple fault configured for {event_class}")

    def without_episode(self) -> "FaultSuiteConfig":
        """A copy with the defective-GPU episode removed."""
        return replace(self, defective_episode=None)

    def with_coupling(
        self, coupling: Optional[UtilizationCouplingConfig]
    ) -> "FaultSuiteConfig":
        """A copy with utilization coupling replaced (ablation A5)."""
        return replace(self, utilization_coupling=coupling)


def scale_counts(suite: FaultSuiteConfig, factor: float) -> FaultSuiteConfig:
    """Scale every calibrated error-count target by ``factor``.

    Table I counts are absolute targets for the calibration fleet (448
    A100 GPUs); a sub-fleet or scaled-out fleet with ``factor`` times
    the GPU population keeps the same *per-GPU* rates by scaling the
    aggregate targets.  The defective-GPU episode is one physical unit
    and is deliberately left absolute.
    """
    if factor < 0:
        raise CalibrationError("scale factor must be non-negative")
    scaled_simple = tuple(
        replace(
            cfg,
            pre_op_count=cfg.pre_op_count * factor,
            op_count=cfg.op_count * factor,
        )
        for cfg in suite.simple_faults
    )
    memory = replace(
        suite.memory_chain,
        pre_op=replace(
            suite.memory_chain.pre_op,
            uncorrectable_count=(
                suite.memory_chain.pre_op.uncorrectable_count * factor
            ),
        ),
        op=replace(
            suite.memory_chain.op,
            uncorrectable_count=(
                suite.memory_chain.op.uncorrectable_count * factor
            ),
        ),
    )
    nvlink = replace(
        suite.nvlink,
        pre_op_count=suite.nvlink.pre_op_count * factor,
        op_count=suite.nvlink.op_count * factor,
    )
    return replace(
        suite, simple_faults=scaled_simple, memory_chain=memory, nvlink=nvlink
    )
