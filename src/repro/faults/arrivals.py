"""Stochastic arrival processes for GPU fault onsets.

Three generators cover every error process in the study:

* :class:`PiecewisePoissonProcess` — homogeneous Poisson arrivals whose
  rate changes at the pre-operational/operational boundary.  Table I's
  per-period counts calibrate the two rates.
* :class:`UtilizationCoupledProcess` — a non-homogeneous Poisson process
  whose instantaneous rate scales with GPU utilization, sampled by
  thinning.  This is the mechanism behind the paper's explanation of
  the 23% MTBE degradation ("likely due to increased GPU utilization");
  ablation A5 compares it against the piecewise calibration.
* :class:`PersistentEpisodeProcess` — the defective-GPU failure mode of
  Section IV(vi): a containment failure that keeps re-erroring as fast
  as the driver re-detects it, for days on end.  Inter-arrival times are
  ``floor + Exp(mean_extra)`` so that each logical error stays outside
  the previous error's coalescing window — the structure that made the
  paper count 38,900 coalesced errors out of >1M raw lines.

All generators produce *onset times* as numpy arrays; the injector turns
them into simulation events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.exceptions import CalibrationError
from ..core.periods import StudyWindow
from ..core.timebase import HOUR


def sample_poisson_arrivals(
    rng: np.random.Generator,
    rate_per_hour: float,
    start: float,
    end: float,
) -> np.ndarray:
    """Homogeneous Poisson arrival times on ``[start, end)``.

    Uses the order-statistics construction: draw N ~ Poisson(rate*T),
    then N uniforms, sorted.  Returns times in seconds.
    """
    if rate_per_hour < 0:
        raise CalibrationError(f"negative rate {rate_per_hour}")
    duration_hours = (end - start) / HOUR
    if duration_hours <= 0 or rate_per_hour == 0:
        return np.empty(0, dtype=float)
    count = rng.poisson(rate_per_hour * duration_hours)
    times = rng.uniform(start, end, size=count)
    times.sort()
    return times


@dataclass(frozen=True)
class PiecewisePoissonProcess:
    """Poisson arrivals with one rate per study period.

    Attributes:
        pre_op_rate_per_hour: system-wide onset rate during bring-up.
        op_rate_per_hour: system-wide onset rate in production.
    """

    pre_op_rate_per_hour: float
    op_rate_per_hour: float

    def sample(self, rng: np.random.Generator, window: StudyWindow) -> np.ndarray:
        """Draw all arrival times over the study window."""
        pre = sample_poisson_arrivals(
            rng,
            self.pre_op_rate_per_hour,
            window.pre_operational.start,
            window.pre_operational.end,
        )
        op = sample_poisson_arrivals(
            rng,
            self.op_rate_per_hour,
            window.operational.start,
            window.operational.end,
        )
        return np.concatenate([pre, op])

    def expected_counts(self, window: StudyWindow) -> tuple:
        """Expected (pre-op, op) arrival counts for this window."""
        return (
            self.pre_op_rate_per_hour * window.pre_operational.duration_hours,
            self.op_rate_per_hour * window.operational.duration_hours,
        )


@dataclass(frozen=True)
class UtilizationCoupledProcess:
    """NHPP whose rate is ``base * (floor + slope * utilization(t))``.

    ``utilization`` is a callable mapping simulation time to the
    cluster's GPU busy fraction in [0, 1] (either a configured profile
    or a live measurement).  Sampling uses thinning against the maximum
    achievable rate, so it is exact for any bounded profile.

    With ``floor=0.2`` and ``slope=1.0``, a period running at 72%
    utilization sees ~3.6x the error rate of one at 15% — the magnitude
    of the GSP degradation the paper reports (5.6x).
    """

    base_rate_per_hour: float
    floor: float = 0.2
    slope: float = 1.0

    def __post_init__(self) -> None:
        if self.base_rate_per_hour < 0:
            raise CalibrationError("base rate must be non-negative")
        if self.floor < 0 or self.slope < 0:
            raise CalibrationError("floor and slope must be non-negative")

    def rate_at(self, utilization: float) -> float:
        """Instantaneous rate for a given utilization level."""
        return self.base_rate_per_hour * (self.floor + self.slope * utilization)

    def sample(
        self,
        rng: np.random.Generator,
        window: StudyWindow,
        utilization: Callable[[float], float],
    ) -> np.ndarray:
        """Draw arrival times by thinning a dominating Poisson process."""
        max_rate = self.rate_at(1.0)
        candidates = sample_poisson_arrivals(
            rng, max_rate, window.start, window.end
        )
        if candidates.size == 0:
            return candidates
        keep = np.array(
            [
                rng.random() < self.rate_at(utilization(t)) / max_rate
                for t in candidates
            ],
            dtype=bool,
        )
        return candidates[keep]


@dataclass(frozen=True)
class PersistentEpisodeProcess:
    """The bursty, persistent error stream of a defective GPU.

    The unit re-errors continuously: each logical error follows the
    previous one by ``gap_floor_seconds`` (driver re-detection plus one
    coalescing window) plus an exponential extra delay.  Over the
    configured episode this yields ``duration / (floor + mean_extra)``
    logical errors — the knob Section IV(vi)'s 38,900-error episode is
    calibrated with.

    Attributes:
        start: episode start time (seconds).
        end: episode end time (seconds).
        gap_floor_seconds: minimum spacing between logical errors.
        mean_extra_seconds: mean of the exponential extra spacing.
    """

    start: float
    end: float
    gap_floor_seconds: float = 30.0
    mean_extra_seconds: float = 7.8

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise CalibrationError("episode must have positive duration")
        if self.gap_floor_seconds < 0 or self.mean_extra_seconds < 0:
            raise CalibrationError("spacings must be non-negative")

    @property
    def expected_count(self) -> float:
        """Expected number of logical errors in the episode."""
        mean_gap = self.gap_floor_seconds + self.mean_extra_seconds
        if mean_gap <= 0:
            raise CalibrationError("episode spacing must be positive")
        return (self.end - self.start) / mean_gap

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw the full sequence of logical error times."""
        mean_gap = self.gap_floor_seconds + self.mean_extra_seconds
        duration = self.end - self.start
        # Over-draw gaps, then trim to the episode; the 4-sigma margin
        # makes a short re-draw loop essentially never necessary.
        estimate = int(duration / mean_gap * 1.05) + 64
        while True:
            extras = rng.exponential(self.mean_extra_seconds, size=estimate)
            gaps = self.gap_floor_seconds + extras
            times = self.start + np.cumsum(gaps)
            if times.size and times[-1] >= self.end:
                return times[times < self.end]
            estimate *= 2


def merge_sorted(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Merge several sorted arrival arrays into one sorted array."""
    non_empty = [a for a in arrays if a.size]
    if not non_empty:
        return np.empty(0, dtype=float)
    merged = np.concatenate(non_empty)
    merged.sort()
    return merged
