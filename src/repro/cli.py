"""Command-line interface: ``python -m repro <command>``.

The subcommands cover the full workflow:

* ``simulate`` — run a study and write the raw artifacts (optionally
  corrupting the emitted logs with the chaos layer via ``--corrupt``,
  or arming the gang-recovery engine via ``--recovery <preset>``).
  ``--arch {a100,hopper,mixed}`` swaps the cluster for an architecture
  preset, ``--scale N`` sizes it in GPUs, and ``--arch-sweep
  gsp=0.5,memory=2.0`` overrides the Hopper projection multipliers.
* ``fleetscale`` — run a thinned-sampling fleet campaign (10k–100k
  GPUs, multi-year) and write per-architecture Table I/II analogs
  plus ``fleet_result.json``; see DESIGN §17.
* ``chaos`` — corrupt an existing artifact directory's syslog with the
  seeded chaos injector and print what was injected.
* ``pipeline`` — run Stage-II extraction/coalescing over an artifact
  directory and print a summary plus the pipeline health report;
  ``--checkpoint`` persists per-day progress and ``--resume`` continues
  an interrupted checkpointed run.
* ``report`` — run Stage-III analyses over an artifact directory and
  print the paper's tables/figures (optionally with paper comparisons).
* ``recover-sweep`` — sweep checkpoint intervals through the goodput
  model and report the optimum against the Young/Daly closed forms
  (markdown to stdout, JSON via ``--out``).
* ``experiments`` — regenerate the EXPERIMENTS.md record from fresh
  runs.
* ``obs`` — inspect telemetry artifacts: render a metrics snapshot as
  a table, or convert a span trace to Chrome ``trace_event`` JSON.
* ``study`` — run a multi-seed campaign under the fault-tolerant
  supervisor (process-isolated workers, retries, timeouts, manifest,
  ``--resume``; optionally with seeded worker chaos).
* ``stream`` — run the live fleet-health service over a growing syslog
  directory (``/healthz /metrics /v1/fleet /v1/alerts /v1/slo``).
* ``loadgen`` — drive seeded open/closed-loop load at a running
  fleet-health service and report latency quantiles, error rates, and
  the service's own SLO verdicts.

Exit codes are part of the contract (see ``repro --help``): 0 full
success, 2 configuration/usage error, 3 runtime failure, 4 partial
campaign success (degraded coverage), 130 interrupted.

Telemetry flags (``simulate``, ``pipeline``, ``report``): any of
``--metrics-out``, ``--trace-out``, ``--log-json``, or ``--obs``
enables the telemetry layer and prints a one-screen run report at the
end of the command.

Examples::

    python -m repro simulate out/ --preset small --seed 7 --corrupt
    python -m repro simulate out/ --recovery a100
    python -m repro recover-sweep --gang-nodes 4 --out sweep.json
    python -m repro simulate out/ --metrics-out m.prom --trace-out t.jsonl
    python -m repro chaos out/ --chaos-seed 3
    python -m repro pipeline out/ --resume --obs
    python -m repro obs m.prom
    python -m repro obs t.jsonl --chrome trace.json
    python -m repro report out/ --compare
    python -m repro experiments EXPERIMENTS.md --job-scale 0.05
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from . import DeltaStudy, StudyConfig
from .core.exceptions import (
    CalibrationError,
    ConfigurationError,
    ReproError,
)
from .obs import Telemetry, chrome_trace_from_jsonl, render_run_report
from .analysis import (
    AvailabilityAnalysis,
    JobImpactAnalysis,
    JobStatistics,
    MtbeAnalysis,
)
from .pipeline import run_pipeline
from .reporting import (
    build_all_reports,
    render_figure2,
    render_table1,
    render_table2,
    render_table3,
)

_PRESETS = ("small", "delta", "delta-workload")

# ---------------------------------------------------------------------
# Exit codes — a stable contract for scripts and CI wrapping the CLI.
# ---------------------------------------------------------------------

#: Full success.
EXIT_OK = 0
#: Bad configuration or usage (also what argparse uses for bad flags).
EXIT_CONFIG_ERROR = 2
#: A runtime failure: simulation, pipeline, checkpoint, or campaign
#: error that was not a configuration problem.
EXIT_RUNTIME_ERROR = 3
#: A campaign finished but degraded: some cells permanently failed (or
#: the pass was interrupted), so aggregates cover a subset of seeds.
EXIT_PARTIAL = 4
#: Interrupted by the user (SIGINT convention: 128 + 2).
EXIT_INTERRUPTED = 130

_EXIT_CODE_DOC = """\
exit codes:
  0   success
  2   configuration or usage error (bad flags, bad preset, bad config)
  3   runtime failure (simulation/pipeline/checkpoint/campaign error)
  4   partial campaign success — some cells permanently failed or the
      pass was interrupted; aggregates cover a subset of seeds (see the
      coverage annotation in campaign_summary.json)
  130 interrupted (Ctrl-C)
"""


def exit_code_for(exc: BaseException) -> int:
    """Map an exception to the CLI's documented exit code."""
    if isinstance(exc, KeyboardInterrupt):
        return EXIT_INTERRUPTED
    if isinstance(exc, (ConfigurationError, CalibrationError)):
        return EXIT_CONFIG_ERROR
    if isinstance(exc, ReproError):
        return EXIT_RUNTIME_ERROR
    raise exc


def _build_config(preset: str, seed: int, job_scale: Optional[float]) -> StudyConfig:
    if preset == "small":
        kwargs = {} if job_scale is None else {"job_scale": job_scale}
        return StudyConfig.small(seed=seed, include_episode=True, **kwargs)
    if preset == "delta":
        kwargs = {} if job_scale is None else {"job_scale": job_scale}
        return StudyConfig.delta(seed=seed, **kwargs)
    if preset == "delta-workload":
        kwargs = {} if job_scale is None else {"job_scale": job_scale}
        return StudyConfig.delta_workload_focused(seed=seed, **kwargs)
    raise SystemExit(f"unknown preset {preset!r} (choose from {_PRESETS})")


def _ensure_parent(path_str: str) -> Path:
    """Create the parent directory of a telemetry output path."""
    path = Path(path_str)
    path.parent.mkdir(parents=True, exist_ok=True)
    return path


def _telemetry_from_args(
    args: argparse.Namespace,
    seed: int = 0,
    wall_clock: bool = False,
) -> Optional[Telemetry]:
    """Build a telemetry bundle when any obs flag was given.

    ``wall_clock`` installs ``time.perf_counter`` as the trace clock
    (pipeline/report commands, whose work is host-bound); ``simulate``
    leaves the default so the runner can install the simulation clock
    and keep its artifacts deterministic.
    """
    wanted = bool(
        getattr(args, "obs", False)
        or args.metrics_out
        or args.trace_out
        or args.log_json
    )
    if not wanted:
        return None
    log_stream = None
    if args.log_json:
        log_stream = open(
            _ensure_parent(args.log_json), "w", encoding="utf-8"
        )
    clock = None
    if wall_clock:
        origin = time.perf_counter()
        clock = lambda: time.perf_counter() - origin  # noqa: E731
    return Telemetry.create(seed=seed, log_stream=log_stream, clock=clock)


def _finish_telemetry(
    telemetry: Optional[Telemetry], args: argparse.Namespace
) -> None:
    """Write the requested artifacts and print the run report."""
    if telemetry is None:
        return
    if args.metrics_out:
        path = _ensure_parent(args.metrics_out)
        if path.suffix == ".json":
            path.write_text(telemetry.metrics.to_json(), encoding="utf-8")
        else:
            path.write_text(
                telemetry.metrics.render_prometheus(), encoding="utf-8"
            )
        print(f"metrics snapshot written to {path}")
    if args.trace_out:
        telemetry.tracer.write_jsonl(_ensure_parent(args.trace_out))
        print(f"trace written to {args.trace_out}")
    telemetry.close()
    print()
    print(render_run_report(telemetry))


def _parse_projection(spec: Optional[str]):
    """``--arch-sweep`` spec → HopperProjection (CalibrationError → exit 2)."""
    if spec is None:
        return None
    from .calibration.hopper import HopperProjection

    return HopperProjection.from_spec(spec)


def _arch_shape(arch: str, gpu_scale: int):
    """A DES-ready shape for an architecture preset: GPU node mix from
    :func:`repro.fleetscale.fleet.shape_for_scale` plus CPU nodes kept
    at Delta's CPU:GPU node ratio (the workload needs somewhere to put
    CPU jobs)."""
    import dataclasses

    from .cluster.topology import DELTA_A100_NODES, DELTA_CPU_NODES
    from .fleetscale.fleet import shape_for_scale

    shape = shape_for_scale(arch, gpu_scale)
    cpu = max(
        1, round(shape.gpu_node_count * DELTA_CPU_NODES / DELTA_A100_NODES)
    )
    return dataclasses.replace(shape, cpu_nodes=cpu)


def _apply_arch_options(config: StudyConfig, args: argparse.Namespace):
    """Fold ``--arch`` / ``--scale`` / ``--arch-sweep`` into the config.

    ``--arch a100`` (the default) with ``--scale`` swaps in a scaled
    A100 shape and rescales the fault suite so per-GPU rates are
    preserved (the homogeneous runner path applies the suite
    unscaled).  ``hopper`` / ``mixed`` shapes are scaled per-arch by
    the runner itself, so only the shape and projection change here.
    """
    import dataclasses

    from .cluster.topology import DELTA_A100_GPUS
    from .faults.config import scale_counts

    projection = _parse_projection(args.arch_sweep)
    if args.arch == "a100":
        if projection is not None:
            raise ConfigurationError(
                "--arch-sweep only applies to --arch hopper or --arch mixed"
            )
        if args.scale is None:
            return config
        shape = _arch_shape("a100", args.scale)
        suite = scale_counts(
            config.fault_suite, shape.gpu_count / DELTA_A100_GPUS
        )
        return dataclasses.replace(
            config, cluster_shape=shape, fault_suite=suite
        )
    scale = args.scale
    if scale is None:
        scale = DELTA_A100_GPUS if args.arch == "hopper" else 2 * DELTA_A100_GPUS
    shape = _arch_shape(args.arch, scale)
    return dataclasses.replace(
        config, cluster_shape=shape, hopper_projection=projection
    )


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = _build_config(args.preset, args.seed, args.job_scale)
    config = _apply_arch_options(config, args)
    if args.recovery is not None:
        import dataclasses

        from .recovery import RECOVERY_PRESETS

        config = dataclasses.replace(
            config, recovery=RECOVERY_PRESETS[args.recovery]
        )
    telemetry = _telemetry_from_args(args, seed=args.seed)
    artifacts = DeltaStudy(config).run(
        Path(args.output_dir), telemetry=telemetry
    )
    print(artifacts.summary())
    print(f"artifacts written to {args.output_dir}")
    if args.corrupt:
        from .syslog.chaos import ChaosConfig, corrupt_artifacts

        report = corrupt_artifacts(
            Path(args.output_dir), ChaosConfig.calibrated(seed=args.chaos_seed)
        )
        print(report.summary())
    _finish_telemetry(telemetry, args)
    return 0


def _cmd_fleetscale(args: argparse.Namespace) -> int:
    from .core.periods import StudyWindow
    from .fleetscale import FleetCampaignConfig, run_campaign

    projection = _parse_projection(args.arch_sweep)
    if projection is not None and args.arch == "a100":
        raise ConfigurationError(
            "--arch-sweep only applies to --arch hopper or --arch mixed"
        )
    if args.days is None:
        window = StudyWindow.delta_default()
    else:
        if args.days <= 0:
            raise ConfigurationError(
                f"--days must be positive, got {args.days}"
            )
        # Keep Delta's pre-operational share of the window.
        ref = StudyWindow.delta_default()
        pre_frac = ref.pre_operational.duration / (ref.end - ref.start)
        window = StudyWindow.scaled(
            pre_days=args.days * pre_frac,
            op_days=args.days * (1.0 - pre_frac),
        )
    config = FleetCampaignConfig(
        arch=args.arch,
        scale=args.scale,
        window=window,
        seed=args.seed,
        slice_days=args.slice_days,
        projection=projection,
    )
    telemetry = _telemetry_from_args(args, seed=args.seed, wall_clock=True)
    result = run_campaign(
        config,
        out_dir=Path(args.output_dir),
        metrics=telemetry.metrics if telemetry else None,
        write_inventory=args.write_inventory,
    )
    summary = result.config_summary
    host = result.host
    print(
        f"fleet: {summary['gpu_count']:,} GPUs on "
        f"{summary['node_count']:,} nodes "
        f"({', '.join(summary['architectures'])}), "
        f"{summary['total_days']:.0f} days"
    )
    print(
        f"events: {result.total_events:,} "
        f"({host['events_per_second']:,.0f}/s, "
        f"wall {host['wall_seconds']:.2f}s)"
    )
    print(
        f"host: peak RSS {host['peak_rss_mib']:.0f} MiB, "
        f"heap high-water {host['heap_high_water']:,} entries, "
        f"{host['slices_run']} slices"
    )
    print(f"artifacts written to {args.output_dir}")
    _finish_telemetry(telemetry, args)
    return EXIT_OK


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .syslog.chaos import ChaosConfig, corrupt_artifacts

    artifact_dir = Path(args.artifact_dir)
    if not artifact_dir.is_dir():
        print(f"error: no such artifact directory: {artifact_dir}", file=sys.stderr)
        return 2
    config = ChaosConfig.calibrated(seed=args.chaos_seed)
    if args.rate_scale != 1.0:
        try:
            config = config.scaled(args.rate_scale)
        except ValueError as exc:
            print(f"error: invalid --rate-scale: {exc}", file=sys.stderr)
            return 2
    report = corrupt_artifacts(artifact_dir, config)
    print(report.summary())
    return 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    from .pipeline import resolve_workers

    try:
        workers = resolve_workers(args.workers)
    except ValueError:
        print(f"error: invalid --workers: {args.workers!r}", file=sys.stderr)
        return 2
    telemetry = _telemetry_from_args(args, wall_clock=True)
    result = run_pipeline(
        Path(args.artifact_dir),
        window_seconds=args.coalesce_window,
        checkpoint=args.checkpoint,
        resume=args.resume,
        telemetry=telemetry,
        workers=workers,
        scan_cache=not args.no_scan_cache,
    )
    stats = result.extraction_stats
    print(f"raw lines scanned:        {stats.total_lines}")
    print(f"matched error lines:      {stats.matched_lines}")
    print(f"excluded XID 13/43 lines: {stats.excluded_xid_lines}")
    print(f"malformed lines skipped:  {stats.malformed_lines}")
    print(
        f"coalesced errors:         {len(result.errors)} "
        f"(reduction {result.coalescing_reduction:.1f}x, "
        f"dt={args.coalesce_window:.0f}s)"
    )
    print(f"downtime episodes:        {len(result.downtime)}")
    print(f"job records:              {len(result.jobs)}")
    scan = result.scan
    if scan.cache_hits or scan.cache_stores or scan.cache_corrupt:
        corrupt = (
            f", {scan.cache_corrupt} corrupt" if scan.cache_corrupt else ""
        )
        print(
            f"scan cache:               {scan.cache_hits} hits, "
            f"{scan.cache_misses} misses, "
            f"{scan.cache_stores} stores{corrupt}"
        )
    if result.recovery:
        from .pipeline import recovery_timeline_summary

        timeline = recovery_timeline_summary(result.recovery)
        print(
            f"recovery events:          {timeline['events']} "
            f"(gangs {len(timeline['incidents_by_gang'])}, "
            f"mean ETTR {timeline['mean_ettr_minutes']:.1f} min)"
        )
    if result.health is not None:
        print(result.health.render())
    _finish_telemetry(telemetry, args)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .core.periods import StudyWindow

    artifact_dir = Path(args.artifact_dir)
    telemetry = _telemetry_from_args(args, wall_clock=True)
    result = run_pipeline(
        artifact_dir,
        window_seconds=args.coalesce_window,
        telemetry=telemetry,
    )
    window = (
        StudyWindow.delta_default() if args.delta_window else _infer_window(result)
    )
    node_count = args.nodes

    mtbe = MtbeAnalysis(result.errors, window, node_count)
    print("==== Table I ====")
    print(render_table1(mtbe, include_paper=args.compare))
    impact = JobImpactAnalysis(result.errors, result.jobs, window).run()
    print("\n==== Table II ====")
    print(render_table2(impact, include_paper=args.compare))
    stats = JobStatistics(result.jobs, window)
    print("\n==== Table III ====")
    print(render_table3(stats.bucket_stats(), stats.population()))
    availability = AvailabilityAnalysis(result.downtime, window, node_count)
    print("\n==== Figure 2 ====")
    print(render_figure2(availability.distribution()))
    if args.compare:
        print("\n==== paper comparisons ====")
        for report in build_all_reports(
            result.errors, result.jobs, result.downtime, window, node_count
        ):
            print()
            print(report.render())
    _finish_telemetry(telemetry, args)
    return 0


def _cmd_recover_sweep(args: argparse.Namespace) -> int:
    from .analysis.checkpoint import calibrated_model, sweep

    model = calibrated_model(
        gang_nodes=args.gang_nodes,
        per_node_mtbe_hours=args.mtbe_hours,
        write_minutes=args.write_min,
        restore_minutes=args.restore_min,
        detect_minutes=args.detect_min,
        resched_minutes=args.resched_min,
    )
    report = sweep(model)
    print(report.render_markdown())
    if args.out:
        path = _ensure_parent(args.out)
        path.write_text(report.to_json(), encoding="utf-8")
        print(f"\nsweep report written to {path}")
    return 0


def _infer_window(result):
    """Pick an analysis window from the artifact contents."""
    from .core.periods import StudyWindow

    last = max(
        [e.time for e in result.errors]
        + [j.end_time for j in result.jobs]
        + [0.0]
    )
    if last > 400 * 86400:
        return StudyWindow.delta_default()
    total_days = max(last / 86400.0, 2.0)
    return StudyWindow.scaled(
        pre_days=total_days / 4, op_days=3 * total_days / 4
    )


def _cmd_summary(args: argparse.Namespace) -> int:
    from .reporting.summary import render_summary

    result = run_pipeline(
        Path(args.artifact_dir), window_seconds=args.coalesce_window
    )
    window = _infer_window(result)
    print(
        render_summary(
            result.errors, result.jobs, result.downtime, window, args.nodes
        )
    )
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    import tempfile
    from .reporting.experiments_md import build_experiments_markdown

    work = Path(tempfile.mkdtemp(prefix="repro-cli-experiments-"))
    config = StudyConfig.delta(seed=args.seed, job_scale=args.job_scale)
    artifacts = DeltaStudy(config).run(work)
    result = run_pipeline(work)
    workload = DeltaStudy(
        StudyConfig.delta_workload_focused(
            seed=args.seed + 1, job_scale=args.job_scale
        )
    ).run(None)
    markdown = build_experiments_markdown(
        errors=result.errors,
        jobs=result.jobs,
        downtime=result.downtime,
        workload_jobs=workload.job_records,
        window=artifacts.window,
        node_count=artifacts.node_count,
        run_description=(
            f"Generated by `python -m repro experiments` with seed "
            f"{args.seed} and job_scale {args.job_scale}."
        ),
    )
    Path(args.path).write_text(markdown, encoding="utf-8")
    print(f"wrote {args.path}")
    return 0


def _parse_seeds(spec: str) -> tuple:
    """Parse a seed list: ``7,8,9`` or an inclusive range ``7..14``."""
    spec = spec.strip()
    try:
        if ".." in spec:
            lo_text, hi_text = spec.split("..", 1)
            lo, hi = int(lo_text), int(hi_text)
            if hi < lo:
                raise ValueError
            return tuple(range(lo, hi + 1))
        return tuple(int(part) for part in spec.split(","))
    except ValueError:
        raise ConfigurationError(
            f"bad --seeds {spec!r}: use a comma list (7,8,9) or an "
            f"inclusive range (7..14)"
        )


def _cmd_study(args: argparse.Namespace) -> int:
    from .study.chaos import WorkerChaosConfig
    from .study.supervise import (
        CampaignLimits,
        CampaignSpec,
        CampaignSupervisor,
    )

    seeds = _parse_seeds(args.seeds)
    overrides = {}
    if args.job_scale is not None:
        overrides["job_scale"] = args.job_scale
    if args.fault_scale is not None:
        overrides["fault_scale"] = args.fault_scale
    if args.preset == "small":
        if args.pre_days is not None:
            overrides["pre_days"] = args.pre_days
        if args.op_days is not None:
            overrides["op_days"] = args.op_days
    elif args.pre_days is not None or args.op_days is not None:
        raise ConfigurationError(
            "--pre-days/--op-days only apply to --preset small"
        )
    chaos = None
    if args.chaos_kill or args.chaos_hang or args.chaos_garbage:
        chaos = WorkerChaosConfig(
            seed=args.chaos_seed,
            kill_probability=args.chaos_kill,
            hang_probability=args.chaos_hang,
            garbage_exit_probability=args.chaos_garbage,
            max_strikes_per_cell=args.chaos_strikes,
        )
    campaign_dir = Path(args.campaign_dir)
    spec = CampaignSpec.sweep(
        name=campaign_dir.name or "campaign",
        preset=args.preset,
        seeds=seeds,
        overrides=overrides,
        limits=CampaignLimits(
            max_workers=args.max_workers,
            timeout_seconds=args.timeout,
            max_attempts=args.max_attempts,
            backoff_base_seconds=args.backoff_base,
        ),
        checkpoint_cadence_days=args.checkpoint_days,
        chaos=chaos,
    )
    telemetry = _telemetry_from_args(args, seed=seeds[0], wall_clock=True)
    supervisor = CampaignSupervisor(spec, campaign_dir, telemetry=telemetry)
    result = supervisor.run(resume=args.resume)
    print(result.coverage.render())
    for cell_id, status in sorted(result.cell_status.items()):
        marker = "ok" if status == "done" else status
        print(f"  {cell_id}: {marker}")
    print(f"campaign manifest: {result.manifest_path}")
    print(f"campaign summary:  {result.summary_path}")
    _finish_telemetry(telemetry, args)
    if not result.coverage.complete or result.interrupted:
        print(
            "warning: degraded campaign — aggregates cover "
            f"{result.coverage.cells_completed} of "
            f"{result.coverage.cells_total} cells",
            file=sys.stderr,
        )
        return EXIT_PARTIAL
    return EXIT_OK


def _cmd_obs(args: argparse.Namespace) -> int:
    import json

    from .obs.report import load_metric_rows, render_metrics_table

    path = Path(args.path)
    if not path.is_file():
        print(f"error: no such telemetry artifact: {path}", file=sys.stderr)
        return 2
    if args.chrome:
        document = chrome_trace_from_jsonl(path.read_text(encoding="utf-8"))
        _ensure_parent(args.chrome).write_text(
            json.dumps(document, sort_keys=True), encoding="utf-8"
        )
        print(
            f"wrote {args.chrome} "
            f"({len(document['traceEvents'])} trace events; open in "
            f"chrome://tracing or https://ui.perfetto.dev)"
        )
        return 0
    print(render_metrics_table(load_metric_rows(path)))
    return 0


def _cmd_stream_tenants(args: argparse.Namespace) -> int:
    """The multi-tenant branch of ``repro stream`` (``--tenant`` given)."""
    from .stream import (
        ChaosController,
        GuardConfig,
        MultiTenantService,
        TenantSpec,
        build_chaos_plan,
        parse_tenant_arg,
    )

    specs = []
    for raw in args.tenant:
        name, follow_dir = parse_tenant_arg(raw)
        fleet_out = (
            Path(args.fleet_out) / f"{name}.json" if args.fleet_out else None
        )
        alerts_out = (
            Path(args.alerts_out) / f"{name}.jsonl"
            if args.alerts_out
            else None
        )
        specs.append(
            TenantSpec(
                name,
                follow_dir,
                window_seconds=args.coalesce_window,
                node_count=args.nodes,
                fleet_out=fleet_out,
                alerts_out=alerts_out,
            )
        )
    chaos = None
    if args.chaos:
        plan = build_chaos_plan(
            [spec.name for spec in specs],
            seed=args.chaos_seed,
            horizon_seconds=args.chaos_horizon,
        )
        chaos = ChaosController(plan)
    guard = GuardConfig(
        stall_timeout=args.stall_timeout,
        backoff_base=args.restart_backoff,
        backoff_max=max(args.restart_backoff * 16, args.restart_backoff),
        breaker_threshold=args.breaker_threshold,
        seed=args.chaos_seed,
    )
    telemetry = _telemetry_from_args(args, wall_clock=True)
    service = MultiTenantService(
        specs,
        port=None if args.port < 0 else args.port,
        checkpoint_root=Path(args.checkpoint) if args.checkpoint else None,
        resume=args.resume,
        once=args.once,
        poll_interval=args.poll_interval,
        checkpoint_interval=args.checkpoint_interval,
        guard=guard,
        idle_exit=args.idle_exit,
        chaos=chaos,
        telemetry=telemetry,
        max_inflight=args.max_inflight,
        request_timeout=args.request_timeout,
    )
    if service.server is not None:
        names = ",".join(spec.name for spec in specs)
        print(
            f"fleet-health service on http://{service.server.address} "
            f"(tenants: {names}; /healthz /metrics /v1/slo "
            "/v1/<tenant>/fleet /v1/<tenant>/alerts /v1/<tenant>/slo)",
            flush=True,
        )
    code = service.run()
    for runtime in service.runtimes:
        core = runtime.core
        print(
            f"tenant {runtime.name}: {core.ingest.lines_read:,} lines, "
            f"drained={core.ingest.drained}, "
            f"restarts={sum(service.supervisor.restart_counts[runtime.name].values())}, "
            f"quarantined={len(runtime.quarantined_checkpoints)}"
        )
    _finish_telemetry(telemetry, args)
    return code


def _cmd_stream(args: argparse.Namespace) -> int:
    from .core.periods import StudyWindow
    from .stream import StreamService

    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint DIR", file=sys.stderr)
        return EXIT_CONFIG_ERROR
    if args.tenant and args.follow:
        print(
            "error: --tenant and --follow are mutually exclusive",
            file=sys.stderr,
        )
        return EXIT_CONFIG_ERROR
    if args.chaos and not args.tenant:
        print(
            "error: --chaos requires at least one --tenant NAME=DIR",
            file=sys.stderr,
        )
        return EXIT_CONFIG_ERROR
    if args.tenant:
        return _cmd_stream_tenants(args)
    if not args.follow:
        print(
            "error: one of --follow DIR or --tenant NAME=DIR is required",
            file=sys.stderr,
        )
        return EXIT_CONFIG_ERROR
    telemetry = _telemetry_from_args(args, wall_clock=True)
    service = StreamService(
        Path(args.follow),
        port=None if args.port < 0 else args.port,
        checkpoint_dir=Path(args.checkpoint) if args.checkpoint else None,
        resume=args.resume,
        once=args.once,
        poll_interval=args.poll_interval,
        checkpoint_interval=args.checkpoint_interval,
        window_seconds=args.coalesce_window,
        window=StudyWindow.delta_default() if args.delta_window else None,
        node_count=args.nodes,
        fleet_out=Path(args.fleet_out) if args.fleet_out else None,
        alerts_out=Path(args.alerts_out) if args.alerts_out else None,
        idle_exit=args.idle_exit,
        telemetry=telemetry,
        max_inflight=args.max_inflight,
        request_timeout=args.request_timeout,
    )
    if service.server is not None:
        print(
            f"fleet-health service on http://{service.server.address} "
            "(/healthz /metrics /v1/fleet /v1/alerts /v1/slo)",
            flush=True,
        )
    code = service.run()
    print(service.health_report().render())
    _finish_telemetry(telemetry, args)
    return code


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json

    from .loadgen import (
        DEFAULT_ROUTES,
        AbuseConfig,
        LoadConfig,
        build_report,
        check_service,
        render_report,
        run_load,
    )

    routes = (
        tuple(part for part in args.routes.split(",") if part)
        if args.routes
        else DEFAULT_ROUTES
    )
    try:
        config = LoadConfig(
            url=args.url,
            mode=args.mode,
            pollers=args.pollers,
            duration_seconds=args.duration,
            rate=args.rate,
            seed=args.seed,
            routes=routes,
            timeout_seconds=args.timeout,
        )
        abuse = None
        if args.chaos:
            abuse = AbuseConfig(
                url=args.url,
                slow_loris=args.slow_loris,
                aborters=args.aborters,
                duration_seconds=args.duration,
                route=routes[0],
            )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_CONFIG_ERROR
    check_service(config)  # raises ReproError -> exit 3 via main()
    result = run_load(config, abuse=abuse)
    report = build_report(result)
    print(render_report(report))
    if args.out:
        path = _ensure_parent(args.out)
        path.write_text(
            json.dumps(report, indent=2, sort_keys=True), encoding="utf-8"
        )
        print(f"loadgen report written to {path}")
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="A100 GPU resilience study — simulator and analysis pipeline",
        epilog=_EXIT_CODE_DOC,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Telemetry flags shared by the commands that do real work.
    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_group = obs_flags.add_argument_group("telemetry")
    obs_group.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write a metrics snapshot (Prometheus text, or JSON for .json)",
    )
    obs_group.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write the span trace as JSONL (convert with 'repro obs')",
    )
    obs_group.add_argument(
        "--log-json", metavar="PATH", default=None,
        help="write structured JSON log records",
    )
    obs_group.add_argument(
        "--obs", action="store_true",
        help="enable telemetry and the run report without writing files",
    )

    simulate = sub.add_parser(
        "simulate", help="run a study, write artifacts", parents=[obs_flags]
    )
    simulate.add_argument("output_dir")
    simulate.add_argument("--preset", choices=_PRESETS, default="small")
    simulate.add_argument("--seed", type=int, default=2022)
    simulate.add_argument("--job-scale", type=float, default=None)
    simulate.add_argument("--corrupt", action="store_true",
                          help="corrupt the emitted logs with the chaos layer")
    simulate.add_argument("--chaos-seed", type=int, default=0,
                          help="chaos injector seed (with --corrupt)")
    from .recovery import RECOVERY_PRESETS as _recovery_presets

    simulate.add_argument(
        "--recovery", choices=sorted(_recovery_presets), default=None,
        metavar="PRESET",
        help="arm the gang-recovery engine with a named policy preset "
             f"(choices: {', '.join(sorted(_recovery_presets))})",
    )
    simulate.add_argument(
        "--arch", choices=("a100", "hopper", "mixed"), default="a100",
        help="architecture preset for the cluster (default %(default)s)",
    )
    simulate.add_argument(
        "--scale", type=int, default=None, metavar="GPUS",
        help="target GPU count for the --arch preset (default: Delta's "
             "448 for a100/hopper, 896 for mixed)",
    )
    simulate.add_argument(
        "--arch-sweep", metavar="SPEC", default=None,
        help="Hopper projection overrides as key=value pairs, e.g. "
             "'gsp=0.5,memory=2.0' (requires --arch hopper|mixed; "
             "unknown keys are a configuration error)",
    )
    simulate.set_defaults(func=_cmd_simulate)

    fleetscale = sub.add_parser(
        "fleetscale",
        help="thinned-sampling fleet campaign (10k-100k GPUs, multi-year)",
        parents=[obs_flags],
        epilog=_EXIT_CODE_DOC,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    fleetscale.add_argument("output_dir",
                            help="artifact directory (fleet_result.json, "
                                 "table1_<arch>.txt, table2_<arch>.txt)")
    fleetscale.add_argument(
        "--arch", choices=("a100", "hopper", "mixed"), default="a100",
        help="architecture preset (default %(default)s)",
    )
    fleetscale.add_argument(
        "--scale", type=int, default=10_000, metavar="GPUS",
        help="target GPU count (default %(default)s)",
    )
    fleetscale.add_argument(
        "--days", type=float, default=None,
        help="campaign length in days, split pre-op/op at Delta's ratio "
             "(default: the full 1170-day window)",
    )
    fleetscale.add_argument("--seed", type=int, default=2022)
    fleetscale.add_argument(
        "--slice-days", type=float, default=30.0,
        help="sampling/batching slice length (default %(default)s)",
    )
    fleetscale.add_argument(
        "--arch-sweep", metavar="SPEC", default=None,
        help="Hopper projection overrides, e.g. 'gsp=0.5,memory=2.0' "
             "(requires --arch hopper|mixed)",
    )
    fleetscale.add_argument(
        "--write-inventory", action="store_true",
        help="also stream the fleet inventory.json (safe at 100k GPUs)",
    )
    fleetscale.set_defaults(func=_cmd_fleetscale)

    chaos = sub.add_parser(
        "chaos", help="corrupt an artifact dir's syslog (chaos layer)"
    )
    chaos.add_argument("artifact_dir")
    chaos.add_argument("--chaos-seed", type=int, default=0)
    chaos.add_argument("--rate-scale", type=float, default=1.0,
                       help="multiplier on the calibrated per-line rates")
    chaos.set_defaults(func=_cmd_chaos)

    pipeline = sub.add_parser(
        "pipeline", help="Stage-II over an artifact dir", parents=[obs_flags]
    )
    pipeline.add_argument("artifact_dir")
    pipeline.add_argument("--coalesce-window", type=float, default=30.0)
    pipeline.add_argument("--checkpoint", action="store_true",
                          help="persist per-day progress for crash recovery")
    pipeline.add_argument("--resume", action="store_true",
                          help="resume from an existing checkpoint manifest")
    pipeline.add_argument("--workers", default="auto",
                          help="shard-scan process count: an integer, or "
                               "'auto' for one per available core "
                               "(results are identical for any value)")
    pipeline.add_argument("--no-scan-cache", action="store_true",
                          help="disable the persistent per-day scan cache "
                               "(.pipeline_scan_cache/); results are "
                               "identical either way, only slower")
    pipeline.set_defaults(func=_cmd_pipeline)

    report = sub.add_parser(
        "report", help="Stage-III tables and figures", parents=[obs_flags]
    )
    report.add_argument("artifact_dir")
    report.add_argument("--coalesce-window", type=float, default=30.0)
    report.add_argument("--nodes", type=int, default=106,
                        help="A100 node count (per-node MTBE multiplier)")
    report.add_argument("--compare", action="store_true",
                        help="include paper values and comparison reports")
    report.add_argument("--delta-window", action="store_true",
                        help="force the 1170-day Delta study window")
    report.set_defaults(func=_cmd_report)

    recover_sweep = sub.add_parser(
        "recover-sweep",
        help="checkpoint-interval goodput sweep vs the Young/Daly optima",
    )
    recover_sweep.add_argument(
        "--gang-nodes", type=int, default=2,
        help="gang size in nodes (job-level MTBF = per-node MTBE / n)",
    )
    recover_sweep.add_argument(
        "--mtbe-hours", type=float, default=None,
        help="per-node MTBE in hours (default: the paper's calibrated "
             "operational-period value)",
    )
    recover_sweep.add_argument("--write-min", type=float, default=4.0,
                               help="checkpoint write cost (minutes)")
    recover_sweep.add_argument("--restore-min", type=float, default=10.0,
                               help="checkpoint restore cost (minutes)")
    recover_sweep.add_argument("--detect-min", type=float, default=2.0,
                               help="expected detection latency (minutes)")
    recover_sweep.add_argument("--resched-min", type=float, default=5.0,
                               help="expected drain+reschedule time (minutes)")
    recover_sweep.add_argument("--out", metavar="PATH", default=None,
                               help="also write the sweep report as JSON")
    recover_sweep.set_defaults(func=_cmd_recover_sweep)

    summary = sub.add_parser("summary", help="one-page study summary")
    summary.add_argument("artifact_dir")
    summary.add_argument("--nodes", type=int, default=106)
    summary.add_argument("--coalesce-window", type=float, default=30.0)
    summary.set_defaults(func=_cmd_summary)

    experiments = sub.add_parser(
        "experiments", help="regenerate the EXPERIMENTS.md record"
    )
    experiments.add_argument("path", nargs="?", default="EXPERIMENTS.md")
    experiments.add_argument("--seed", type=int, default=2022)
    experiments.add_argument("--job-scale", type=float, default=0.05)
    experiments.set_defaults(func=_cmd_experiments)

    study = sub.add_parser(
        "study",
        help="run a multi-seed campaign under the fault-tolerant supervisor",
        parents=[obs_flags],
        epilog=_EXIT_CODE_DOC,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    study.add_argument("campaign_dir",
                       help="campaign directory (manifest, cells/, summary)")
    study.add_argument("--preset", choices=_PRESETS, default="small")
    study.add_argument("--seeds", default="2022..2025",
                       help="seed sweep: comma list (7,8,9) or range (7..14)")
    study.add_argument("--job-scale", type=float, default=None)
    study.add_argument("--fault-scale", type=float, default=None)
    study.add_argument("--pre-days", type=float, default=None,
                       help="pre-production days (small preset only)")
    study.add_argument("--op-days", type=float, default=None,
                       help="production days (small preset only)")
    study.add_argument("--max-workers", type=int, default=4,
                       help="concurrent worker subprocesses")
    study.add_argument("--timeout", type=float, default=600.0,
                       help="per-attempt wall-clock timeout (seconds)")
    study.add_argument("--max-attempts", type=int, default=3,
                       help="attempts per cell before it is marked failed")
    study.add_argument("--backoff-base", type=float, default=0.5,
                       help="base retry backoff (seconds, exponential)")
    study.add_argument("--checkpoint-days", type=float, default=None,
                       help="engine checkpoint cadence in sim days "
                            "(enables per-cell checkpointed resume)")
    study.add_argument("--resume", action="store_true",
                       help="resume: skip done cells, re-queue failed ones")
    study.add_argument("--chaos-kill", type=float, default=0.0,
                       help="probability a worker attempt SIGKILLs itself")
    study.add_argument("--chaos-hang", type=float, default=0.0,
                       help="probability a worker attempt hangs forever")
    study.add_argument("--chaos-garbage", type=float, default=0.0,
                       help="probability of a garbage exit with no result")
    study.add_argument("--chaos-seed", type=int, default=0,
                       help="seed for the worker chaos plans")
    study.add_argument("--chaos-strikes", type=int, default=1,
                       help="max sabotaged attempts per cell")
    study.set_defaults(func=_cmd_study)

    obs = sub.add_parser(
        "obs", help="inspect telemetry artifacts (metrics table, trace export)"
    )
    obs.add_argument(
        "path", help="a --metrics-out snapshot (table) or --trace-out JSONL"
    )
    obs.add_argument(
        "--chrome", metavar="OUT", default=None,
        help="convert the span JSONL at PATH to Chrome trace_event JSON",
    )
    obs.set_defaults(func=_cmd_obs)

    stream = sub.add_parser(
        "stream",
        help="live fleet-health service over a growing syslog directory",
        parents=[obs_flags],
        epilog=(
            "graceful shutdown:\n"
            "  SIGTERM/SIGINT stop the follow loop after the in-flight\n"
            "  poll, persist a final checkpoint, flush --fleet-out, and\n"
            "  exit 0 (the expected daemon exit path, not an error).\n\n"
            + _EXIT_CODE_DOC
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    stream.add_argument(
        "--follow", metavar="DIR", default=None,
        help="artifact dir (containing syslog/) or the syslog dir itself "
             "(single-tenant mode)",
    )
    stream.add_argument(
        "--tenant", metavar="NAME=DIR", action="append", default=[],
        help="serve this tenant's directory at /v1/NAME/* (repeatable; "
             "enables the supervised multi-tenant service; with "
             "--checkpoint, each tenant checkpoints to CHECKPOINT/NAME)",
    )
    stream.add_argument(
        "--port", type=int, default=8787,
        help="HTTP port for /healthz /metrics /v1/fleet /v1/alerts "
             "(0 = ephemeral, -1 = no server)",
    )
    stream.add_argument(
        "--checkpoint", metavar="DIR", default=None,
        help="directory for the durable resume state (stream offsets, "
             "coalescer, quarantine)",
    )
    stream.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint DIR when a checkpoint exists",
    )
    stream.add_argument(
        "--once", action="store_true",
        help="ingest everything on disk, drain, write outputs, exit",
    )
    stream.add_argument("--poll-interval", type=float, default=1.0,
                        metavar="SECONDS")
    stream.add_argument("--checkpoint-interval", type=float, default=10.0,
                        metavar="SECONDS")
    stream.add_argument("--coalesce-window", type=float, default=30.0)
    stream.add_argument("--nodes", type=int, default=106,
                        help="fleet size for per-node MTBE scaling")
    stream.add_argument(
        "--delta-window", action="store_true",
        help="use the full Delta study window for /v1/fleet instead of "
             "inferring one from the watermark",
    )
    stream.add_argument(
        "--idle-exit", type=float, default=None, metavar="SECONDS",
        help="drain and exit cleanly after this long without new lines",
    )
    stream.add_argument(
        "--fleet-out", metavar="PATH", default=None,
        help="write the final fleet snapshot JSON here on exit "
             "(with --tenant: a directory receiving <name>.json files)",
    )
    stream.add_argument(
        "--alerts-out", metavar="PATH", default=None,
        help="append fired alerts to this JSON-lines file "
             "(with --tenant: a directory receiving <name>.jsonl files)",
    )
    overload = stream.add_argument_group("overload control")
    overload.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="shed requests beyond N concurrent with 429 + Retry-After "
             "(default: unbounded)",
    )
    overload.add_argument(
        "--request-timeout", type=float, default=None, metavar="SECONDS",
        help="per-connection read/write deadline — drops slow-loris "
             "clients (default: none)",
    )
    guard_group = stream.add_argument_group(
        "supervision (multi-tenant mode)"
    )
    guard_group.add_argument(
        "--stall-timeout", type=float, default=15.0, metavar="SECONDS",
        help="heartbeat silence before an ingest worker is replaced "
             "(default %(default)s)",
    )
    guard_group.add_argument(
        "--restart-backoff", type=float, default=0.5, metavar="SECONDS",
        help="base restart delay, doubling per consecutive failure "
             "(default %(default)s)",
    )
    guard_group.add_argument(
        "--breaker-threshold", type=int, default=3, metavar="N",
        help="consecutive failures that open the circuit breaker "
             "(default %(default)s)",
    )
    chaos_group = stream.add_argument_group("chaos (multi-tenant mode)")
    chaos_group.add_argument(
        "--chaos", action="store_true",
        help="inject a seeded fault plan (ingest kills, torn "
             "checkpoints, follower I/O errors) while serving",
    )
    chaos_group.add_argument(
        "--chaos-seed", type=int, default=0,
        help="fault-plan seed (also seeds restart-backoff jitter)",
    )
    chaos_group.add_argument(
        "--chaos-horizon", type=float, default=10.0, metavar="SECONDS",
        help="window over which the fault plan is spread "
             "(default %(default)s)",
    )
    stream.set_defaults(func=_cmd_stream)

    loadgen = sub.add_parser(
        "loadgen",
        help="drive load at a running fleet-health service and report "
             "latency quantiles, error rates, and SLO verdicts",
        epilog=_EXIT_CODE_DOC,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    loadgen.add_argument(
        "--url", default="http://127.0.0.1:8787",
        help="service base URL (default %(default)s)",
    )
    loadgen.add_argument(
        "--mode", choices=("closed", "open"), default="closed",
        help="closed: N concurrent pollers; open: Poisson arrivals "
             "at --rate req/s (default %(default)s)",
    )
    loadgen.add_argument("--pollers", type=int, default=64,
                         help="worker thread count (default %(default)s)")
    loadgen.add_argument("--duration", type=float, default=10.0,
                         metavar="SECONDS",
                         help="load duration (default %(default)s)")
    loadgen.add_argument("--rate", type=float, default=200.0,
                         help="open-loop offered rate, req/s "
                              "(default %(default)s)")
    loadgen.add_argument("--seed", type=int, default=0,
                         help="route-choice and arrival-schedule seed")
    loadgen.add_argument(
        "--routes", default=None, metavar="CSV",
        help="comma-separated route list (default /v1/fleet,/v1/alerts)",
    )
    loadgen.add_argument("--timeout", type=float, default=10.0,
                         metavar="SECONDS",
                         help="per-request socket timeout")
    loadgen.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the repro-loadgen-v1 JSON report here",
    )
    abuse_group = loadgen.add_argument_group("abusive clients")
    abuse_group.add_argument(
        "--chaos", action="store_true",
        help="run abusive clients (slow-loris + mid-body aborts) "
             "concurrently with the honest load",
    )
    abuse_group.add_argument(
        "--slow-loris", type=int, default=2, metavar="N",
        help="slow-loris header-trickling clients (default %(default)s)",
    )
    abuse_group.add_argument(
        "--aborters", type=int, default=2, metavar="N",
        help="connect-then-slam clients (default %(default)s)",
    )
    loadgen.set_defaults(func=_cmd_loadgen)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (KeyboardInterrupt, ReproError) as exc:
        code = exit_code_for(exc)
        if isinstance(exc, KeyboardInterrupt):
            print("interrupted", file=sys.stderr)
        else:
            print(f"error: {exc}", file=sys.stderr)
        return code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
