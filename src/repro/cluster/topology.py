"""Cluster topology: the Delta machine and its NVLink fabric.

Delta (paper Section II-A) comprises 132 CPU-only nodes and 358
GPU-accelerated nodes; the study covers the **106 A100 nodes**: 100 with
4-way A100s and 6 with 8-way A100s (448 A100 GPUs total).  Within a
node, GPUs are joined by NVLink — direct point-to-point bridges on the
4-way boards and an NVSwitch plane on the 8-way HGX boards; either way
every GPU pair can exchange traffic, which we model as a complete graph
per node (a :mod:`networkx` graph keyed by global GPU names).

The NVLink graph drives the error-propagation model of Section IV(v):
42% of NVLink errors manifest on two or more GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from ..core.arch import Architecture
from ..core.exceptions import TopologyError
from .gpu import GpuState
from .node import Node, NodeKind

#: Delta's A100 fleet shape (paper Section II-A).
DELTA_4WAY_NODES = 100
DELTA_8WAY_NODES = 6
DELTA_CPU_NODES = 132
DELTA_A100_NODES = DELTA_4WAY_NODES + DELTA_8WAY_NODES
DELTA_A100_GPUS = DELTA_4WAY_NODES * 4 + DELTA_8WAY_NODES * 8

#: GPUs per node for each GPU node kind.
GPUS_PER_NODE = {
    NodeKind.GPU_A100_4WAY: 4,
    NodeKind.GPU_A100_8WAY: 8,
    NodeKind.GPU_GH200_4WAY: 4,
}

#: Node-name prefix per GPU node kind (Delta/DeltaAI conventions).
NODE_PREFIX = {
    NodeKind.GPU_A100_4WAY: "gpua",
    NodeKind.GPU_A100_8WAY: "gpuc",
    NodeKind.GPU_GH200_4WAY: "gh",
}


def _gpu_node(name: str, kind: NodeKind) -> Node:
    gpus = [
        GpuState(node=name, index=i, serial=f"{name}-u{i}-r0")
        for i in range(GPUS_PER_NODE[kind])
    ]
    return Node(name=name, kind=kind, gpus=gpus, cpu_cores=64)


def _a100_node(name: str, gpu_count: int) -> Node:
    kind = NodeKind.GPU_A100_4WAY if gpu_count == 4 else NodeKind.GPU_A100_8WAY
    return _gpu_node(name, kind)


@dataclass(frozen=True)
class ClusterShape:
    """Sizing knobs for building a cluster.

    The defaults reproduce Delta; tests shrink these to run fast while
    keeping both node flavours present.
    """

    four_way_nodes: int = DELTA_4WAY_NODES
    eight_way_nodes: int = DELTA_8WAY_NODES
    cpu_nodes: int = DELTA_CPU_NODES
    gh200_nodes: int = 0

    def __post_init__(self) -> None:
        if (
            self.four_way_nodes < 0
            or self.eight_way_nodes < 0
            or self.cpu_nodes < 0
            or self.gh200_nodes < 0
        ):
            raise ValueError("node counts must be non-negative")
        if self.four_way_nodes + self.eight_way_nodes + self.gh200_nodes == 0:
            raise ValueError("cluster needs at least one GPU node")

    @property
    def gpu_node_count(self) -> int:
        """Total GPU nodes (the per-node-MTBE multiplier in Table I)."""
        return self.four_way_nodes + self.eight_way_nodes + self.gh200_nodes

    @property
    def gpu_count(self) -> int:
        """Total GPUs across all architectures."""
        return (
            self.four_way_nodes * 4
            + self.eight_way_nodes * 8
            + self.gh200_nodes * 4
        )

    def node_count_for(self, arch: Architecture) -> int:
        """GPU nodes belonging to one architecture."""
        if arch is Architecture.A100:
            return self.four_way_nodes + self.eight_way_nodes
        return self.gh200_nodes

    def gpu_count_for(self, arch: Architecture) -> int:
        """GPUs belonging to one architecture."""
        if arch is Architecture.A100:
            return self.four_way_nodes * 4 + self.eight_way_nodes * 8
        return self.gh200_nodes * 4

    @property
    def architectures(self) -> Tuple[Architecture, ...]:
        """Architectures present, in stable reporting order."""
        return tuple(
            arch for arch in Architecture if self.node_count_for(arch) > 0
        )

    @property
    def heterogeneous(self) -> bool:
        """True when more than one GPU architecture is present."""
        return len(self.architectures) > 1


class Cluster:
    """The machine under study: nodes, GPUs, and the NVLink graph.

    Node naming follows Delta conventions: ``gpuaNNN`` for 4-way A100
    nodes, ``gpucNNN`` for 8-way A100 nodes, ``ghNNN`` for GH200 nodes
    (DeltaAI convention), and ``cnNNN`` for CPU-only nodes.
    """

    def __init__(self, shape: ClusterShape = ClusterShape()) -> None:
        self._shape = shape
        self._nodes: Dict[str, Node] = {}
        for kind, count in (
            (NodeKind.GPU_A100_4WAY, shape.four_way_nodes),
            (NodeKind.GPU_A100_8WAY, shape.eight_way_nodes),
            (NodeKind.GPU_GH200_4WAY, shape.gh200_nodes),
        ):
            prefix = NODE_PREFIX[kind]
            for i in range(1, count + 1):
                node = _gpu_node(f"{prefix}{i:03d}", kind)
                self._nodes[node.name] = node
        for i in range(1, shape.cpu_nodes + 1):
            name = f"cn{i:03d}"
            self._nodes[name] = Node(name=name, kind=NodeKind.CPU, cpu_cores=128)
        self._nvlink = self._build_nvlink_graph()

    def _build_nvlink_graph(self) -> nx.Graph:
        graph = nx.Graph()
        for node in self.gpu_nodes():
            names = [g.name for g in node.gpus]
            graph.add_nodes_from(names)
            # Complete graph within the node: direct bridges (4-way) or
            # the NVSwitch plane (8-way) give all-to-all reachability.
            for a, b in combinations(names, 2):
                graph.add_edge(a, b, node=node.name)
        return graph

    @property
    def shape(self) -> ClusterShape:
        """The sizing this cluster was built with."""
        return self._shape

    @property
    def nvlink(self) -> nx.Graph:
        """The intra-node NVLink connectivity graph over GPU names."""
        return self._nvlink

    def node(self, name: str) -> Node:
        """Look up a node by name; raises TopologyError if unknown."""
        try:
            return self._nodes[name]
        except KeyError:
            raise TopologyError(f"unknown node {name!r}") from None

    def nodes(self) -> Iterable[Node]:
        """All nodes, GPU nodes first, in stable name order."""
        return list(self._nodes.values())

    def gpu_nodes(self) -> List[Node]:
        """All GPU nodes in stable order."""
        return [n for n in self._nodes.values() if n.is_gpu_node]

    def gpu_nodes_for(self, arch: Architecture) -> List[Node]:
        """GPU nodes belonging to one architecture, in stable order."""
        return [n for n in self.gpu_nodes() if n.architecture is arch]

    def cpu_nodes(self) -> List[Node]:
        """All CPU-only nodes in stable order."""
        return [n for n in self._nodes.values() if not n.is_gpu_node]

    def gpus(self) -> List[GpuState]:
        """Every A100 in the cluster, node order then index order."""
        return [g for n in self.gpu_nodes() for g in n.gpus]

    def gpu_by_name(self, name: str) -> GpuState:
        """Resolve ``"gpua042/gpu2"`` back to its GPU state."""
        try:
            node_name, gpu_part = name.split("/")
            index = int(gpu_part.removeprefix("gpu"))
        except ValueError:
            raise TopologyError(f"malformed GPU name {name!r}") from None
        return self.node(node_name).gpu(index)

    def nvlink_peers(self, node: str, gpu_index: int) -> List[int]:
        """GPU indices sharing NVLink connectivity with the given GPU."""
        name = f"{node}/gpu{gpu_index}"
        if name not in self._nvlink:
            raise TopologyError(f"{name} has no NVLink presence")
        return sorted(
            int(peer.split("/gpu")[1]) for peer in self._nvlink.neighbors(name)
        )

    def nvlink_link(
        self, node: str, a: int, b: int
    ) -> Optional[Tuple[str, str]]:
        """The NVLink edge between two GPUs of a node, or ``None``."""
        na, nb = f"{node}/gpu{a}", f"{node}/gpu{b}"
        if self._nvlink.has_edge(na, nb):
            return (na, nb)
        return None

    def validate(self) -> None:
        """Internal consistency checks; raises TopologyError on failure."""
        for node in self.gpu_nodes():
            expected = GPUS_PER_NODE[node.kind]
            if node.gpu_count != expected:
                raise TopologyError(
                    f"{node.name}: expected {expected} GPUs, has {node.gpu_count}"
                )
            for gpu in node.gpus:
                peers = self.nvlink_peers(node.name, gpu.index)
                if len(peers) != expected - 1:
                    raise TopologyError(
                        f"{gpu.name}: NVLink degree {len(peers)}, "
                        f"expected {expected - 1}"
                    )

    @classmethod
    def delta(cls) -> "Cluster":
        """The full Delta machine (106 A100 nodes, 132 CPU nodes)."""
        return cls(ClusterShape())

    @classmethod
    def small(cls, four_way: int = 4, eight_way: int = 1, cpu: int = 2) -> "Cluster":
        """A scaled-down cluster for tests and quick examples."""
        return cls(ClusterShape(four_way, eight_way, cpu))
