"""Model of a Delta compute node.

Three node flavours matter to the study:

* **A100 GPU nodes** — one 64-core AMD EPYC Milan CPU plus 4 or 8 A100
  GPUs (100 four-way and 6 eight-way nodes on Delta).
* **GH200 nodes** — DeltaAI-style 4-way Grace-Hopper superchips; only
  present when a heterogeneous :class:`~repro.cluster.topology.ClusterShape`
  asks for them (EXPERIMENTS E18).
* **CPU-only nodes** — two 64-core EPYC Milan CPUs; included because
  Section V-A compares GPU-job and CPU-job success rates.

Node state tracks schedulability (up / draining / down) so the Slurm
layer and the ops layer agree on where jobs can run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..core.arch import Architecture
from ..core.exceptions import TopologyError
from .gpu import GpuState


class NodeKind(enum.Enum):
    """Hardware flavour of a node."""

    CPU = "cpu"
    GPU_A100_4WAY = "a100_4way"
    GPU_A100_8WAY = "a100_8way"
    GPU_GH200_4WAY = "gh200_4way"


#: GPU architecture per node kind (``None`` for CPU-only nodes).
KIND_ARCHITECTURE = {
    NodeKind.CPU: None,
    NodeKind.GPU_A100_4WAY: Architecture.A100,
    NodeKind.GPU_A100_8WAY: Architecture.A100,
    NodeKind.GPU_GH200_4WAY: Architecture.HOPPER,
}


class NodeState(enum.Enum):
    """Scheduler-visible node state (mirrors Slurm node states)."""

    IDLE = "idle"  # up, no jobs
    ALLOCATED = "allocated"  # up, running jobs
    DRAINING = "draining"  # no new jobs; waiting for current jobs
    DOWN = "down"  # rebooting or awaiting repair


@dataclass
class Node:
    """One compute node with its GPUs and scheduler-visible state.

    Attributes:
        name: node name (e.g. ``"gpua042"``, ``"cn017"``).
        kind: CPU-only or A100 4-way/8-way.
        gpus: per-GPU state objects (empty for CPU nodes).
        cpu_cores: schedulable cores (64 on GPU nodes, 128 on CPU nodes).
        state: current scheduler state.
    """

    name: str
    kind: NodeKind
    gpus: List[GpuState] = field(default_factory=list)
    cpu_cores: int = 64
    state: NodeState = NodeState.IDLE

    @property
    def gpu_count(self) -> int:
        """Number of GPUs installed in the node."""
        return len(self.gpus)

    @property
    def is_gpu_node(self) -> bool:
        """True for GPU-accelerated nodes (A100 or GH200)."""
        return self.kind is not NodeKind.CPU

    @property
    def architecture(self) -> Optional[Architecture]:
        """GPU architecture of the node, or ``None`` for CPU nodes."""
        return KIND_ARCHITECTURE[self.kind]

    @property
    def schedulable(self) -> bool:
        """True when the scheduler may place new work here."""
        return self.state in (NodeState.IDLE, NodeState.ALLOCATED)

    def gpu(self, index: int) -> GpuState:
        """Return the GPU at ``index``; raises TopologyError if absent."""
        if index < 0 or index >= len(self.gpus):
            raise TopologyError(f"{self.name} has no GPU index {index}")
        return self.gpus[index]

    def gpu_by_pci(self, pci_address: str) -> Optional[GpuState]:
        """Resolve a PCI bus address to a GPU, as the inventory does."""
        for gpu in self.gpus:
            if gpu.pci_address == pci_address:
                return gpu
        return None

    def free_gpu_indices(self) -> List[int]:
        """Indices of GPUs currently not allocated to any job."""
        return [g.index for g in self.gpus if not g.busy]
