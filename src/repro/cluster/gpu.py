"""Model of a single NVIDIA A100 GPU and its mutable runtime state.

Each A100 carries 40 GB of HBM2e memory, SECDED ECC protection, and a
pool of 512 spare rows usable for row remapping (paper Table I notes:
"an NVIDIA Ampere A100 GPU supports ... up to 512-row remapping").  The
``GpuState`` tracks the remapping pool, offlined pages, and health so
the recovery layer (:mod:`repro.gpu.memory`) and the ops layer can make
the same decisions Delta's driver + SREs made.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Set

#: HBM2e capacity per A100 on Delta, in GiB.
A100_MEMORY_GIB = 40

#: Spare rows available for row remapping on an Ampere A100.
A100_SPARE_ROWS = 512

#: PCI bus addresses assigned to GPU indices 0..7 within a node.  The
#: values follow the typical HGX A100 enumeration; the analysis pipeline
#: resolves them back to GPU indices through the node inventory, exactly
#: as Delta's SREs do with their hardware database.
PCI_ADDRESSES = (
    "0000:07:00",
    "0000:46:00",
    "0000:85:00",
    "0000:C7:00",
    "0000:0B:00",
    "0000:4A:00",
    "0000:89:00",
    "0000:CB:00",
)


class GpuHealth(enum.Enum):
    """Coarse GPU health as seen by node health checks."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"  # erroring but still hosting work
    FAILED = "failed"  # requires reset/reboot before reuse
    REPLACED = "replaced"  # physically swapped out (terminal for the unit)


@dataclass
class GpuState:
    """Mutable runtime state of one physical GPU.

    Attributes:
        node: owning node name.
        index: GPU index within the node (0-based).
        serial: synthetic unit serial number; changes when the physical
            unit is swapped so analyses can track replacements.
        spare_rows_left: remaining row-remapping budget.
        remapped_rows: number of rows remapped so far on this unit.
        offlined_pages: memory pages dynamically offlined at runtime.
        health: current coarse health.
        busy: True while at least one job is using this GPU.
    """

    node: str
    index: int
    serial: str
    spare_rows_left: int = A100_SPARE_ROWS
    remapped_rows: int = 0
    offlined_pages: Set[int] = field(default_factory=set)
    health: GpuHealth = GpuHealth.HEALTHY
    busy: bool = False

    @property
    def pci_address(self) -> str:
        """PCI bus address of this GPU (stable per index)."""
        return PCI_ADDRESSES[self.index]

    @property
    def name(self) -> str:
        """Fully qualified GPU name, e.g. ``"gpua042/gpu2"``."""
        return f"{self.node}/gpu{self.index}"

    def can_remap(self) -> bool:
        """True when at least one spare row remains for remapping."""
        return self.spare_rows_left > 0

    def consume_spare_row(self) -> None:
        """Use one spare row for a successful remap.

        Raises ``RuntimeError`` if the pool is already exhausted; the
        caller must check :meth:`can_remap` and log an RRF instead.
        """
        if self.spare_rows_left <= 0:
            raise RuntimeError(f"{self.name}: spare-row pool exhausted")
        self.spare_rows_left -= 1
        self.remapped_rows += 1

    def offline_page(self, page: int) -> bool:
        """Dynamically offline a memory page; returns False if already out."""
        if page in self.offlined_pages:
            return False
        self.offlined_pages.add(page)
        return True

    def reset(self) -> None:
        """GPU reset: clears error state but keeps remap/offline history.

        Row remaps survive resets (they are recorded in the InfoROM);
        this mirrors the A100 memory-management documentation.
        """
        if self.health is not GpuHealth.REPLACED:
            self.health = GpuHealth.HEALTHY

    def replace(self, new_serial: str) -> None:
        """Physically swap the unit: fresh spare rows, clean health."""
        self.serial = new_serial
        self.spare_rows_left = A100_SPARE_ROWS
        self.remapped_rows = 0
        self.offlined_pages = set()
        self.health = GpuHealth.HEALTHY
