"""The machine under study: nodes, GPUs, NVLink topology, inventory."""

from .gpu import A100_MEMORY_GIB, A100_SPARE_ROWS, GpuHealth, GpuState
from .inventory import Inventory, InventoryEntry
from .node import Node, NodeKind, NodeState
from .topology import Cluster, ClusterShape

__all__ = [
    "A100_MEMORY_GIB",
    "A100_SPARE_ROWS",
    "GpuHealth",
    "GpuState",
    "Inventory",
    "InventoryEntry",
    "Node",
    "NodeKind",
    "NodeState",
    "Cluster",
    "ClusterShape",
]
