"""Hardware inventory: the PCI-address → GPU-index resolution table.

Raw NVRM log lines identify a GPU by PCI bus address (``NVRM: Xid
(PCI:0000:C7:00): ...``).  Delta's SREs resolve those to physical GPUs
through a hardware database; we emit the equivalent as ``inventory.json``
next to the raw logs, and the Stage-II pipeline loads it to translate
addresses back to ``(node, gpu_index)`` pairs.  Keeping this as a
separate artifact — rather than letting the analyzer peek into the
simulator — preserves the paper's actual information flow.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..core.arch import Architecture
from ..core.atomicio import atomic_write_json
from .topology import Cluster


@dataclass(frozen=True)
class InventoryEntry:
    """One GPU's identity in the hardware database.

    ``architecture`` records the silicon generation so Stage-II can
    attribute extracted errors per architecture in heterogeneous
    fleets; inventories written before the field existed load as the
    paper's homogeneous A100 default.
    """

    node: str
    gpu_index: int
    pci_address: str
    serial: str
    architecture: str = Architecture.A100.value


class Inventory:
    """PCI-address resolution table for a cluster's GPUs."""

    def __init__(self, entries: Dict[Tuple[str, str], InventoryEntry]) -> None:
        # Keyed by (node, pci_address): PCI addresses repeat across nodes.
        self._entries = entries

    @classmethod
    def from_cluster(cls, cluster: Cluster) -> "Inventory":
        """Snapshot the inventory of a simulated cluster."""
        entries: Dict[Tuple[str, str], InventoryEntry] = {}
        for node in cluster.gpu_nodes():
            arch = node.architecture
            arch_name = arch.value if arch is not None else Architecture.A100.value
            for gpu in node.gpus:
                entry = InventoryEntry(
                    node=node.name,
                    gpu_index=gpu.index,
                    pci_address=gpu.pci_address,
                    serial=gpu.serial,
                    architecture=arch_name,
                )
                entries[(node.name, gpu.pci_address)] = entry
        return cls(entries)

    def resolve(self, node: str, pci_address: str) -> Optional[int]:
        """GPU index for a (node, PCI address) pair, or ``None``."""
        entry = self._entries.get((node, pci_address))
        return entry.gpu_index if entry is not None else None

    def architecture_of(self, node: str) -> Optional[str]:
        """Architecture name of a node's GPUs, or ``None`` if unknown."""
        for (entry_node, _), entry in self._entries.items():
            if entry_node == node:
                return entry.architecture
        return None

    def node_architectures(self) -> Dict[str, str]:
        """Node name → architecture map over every inventoried node."""
        return {e.node: e.architecture for e in self._entries.values()}

    def node_counts_by_architecture(self) -> Dict[str, int]:
        """Architecture name → GPU-node count (per-arch Table I scale)."""
        counts: Dict[str, int] = {}
        for arch in self.node_architectures().values():
            counts[arch] = counts.get(arch, 0) + 1
        return counts

    def entries(self) -> Tuple[InventoryEntry, ...]:
        """All entries in stable (node, index) order."""
        return tuple(
            sorted(self._entries.values(), key=lambda e: (e.node, e.gpu_index))
        )

    def __len__(self) -> int:
        return len(self._entries)

    def save(self, path: Path) -> None:
        """Write the inventory as JSON (the ``inventory.json`` artifact)."""
        payload = [
            {
                "node": e.node,
                "gpu_index": e.gpu_index,
                "pci_address": e.pci_address,
                "serial": e.serial,
                "architecture": e.architecture,
            }
            for e in self.entries()
        ]
        atomic_write_json(path, payload, indent=2, sort_keys=False)

    @classmethod
    def load(cls, path: Path) -> "Inventory":
        """Load an inventory previously written by :meth:`save`."""
        payload = json.loads(path.read_text(encoding="utf-8"))
        entries: Dict[Tuple[str, str], InventoryEntry] = {}
        for item in payload:
            entry = InventoryEntry(
                node=item["node"],
                gpu_index=int(item["gpu_index"]),
                pci_address=item["pci_address"],
                serial=item["serial"],
                architecture=item.get(
                    "architecture", Architecture.A100.value
                ),
            )
            entries[(entry.node, entry.pci_address)] = entry
        return cls(entries)
