"""Slurm accounting database: the ``sacct``-style artifact.

The simulator writes finished jobs into a pipe-separated file (the same
shape as ``sacct -P`` output) and the analysis pipeline reads it back.
Like the paper's setup, the accounting data carries job identity,
timing, resources, placement, and exit status — and nothing about *why*
a job failed; attributing failures to GPU errors is the analysis
pipeline's task (Section V-B).

Ground truth the simulator knows (which error killed a job, whether a
job is really ML) is written to a *separate* sidecar file used only for
validating the analysis, never as its input.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.exceptions import LogFormatError
from ..core.timebase import format_slurm_timestamp, parse_slurm_timestamp
from ..core.xid import EventClass
from .types import Allocation, JobRecord, JobState, Partition

#: Column order of the sacct-style CSV.
SACCT_FIELDS = (
    "JobID",
    "JobName",
    "User",
    "Partition",
    "Submit",
    "Start",
    "End",
    "State",
    "ExitCode",
    "NNodes",
    "NodeList",
    "AllocGPUS",
    "GresIdx",
)

#: Column order of the ground-truth sidecar.
TRUTH_FIELDS = ("JobID", "KilledBy", "IsML")


def _format_gres(allocation: Allocation) -> str:
    """Encode per-node GPU indices, e.g. ``gpua001:0,1;gpua002:0``."""
    parts = [
        f"{node}:{','.join(str(i) for i in indices)}"
        for node, indices in sorted(allocation.gpus.items())
    ]
    return ";".join(parts)


def _parse_gres(text: str) -> Dict[str, Tuple[int, ...]]:
    """Decode the ``GresIdx`` field back into a node → indices map."""
    if not text:
        return {}
    gpus: Dict[str, Tuple[int, ...]] = {}
    for part in text.split(";"):
        try:
            node, idx_text = part.split(":")
            gpus[node] = tuple(int(i) for i in idx_text.split(","))
        except ValueError as exc:
            raise LogFormatError(f"bad GresIdx fragment {part!r}") from exc
    return gpus


class AccountingWriter:
    """Streams finished jobs into the sacct CSV and the truth sidecar.

    Usable as the scheduler's ``on_job_end`` hook; call :meth:`close`
    (or use as a context manager) when the simulation finishes.
    """

    def __init__(self, sacct_path: Path, truth_path: Optional[Path] = None) -> None:
        self._sacct_file = open(sacct_path, "w", newline="", encoding="utf-8")
        self._sacct = csv.writer(self._sacct_file, delimiter="|")
        self._sacct.writerow(SACCT_FIELDS)
        self._truth_file = None
        self._truth = None
        if truth_path is not None:
            self._truth_file = open(truth_path, "w", newline="", encoding="utf-8")
            self._truth = csv.writer(self._truth_file, delimiter="|")
            self._truth.writerow(TRUTH_FIELDS)
        self._count = 0

    def write(self, record: JobRecord) -> None:
        """Append one finished job."""
        self._sacct.writerow(
            (
                record.job_id,
                record.name,
                record.user,
                record.partition.value,
                format_slurm_timestamp(record.submit_time),
                format_slurm_timestamp(record.start_time),
                format_slurm_timestamp(record.end_time),
                record.state.value,
                f"{record.exit_code}:0",
                len(record.allocation.nodes),
                ",".join(record.allocation.nodes),
                record.gpu_count,
                _format_gres(record.allocation),
            )
        )
        if self._truth is not None:
            self._truth.writerow(
                (
                    record.job_id,
                    record.killed_by.value if record.killed_by else "",
                    int(record.is_ml_truth),
                )
            )
        self._count += 1

    @property
    def count(self) -> int:
        """Jobs written so far."""
        return self._count

    def close(self) -> None:
        """Flush and close the underlying files."""
        self._sacct_file.close()
        if self._truth_file is not None:
            self._truth_file.close()

    def __enter__(self) -> "AccountingWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_accounting(path: Path) -> Iterator[JobRecord]:
    """Stream job records back out of a sacct CSV.

    ``killed_by``/``is_ml_truth`` are not present in the accounting data
    (by design); records come back with their defaults.
    """
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter="|")
        header = next(reader, None)
        if header is None or tuple(header) != SACCT_FIELDS:
            raise LogFormatError(f"{path}: unrecognized sacct header {header}")
        for row in reader:
            if len(row) != len(SACCT_FIELDS):
                raise LogFormatError(f"{path}: malformed row {row!r}")
            (
                job_id,
                name,
                user,
                partition,
                submit,
                start,
                end,
                state,
                exit_code,
                _nnodes,
                node_list,
                alloc_gpus,
                gres_idx,
            ) = row
            nodes = tuple(node_list.split(",")) if node_list else ()
            yield JobRecord(
                job_id=int(job_id),
                name=name,
                user=user,
                partition=Partition(partition),
                submit_time=parse_slurm_timestamp(submit),
                start_time=parse_slurm_timestamp(start),
                end_time=parse_slurm_timestamp(end),
                state=JobState(state),
                exit_code=int(exit_code.split(":")[0]),
                allocation=Allocation(nodes=nodes, gpus=_parse_gres(gres_idx)),
                gpu_count=int(alloc_gpus),
            )


def read_ground_truth(path: Path) -> Dict[int, Tuple[Optional[EventClass], bool]]:
    """Load the validation sidecar: job id → (killer class, is_ml)."""
    truth: Dict[int, Tuple[Optional[EventClass], bool]] = {}
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter="|")
        header = next(reader, None)
        if header is None or tuple(header) != TRUTH_FIELDS:
            raise LogFormatError(f"{path}: unrecognized truth header {header}")
        for job_id, killed_by, is_ml in reader:
            killer = EventClass(killed_by) if killed_by else None
            truth[int(job_id)] = (killer, bool(int(is_ml)))
    return truth


def load_records(path: Path) -> List[JobRecord]:
    """Eagerly load a whole accounting file (convenience for analyses)."""
    return list(read_accounting(path))
