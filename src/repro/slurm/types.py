"""Slurm-side data types: job requests, allocations, accounting records.

The fields mirror what the paper pulled from Delta's Slurm database
(Section III-A): per-job submission/start/end times, resources
requested, scheduled nodes, exit status, and the job name used for the
ML-workload heuristic of Section V-A.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core.xid import EventClass


class JobState(enum.Enum):
    """Terminal job states (subset of Slurm's)."""

    COMPLETED = "COMPLETED"
    FAILED = "FAILED"
    NODE_FAIL = "NODE_FAIL"
    CANCELLED = "CANCELLED"

    @property
    def is_success(self) -> bool:
        """True only for a clean completion."""
        return self is JobState.COMPLETED


class Partition(enum.Enum):
    """Delta partitions relevant to the study."""

    GPU_A100_X4 = "gpuA100x4"
    GPU_A100_X8 = "gpuA100x8"
    CPU = "cpu"

    @property
    def is_gpu(self) -> bool:
        """True for the A100 partitions."""
        return self is not Partition.CPU


@dataclass(frozen=True)
class JobRequest:
    """A job submission as the scheduler sees it.

    Attributes:
        job_id: unique integer id (monotone in submit order).
        name: job name — carries the ML signal for Section V-A's
            keyword heuristic.
        user: synthetic username.
        partition: target partition.
        submit_time: submission instant (seconds).
        gpu_count: GPUs requested (0 for CPU jobs).
        duration: natural runtime if nothing kills the job (seconds).
        intrinsic_failure: True when the job would fail on its own
            (user bug, OOM, bad input — the ~25% non-GPU failure mass
            of Section V-A).
        is_ml: ground-truth ML flag used only to *validate* the
            name-based classifier, never by the analysis itself.
        gang_nodes: when set, the job is a gang: it must receive an
            all-or-nothing allocation of exactly this many whole nodes
            (``gpu_count`` split evenly across them), and a fatal GPU
            error on any member node kills the entire job.
    """

    job_id: int
    name: str
    user: str
    partition: Partition
    submit_time: float
    gpu_count: int
    duration: float
    intrinsic_failure: bool = False
    is_ml: bool = False
    gang_nodes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"job {self.job_id}: non-positive duration")
        if self.gpu_count < 0:
            raise ValueError(f"job {self.job_id}: negative gpu_count")
        if self.partition.is_gpu and self.gpu_count == 0:
            raise ValueError(f"job {self.job_id}: GPU partition but 0 GPUs")
        if self.gang_nodes is not None:
            if self.gang_nodes < 1:
                raise ValueError(f"job {self.job_id}: gang_nodes must be >= 1")
            if not self.partition.is_gpu:
                raise ValueError(f"job {self.job_id}: CPU jobs cannot gang")
            if self.gpu_count % self.gang_nodes != 0:
                raise ValueError(
                    f"job {self.job_id}: gpu_count {self.gpu_count} not "
                    f"divisible across {self.gang_nodes} gang nodes"
                )

    @property
    def is_gang(self) -> bool:
        """True for all-or-nothing multi-node gang jobs."""
        return self.gang_nodes is not None

    @property
    def gpus_per_gang_node(self) -> int:
        """GPUs each gang member node contributes (0 for non-gangs)."""
        if self.gang_nodes is None:
            return 0
        return self.gpu_count // self.gang_nodes


@dataclass(frozen=True)
class Allocation:
    """Concrete resources granted to a running job.

    ``gpus`` maps node name → allocated GPU indices on that node
    (empty tuple values never appear; CPU jobs have an empty dict).
    """

    nodes: Tuple[str, ...]
    gpus: Dict[str, Tuple[int, ...]] = field(default_factory=dict)

    @property
    def gpu_count(self) -> int:
        """Total GPUs in the allocation."""
        return sum(len(v) for v in self.gpus.values())

    def uses_gpu(self, node: str, gpu_index: int) -> bool:
        """True when the allocation includes a specific GPU."""
        return gpu_index in self.gpus.get(node, ())

    def gpus_on(self, node: str) -> Tuple[int, ...]:
        """GPU indices held on one node (empty tuple if none)."""
        return self.gpus.get(node, ())


@dataclass
class JobRecord:
    """The finished-job record written to the accounting database.

    This is the analysis-facing artifact; ``killed_by`` and
    ``failed_node`` are simulator ground truth kept for validation and
    recovery bookkeeping and are *not* serialized into the sacct CSV
    the pipeline reads.
    """

    job_id: int
    name: str
    user: str
    partition: Partition
    submit_time: float
    start_time: float
    end_time: float
    state: JobState
    exit_code: int
    allocation: Allocation
    gpu_count: int
    is_ml_truth: bool = False
    killed_by: Optional[EventClass] = None
    failed_node: Optional[str] = None

    @property
    def elapsed(self) -> float:
        """Wall-clock runtime in seconds."""
        return self.end_time - self.start_time

    @property
    def elapsed_minutes(self) -> float:
        """Wall-clock runtime in minutes (Table III's unit)."""
        return self.elapsed / 60.0

    @property
    def gpu_hours(self) -> float:
        """GPU-hours consumed (Table III's resource metric)."""
        return self.gpu_count * self.elapsed / 3600.0
