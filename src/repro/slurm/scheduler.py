"""The Slurm-like scheduler running Delta's synthetic workload.

A deliberately faithful-but-compact scheduler: FIFO with a
first-fit scan over the whole queue (a conservative stand-in for
Slurm's backfill), GPU-granular placement on the A100 partitions,
slot-based placement on the CPU partition, and the drain/return
protocol the ops layer drives.

The scheduler is also where GPU errors meet jobs: the fault injector
asks :meth:`jobs_using_gpu` / :meth:`jobs_on_node` and then calls
:meth:`kill_job` for the victims, which ends the job with ``FAILED`` or
``NODE_FAIL`` within the sub-20-second window the paper's attribution
method relies on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..cluster.node import NodeState
from ..cluster.topology import Cluster
from ..core.exceptions import SchedulingError
from ..core.xid import EventClass
from ..obs.metrics import NOOP
from ..sim.engine import Engine, EventHandle
from .types import Allocation, JobRecord, JobRequest, JobState, Partition

#: Concurrent jobs a CPU node can host (two 64-core EPYCs, slot model).
CPU_SLOTS_PER_NODE = 8


@dataclass
class _RunningJob:
    """Scheduler-internal state of a started job."""

    request: JobRequest
    start_time: float
    allocation: Allocation
    end_handle: EventHandle
    killed_by: Optional[EventClass] = None
    failed_node: Optional[str] = None


class Scheduler:
    """FIFO + first-fit scheduler over the simulated cluster.

    Args:
        engine: simulation kernel (job starts/ends are its events).
        cluster: the machine; GPU ``busy`` flags and node states are
            kept in sync with allocations.
        on_job_end: optional hook invoked with each finished
            :class:`~repro.slurm.types.JobRecord` (the accounting DB
            subscribes here).
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            submit/start/finish counters, queue-depth gauges, and a
            job-duration histogram are maintained when present.
    """

    def __init__(
        self,
        engine: Engine,
        cluster: Cluster,
        on_job_end: Optional[Callable[[JobRecord], None]] = None,
        metrics=None,
    ) -> None:
        self._engine = engine
        self._cluster = cluster
        self._on_job_end = on_job_end
        self._queue: Deque[JobRequest] = deque()
        self._running: Dict[int, _RunningJob] = {}
        self._jobs_by_node: Dict[str, set] = {}
        self._cpu_slots_used: Dict[str, int] = {}
        self._empty_callbacks: Dict[str, List[Callable[[], None]]] = {}
        self._drained: set = set()
        self._start_listeners: List[Callable[[JobRequest, Allocation], None]] = []
        self._end_listeners: List[Callable[[JobRecord], None]] = []
        self.records: List[JobRecord] = []
        if metrics is None:
            self._m_submitted = self._m_started = NOOP
            self._m_finished = self._m_killed = NOOP
            self._m_queue_depth = self._m_running_jobs = NOOP
            self._m_duration = NOOP
        else:
            self._m_submitted = metrics.counter(
                "slurm_jobs_submitted_total", "job requests enqueued"
            )
            self._m_started = metrics.counter(
                "slurm_jobs_started_total", "jobs placed and started"
            )
            self._m_finished = metrics.counter(
                "slurm_jobs_finished_total",
                "jobs finished, by terminal Slurm state",
                labels=("state",),
            )
            self._m_killed = metrics.counter(
                "slurm_jobs_killed_total",
                "jobs killed by a GPU error, by causal event class",
                labels=("cause",),
            )
            self._m_queue_depth = metrics.gauge(
                "slurm_queue_depth", "jobs waiting for resources"
            )
            self._m_running_jobs = metrics.gauge(
                "slurm_running_jobs", "jobs currently executing"
            )
            self._m_duration = metrics.histogram(
                "slurm_job_duration_hours",
                "wall duration of finished jobs in hours",
                buckets=(0.05, 0.25, 1.0, 4.0, 12.0, 24.0, 48.0, 96.0),
            )

    # ------------------------------------------------------------------
    # Submission and placement
    # ------------------------------------------------------------------

    def submit(self, request: JobRequest) -> None:
        """Enqueue a job and immediately try to place queued work."""
        self._queue.append(request)
        self._m_submitted.inc()
        self._try_schedule()

    def _try_schedule(self) -> None:
        """First-fit scan over the queue; starts everything that fits."""
        if not self._queue:
            return
        still_waiting: Deque[JobRequest] = deque()
        while self._queue:
            request = self._queue.popleft()
            allocation = self._find_allocation(request)
            if allocation is None:
                still_waiting.append(request)
            else:
                self._start_job(request, allocation)
        self._queue = still_waiting
        self._m_queue_depth.set(len(self._queue))

    def _find_allocation(self, request: JobRequest) -> Optional[Allocation]:
        if request.partition is Partition.CPU:
            return self._find_cpu_allocation()
        return self._find_gpu_allocation(request)

    def _find_cpu_allocation(self) -> Optional[Allocation]:
        for node in self._cluster.cpu_nodes():
            if not node.schedulable or node.name in self._drained:
                continue
            used = self._cpu_slots_used.get(node.name, 0)
            if used < CPU_SLOTS_PER_NODE:
                return Allocation(nodes=(node.name,))
        return None

    def _find_gpu_allocation(self, request: JobRequest) -> Optional[Allocation]:
        count = request.gpu_count
        candidates = [
            n
            for n in self._cluster.gpu_nodes()
            if n.schedulable and n.name not in self._drained
        ]
        if request.is_gang:
            return self._find_gang_allocation(request, candidates)
        # Single-node placement: smallest node that fits, fewest leftover.
        if count <= 8:
            best = None
            for node in candidates:
                free = node.free_gpu_indices()
                if len(free) >= count and node.gpu_count >= count:
                    if best is None or len(free) < len(best[1]):
                        best = (node, free)
            if best is not None:
                node, free = best
                chosen = tuple(free[:count])
                return Allocation(nodes=(node.name,), gpus={node.name: chosen})
            if count <= 4:
                return None
            # fall through: 5-8 GPU jobs may span two 4-way nodes
        # Multi-node placement: grab fully idle nodes until covered.
        chosen_nodes: List[Tuple[str, Tuple[int, ...]]] = []
        remaining = count
        for node in candidates:
            free = node.free_gpu_indices()
            if len(free) != node.gpu_count:
                continue  # exclusive whole-node allocations only
            take = min(remaining, len(free))
            chosen_nodes.append((node.name, tuple(free[:take])))
            remaining -= take
            if remaining == 0:
                break
        if remaining > 0:
            return None
        return Allocation(
            nodes=tuple(n for n, _ in chosen_nodes),
            gpus={n: g for n, g in chosen_nodes},
        )

    def _find_gang_allocation(
        self, request: JobRequest, candidates
    ) -> Optional[Allocation]:
        """All-or-nothing placement: exactly ``gang_nodes`` idle nodes.

        Gang members seize entire idle nodes — every GPU on the node,
        even when the gang nominally needs fewer (exclusive use; real
        gang schedulers pin topology) — and the allocation only exists
        when all members fit at once; a partial gang never starts.
        """
        per_node = request.gpus_per_gang_node
        chosen: List[Tuple[str, Tuple[int, ...]]] = []
        for node in candidates:
            free = node.free_gpu_indices()
            if len(free) != node.gpu_count or node.gpu_count < per_node:
                continue
            chosen.append((node.name, tuple(free)))
            if len(chosen) == request.gang_nodes:
                return Allocation(
                    nodes=tuple(n for n, _ in chosen),
                    gpus={n: g for n, g in chosen},
                )
        return None

    def can_place(self, request: JobRequest) -> bool:
        """True when the request would be allocated right now.

        A pure probe: no resources change hands.  The recovery engine
        uses this to decide between submitting a restarted gang segment
        and backing off.
        """
        return self._find_allocation(request) is not None

    def _start_job(self, request: JobRequest, allocation: Allocation) -> None:
        now = self._engine.now
        for node_name, indices in allocation.gpus.items():
            node = self._cluster.node(node_name)
            for index in indices:
                gpu = node.gpu(index)
                if gpu.busy:
                    raise SchedulingError(f"{gpu.name} double-allocated")
                gpu.busy = True
            node.state = NodeState.ALLOCATED
        if request.partition is Partition.CPU:
            node_name = allocation.nodes[0]
            self._cpu_slots_used[node_name] = (
                self._cpu_slots_used.get(node_name, 0) + 1
            )
        handle = self._engine.schedule(
            now + request.duration,
            lambda: self._natural_end(request.job_id),
            priority=10,
            label=f"jobend:{request.job_id}",
        )
        running = _RunningJob(
            request=request,
            start_time=now,
            allocation=allocation,
            end_handle=handle,
        )
        self._running[request.job_id] = running
        for node_name in allocation.nodes:
            self._jobs_by_node.setdefault(node_name, set()).add(request.job_id)
        self._m_started.inc()
        self._m_running_jobs.set(len(self._running))
        for listener in self._start_listeners:
            listener(request, allocation)

    # ------------------------------------------------------------------
    # Job termination
    # ------------------------------------------------------------------

    def _natural_end(self, job_id: int) -> None:
        running = self._running.get(job_id)
        if running is None:
            return
        if running.request.intrinsic_failure:
            self._finish(running, JobState.FAILED, exit_code=1)
        else:
            self._finish(running, JobState.COMPLETED, exit_code=0)

    def kill_job(
        self,
        job_id: int,
        cause: EventClass,
        node_failure: bool = False,
        node: Optional[str] = None,
    ) -> bool:
        """Terminate a running job because of a GPU error.

        ``node`` records which member node hosted the fatal error so
        the recovery engine knows what to drain.  Returns False when
        the job already ended (races between an error and a natural
        completion resolve in event order).
        """
        running = self._running.get(job_id)
        if running is None:
            return False
        running.end_handle.cancel()
        running.killed_by = cause
        running.failed_node = node
        self._m_killed.labels(cause=cause.value).inc()
        state = JobState.NODE_FAIL if node_failure else JobState.FAILED
        self._finish(running, state, exit_code=137)
        return True

    def _finish(self, running: _RunningJob, state: JobState, exit_code: int) -> None:
        request = running.request
        record = JobRecord(
            job_id=request.job_id,
            name=request.name,
            user=request.user,
            partition=request.partition,
            submit_time=request.submit_time,
            start_time=running.start_time,
            end_time=self._engine.now,
            state=state,
            exit_code=exit_code,
            allocation=running.allocation,
            gpu_count=request.gpu_count,
            is_ml_truth=request.is_ml,
            killed_by=running.killed_by,
            failed_node=running.failed_node,
        )
        # Release resources.
        for node_name, indices in running.allocation.gpus.items():
            node = self._cluster.node(node_name)
            for index in indices:
                node.gpu(index).busy = False
            if not any(g.busy for g in node.gpus) and node.state is NodeState.ALLOCATED:
                node.state = NodeState.IDLE
        if request.partition is Partition.CPU:
            node_name = running.allocation.nodes[0]
            self._cpu_slots_used[node_name] = max(
                0, self._cpu_slots_used.get(node_name, 1) - 1
            )
        del self._running[request.job_id]
        for node_name in running.allocation.nodes:
            members = self._jobs_by_node.get(node_name)
            if members is not None:
                members.discard(request.job_id)
                if not members:
                    self._fire_empty_callbacks(node_name)
        self.records.append(record)
        self._m_finished.labels(state=state.value).inc()
        self._m_duration.observe((record.end_time - record.start_time) / 3600.0)
        self._m_running_jobs.set(len(self._running))
        if self._on_job_end is not None:
            self._on_job_end(record)
        for listener in self._end_listeners:
            listener(record)
        self._try_schedule()

    # ------------------------------------------------------------------
    # Fault-injection queries
    # ------------------------------------------------------------------

    def jobs_using_gpu(self, node: str, gpu_index: int) -> List[int]:
        """Job ids whose allocation includes a specific GPU."""
        return [
            job_id
            for job_id in self._jobs_by_node.get(node, ())
            if self._running[job_id].allocation.uses_gpu(node, gpu_index)
        ]

    def jobs_on_node(self, node: str) -> List[int]:
        """Job ids with any allocation on the node."""
        return sorted(self._jobs_by_node.get(node, ()))

    def job_gpu_count(self, job_id: int) -> int:
        """Total GPUs a running job holds (0 if not running)."""
        running = self._running.get(job_id)
        return 0 if running is None else running.request.gpu_count

    def is_gang(self, job_id: int) -> bool:
        """True when a *running* job is a gang member segment."""
        running = self._running.get(job_id)
        return running is not None and running.request.is_gang

    def add_job_start_listener(
        self, listener: Callable[[JobRequest, Allocation], None]
    ) -> None:
        """Subscribe to every job start (request, granted allocation)."""
        self._start_listeners.append(listener)

    def add_job_end_listener(self, listener: Callable[[JobRecord], None]) -> None:
        """Subscribe to every finished-job record.

        Unlike ``on_job_end`` (reserved for the accounting DB), any
        number of listeners can subscribe; the recovery engine uses
        this to notice gang deaths.
        """
        self._end_listeners.append(listener)

    def nodes_with_multi_gpu_jobs(self) -> List[str]:
        """Nodes currently hosting at least one multi-GPU job.

        Used by the NVLink fault model: links carrying active traffic
        fail disproportionately under load.
        """
        nodes: set = set()
        for running in self._running.values():
            if running.request.gpu_count >= 2:
                nodes.update(running.allocation.nodes)
        return sorted(nodes)

    def gpu_busy_fraction(self) -> float:
        """Fraction of the cluster's A100s currently allocated."""
        gpus = self._cluster.gpus()
        if not gpus:
            return 0.0
        return sum(1 for g in gpus if g.busy) / len(gpus)

    # ------------------------------------------------------------------
    # Ops control surface (SchedulerControl protocol)
    # ------------------------------------------------------------------

    def drain_node(self, node: str) -> None:
        """Stop placing new work on the node."""
        self._drained.add(node)

    def jobs_running_on(self, node: str) -> int:
        """Number of jobs currently running on the node."""
        return len(self._jobs_by_node.get(node, ()))

    def notify_when_empty(self, node: str, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` once the node has no running jobs."""
        if self.jobs_running_on(node) == 0:
            callback()
        else:
            self._empty_callbacks.setdefault(node, []).append(callback)

    def node_returned(self, node: str) -> None:
        """Node passed health checks; resume placing work on it."""
        self._drained.discard(node)
        self._try_schedule()

    def _fire_empty_callbacks(self, node: str) -> None:
        callbacks = self._empty_callbacks.pop(node, [])
        for callback in callbacks:
            callback()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def queued_count(self) -> int:
        """Jobs waiting for resources."""
        return len(self._queue)

    @property
    def running_count(self) -> int:
        """Jobs currently executing."""
        return len(self._running)
