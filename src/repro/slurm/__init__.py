"""Slurm-like scheduler and sacct-style accounting database."""

from .accounting import (
    AccountingWriter,
    load_records,
    read_accounting,
    read_ground_truth,
)
from .scheduler import CPU_SLOTS_PER_NODE, Scheduler
from .types import Allocation, JobRecord, JobRequest, JobState, Partition

__all__ = [
    "AccountingWriter",
    "load_records",
    "read_accounting",
    "read_ground_truth",
    "CPU_SLOTS_PER_NODE",
    "Scheduler",
    "Allocation",
    "JobRecord",
    "JobRequest",
    "JobState",
    "Partition",
]
