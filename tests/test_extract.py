"""Unit tests for Stage-II extraction (repro.pipeline.extract)."""

import pytest

from repro.cluster.inventory import Inventory
from repro.cluster.topology import Cluster
from repro.core.xid import EventClass
from repro.pipeline.extract import XidExtractor, extract_all
from repro.syslog.reader import RawLine
from repro.syslog.records import LogRecord
from repro.syslog.writer import write_day_partitioned


def line(message: str, time: float = 10.0, host: str = "gpua001") -> RawLine:
    return RawLine(time=time, host=host, message=message)


class TestLineClassification:
    def test_xid_line_extracted(self):
        extractor = XidExtractor()
        hit = extractor.extract_line(
            line("kernel: NVRM: Xid (PCI:0000:07:00): 79, pid=1, GPU has fallen off the bus.")
        )
        assert hit is not None
        assert hit.event_class is EventClass.FALLEN_OFF_BUS
        assert hit.xid == 79
        assert hit.pci_address == "0000:07:00"
        assert hit.gpu_index is None  # no inventory attached

    def test_paired_codes_map_to_one_class(self):
        extractor = XidExtractor()
        for code in (119, 120):
            hit = extractor.extract_line(
                line(f"kernel: NVRM: Xid (PCI:0000:07:00): {code}, pid=1, GSP timeout")
            )
            assert hit.event_class is EventClass.GSP_ERROR

    def test_excluded_xids_skipped_and_counted(self):
        extractor = XidExtractor()
        assert (
            extractor.extract_line(
                line("kernel: NVRM: Xid (PCI:0000:07:00): 13, pid=1, warp exception")
            )
            is None
        )
        assert (
            extractor.extract_line(
                line("kernel: NVRM: Xid (PCI:0000:07:00): 43, pid=1, reset channel")
            )
            is None
        )
        assert extractor.stats.excluded_xid_lines == 2
        assert extractor.stats.matched_lines == 0

    def test_unknown_xid_counted(self):
        extractor = XidExtractor()
        assert (
            extractor.extract_line(
                line("kernel: NVRM: Xid (PCI:0000:07:00): 32, pid=1, whatever")
            )
            is None
        )
        assert extractor.stats.unknown_xid_lines == 1

    def test_ecc_accounting_line_extracted(self):
        extractor = XidExtractor()
        hit = extractor.extract_line(
            line(
                "kernel: NVRM: GPU at PCI:0000:46:00: uncorrectable ECC "
                "error detected; volatile count incremented"
            )
        )
        assert hit is not None
        assert hit.event_class is EventClass.UNCORRECTABLE_ECC
        assert hit.xid is None

    def test_benign_lines_ignored(self):
        extractor = XidExtractor()
        assert extractor.extract_line(line("slurmd[1]: epilog complete")) is None
        assert extractor.stats.total_lines == 1
        assert extractor.stats.matched_lines == 0


class TestInventoryResolution:
    def test_pci_resolved_to_index(self, small_cluster):
        inventory = Inventory.from_cluster(small_cluster)
        extractor = XidExtractor(inventory)
        gpu = small_cluster.node("gpua001").gpu(2)
        hit = extractor.extract_line(
            line(
                f"kernel: NVRM: Xid (PCI:{gpu.pci_address}): 31, pid=1, MMU Fault",
                host="gpua001",
            )
        )
        assert hit.gpu_index == 2

    def test_unknown_pci_counted(self, small_cluster):
        inventory = Inventory.from_cluster(small_cluster)
        extractor = XidExtractor(inventory)
        hit = extractor.extract_line(
            line("kernel: NVRM: Xid (PCI:0000:FF:00): 31, pid=1, MMU Fault")
        )
        assert hit.gpu_index is None
        assert extractor.stats.unresolved_pci_lines == 1


class TestDirectoryExtraction:
    def test_extract_all_over_directory(self, tmp_path, small_cluster):
        inventory = Inventory.from_cluster(small_cluster)
        gpu = small_cluster.node("gpua001").gpu(0)
        records = [
            LogRecord(
                time=100.0,
                host="gpua001",
                message=f"kernel: NVRM: Xid (PCI:{gpu.pci_address}): 74, pid=9, NVLink error",
            ),
            LogRecord(time=101.0, host="gpua001", message="slurmd[1]: noise"),
            LogRecord(
                time=86_500.0,
                host="gpua001",
                message=f"kernel: NVRM: Xid (PCI:{gpu.pci_address}): 13, pid=9, app bug",
            ),
        ]
        write_day_partitioned(tmp_path, records)
        hits = extract_all(tmp_path, inventory)
        assert len(hits) == 1
        assert hits[0].event_class is EventClass.NVLINK_ERROR
        assert hits[0].gpu_index == 0

    def test_malformed_lines_tolerated(self, tmp_path):
        write_day_partitioned(
            tmp_path,
            [LogRecord(time=10.0, host="gpua001", message="kernel: fine")],
        )
        path = next(tmp_path.glob("*.log"))
        with open(path, "a") as handle:
            handle.write("completely broken line\n")
            handle.write(
                "2022-01-01T00:01:00.000000 gpua001 kernel: NVRM: Xid "
                "(PCI:0000:07:00): 79, pid=1, GPU has fallen off the bus.\n"
            )
        extractor = XidExtractor()
        hits = list(extractor.extract_directory(tmp_path))
        assert len(hits) == 1
        assert extractor.stats.malformed_lines == 1
