"""StreamingQuantile: accuracy bounds, mergeability, state round-trip.

The accuracy tests are property-style: seeded draws from known
distributions, estimates compared against ``statistics.quantiles`` on
the retained samples, asserting the sketch's *relative* value-error
guarantee ``(γ−1)/(γ+1) ≈ α`` (with slack for the interpolation
difference between the two estimators).
"""

import math
import random
import statistics

import pytest

from repro.obs.quantile import StreamingQuantile


def _exact_quantile(samples, q):
    """Reference quantile via statistics.quantiles (inclusive grid)."""
    cuts = statistics.quantiles(samples, n=1000, method="inclusive")
    index = min(len(cuts) - 1, max(0, int(round(q * 1000)) - 1))
    return cuts[index]


def _assert_close(estimate, exact, alpha, slack=2.5):
    """Relative error within the sketch's guarantee (plus grid slack)."""
    assert math.isfinite(estimate)
    denominator = max(abs(exact), 1e-9)
    relative = abs(estimate - exact) / denominator
    assert relative <= alpha * slack, (
        f"estimate {estimate} vs exact {exact}: "
        f"relative error {relative:.4f} > {alpha * slack:.4f}"
    )


class TestAccuracy:
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_uniform_distribution(self, seed):
        rng = random.Random(seed)
        sketch = StreamingQuantile()
        samples = []
        for _ in range(5000):
            value = rng.uniform(0.0005, 2.0)
            samples.append(value)
            sketch.observe(value)
        for q in (0.50, 0.90, 0.95, 0.99):
            _assert_close(
                sketch.quantile(q), _exact_quantile(samples, q), sketch.alpha
            )

    @pytest.mark.parametrize("seed", [3, 11])
    def test_lognormal_distribution(self, seed):
        rng = random.Random(seed)
        sketch = StreamingQuantile()
        samples = []
        for _ in range(5000):
            value = rng.lognormvariate(-4.0, 1.0)  # latency-like, ~18 ms median
            samples.append(value)
            sketch.observe(value)
        for q in (0.50, 0.95, 0.99):
            _assert_close(
                sketch.quantile(q), _exact_quantile(samples, q), sketch.alpha
            )

    def test_extremes_clamped_to_observed_range(self):
        sketch = StreamingQuantile()
        for value in (0.010, 0.020, 0.030):
            sketch.observe(value)
        assert sketch.quantile(0.0) == pytest.approx(0.010)
        assert sketch.quantile(1.0) == pytest.approx(0.030)

    def test_mean_and_max_are_exact(self):
        sketch = StreamingQuantile()
        values = [0.001, 0.002, 0.5, 1.25]
        for value in values:
            sketch.observe(value)
        assert sketch.mean == pytest.approx(sum(values) / len(values))
        assert sketch.max == 1.25
        assert sketch.min == 0.001
        assert sketch.sum == pytest.approx(sum(values))


class TestEdgeCases:
    def test_empty_sketch(self):
        sketch = StreamingQuantile()
        assert math.isnan(sketch.quantile(0.5))
        assert math.isnan(sketch.mean)
        assert sketch.summary() == {
            "count": 0, "mean": 0.0, "p50": 0.0,
            "p95": 0.0, "p99": 0.0, "max": 0.0,
        }

    def test_negative_observation_rejected(self):
        with pytest.raises(ValueError):
            StreamingQuantile().observe(-0.1)

    def test_bad_quantile_rejected(self):
        sketch = StreamingQuantile()
        sketch.observe(1.0)
        with pytest.raises(ValueError):
            sketch.quantile(1.5)

    def test_zero_bucket(self):
        sketch = StreamingQuantile()
        for _ in range(10):
            sketch.observe(0.0)
        sketch.observe(1.0)
        assert sketch.quantile(0.5) == 0.0
        assert sketch.quantile(1.0) == 1.0

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            StreamingQuantile(alpha=0.0)
        with pytest.raises(ValueError):
            StreamingQuantile(alpha=1.0)
        with pytest.raises(ValueError):
            StreamingQuantile(min_value=0.0)


def _sketch_of(values):
    sketch = StreamingQuantile()
    for value in values:
        sketch.observe(value)
    return sketch


class TestMerge:
    def test_merge_equals_single_sketch(self):
        rng = random.Random(5)
        values = [rng.lognormvariate(-4.0, 1.0) for _ in range(3000)]
        whole = _sketch_of(values)
        left = _sketch_of(values[:1000])
        right = _sketch_of(values[1000:])
        assert left.merge(right) is left
        assert left == whole

    def test_merge_is_associative(self):
        rng = random.Random(9)
        chunks = [
            [rng.uniform(0.001, 1.0) for _ in range(500)] for _ in range(3)
        ]
        a1, b1, c1 = (_sketch_of(chunk) for chunk in chunks)
        a2, b2, c2 = (_sketch_of(chunk) for chunk in chunks)
        left_fold = a1.merge(b1).merge(c1)
        b2.merge(c2)
        right_fold = a2.merge(b2)
        assert left_fold == right_fold

    def test_merge_resolution_mismatch_rejected(self):
        with pytest.raises(ValueError):
            StreamingQuantile(alpha=0.02).merge(StreamingQuantile(alpha=0.01))

    def test_merge_empty_is_identity(self):
        sketch = _sketch_of([0.1, 0.2])
        before = sketch.to_state()
        sketch.merge(StreamingQuantile())
        assert sketch.to_state() == before


class TestState:
    def test_round_trip(self):
        sketch = _sketch_of([0.0, 0.001, 0.05, 2.0])
        rebuilt = StreamingQuantile.from_state(sketch.to_state())
        assert rebuilt == sketch
        assert rebuilt.quantile(0.95) == sketch.quantile(0.95)

    def test_state_is_json_safe(self):
        import json

        state = _sketch_of([0.01, 0.2]).to_state()
        rebuilt = StreamingQuantile.from_state(json.loads(json.dumps(state)))
        assert rebuilt == _sketch_of([0.01, 0.2])

    def test_empty_round_trip(self):
        rebuilt = StreamingQuantile.from_state(StreamingQuantile().to_state())
        assert rebuilt.count == 0
        assert math.isnan(rebuilt.quantile(0.5))
