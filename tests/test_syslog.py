"""Unit tests for the syslog substrate (records, nvrm, writer, reader,
noise)."""

import numpy as np
import pytest

from repro.core.exceptions import LogFormatError
from repro.core.periods import StudyWindow
from repro.core.timebase import DAY, HOUR
from repro.core.xid import EventClass
from repro.syslog.noise import NoiseConfig, generate_noise
from repro.syslog.nvrm import ecc_accounting_line, render_event_line, xid_line
from repro.syslog.reader import (
    iter_parsed_lines,
    list_day_files,
    parse_line,
)
from repro.syslog.records import LogBus, LogRecord
from repro.syslog.writer import day_file_name, write_day_partitioned


class TestNvrmFormats:
    def test_xid_line_shape(self):
        line = xid_line(79, "0000:C7:00", pid=1234)
        assert line == (
            "kernel: NVRM: Xid (PCI:0000:C7:00): 79, pid=1234, "
            "GPU has fallen off the bus."
        )

    @pytest.mark.parametrize(
        "xid", [13, 31, 43, 48, 63, 64, 74, 79, 94, 95, 119, 120, 122, 123]
    )
    def test_all_known_codes_render(self, xid):
        line = xid_line(xid, "0000:07:00", pid=1)
        assert f"): {xid}," in line

    def test_unknown_code_raises(self):
        with pytest.raises(KeyError):
            xid_line(999, "0000:07:00", pid=1)

    def test_ecc_accounting_line(self):
        line = ecc_accounting_line("0000:46:00")
        assert "uncorrectable ECC" in line
        assert "PCI:0000:46:00" in line
        assert "Xid" not in line

    def test_render_event_line_dispatch(self, rng):
        ecc = render_event_line(
            EventClass.UNCORRECTABLE_ECC, None, "0000:07:00", rng
        )
        assert "uncorrectable ECC" in ecc
        gsp = render_event_line(EventClass.GSP_ERROR, 119, "0000:07:00", rng)
        assert "): 119," in gsp


class TestLogBus:
    def test_emit_and_sort(self):
        bus = LogBus()
        bus.emit(20.0, "gpua002", "b")
        bus.emit(10.0, "gpua001", "a")
        bus.emit(20.0, "gpua001", "c")
        records = bus.sorted_records()
        assert [(r.time, r.host) for r in records] == [
            (10.0, "gpua001"),
            (20.0, "gpua001"),
            (20.0, "gpua002"),
        ]
        assert len(bus) == 3

    def test_render_line(self):
        record = LogRecord(time=0.5, host="gpua001", message="kernel: hello")
        assert record.render() == "2022-01-01T00:00:00.500000 gpua001 kernel: hello"


class TestWriterReader:
    def test_day_file_name(self):
        assert day_file_name(0.0) == "syslog-2022-01-01.log"
        assert day_file_name(DAY * 31) == "syslog-2022-02-01.log"

    def test_roundtrip(self, tmp_path):
        records = [
            LogRecord(time=100.0, host="gpua001", message="kernel: one"),
            LogRecord(time=DAY + 5.0, host="gpua002", message="kernel: two"),
            LogRecord(time=DAY + 10.0, host="gpua001", message="kernel: three"),
        ]
        paths = write_day_partitioned(tmp_path, records)
        assert len(paths) == 2
        parsed = list(iter_parsed_lines(tmp_path))
        assert [(p.time, p.host, p.message) for p in parsed] == [
            (100.0, "gpua001", "kernel: one"),
            (DAY + 5.0, "gpua002", "kernel: two"),
            (DAY + 10.0, "gpua001", "kernel: three"),
        ]

    def test_writer_sorts_unordered_input(self, tmp_path):
        records = [
            LogRecord(time=DAY + 1.0, host="a", message="m: late"),
            LogRecord(time=1.0, host="a", message="m: early"),
        ]
        write_day_partitioned(tmp_path, records)
        parsed = list(iter_parsed_lines(tmp_path))
        assert parsed[0].message == "m: early"

    def test_list_day_files_ordered(self, tmp_path):
        records = [
            LogRecord(time=i * DAY + 1.0, host="a", message="m: x") for i in range(5)
        ]
        write_day_partitioned(tmp_path, records)
        files = list_day_files(tmp_path)
        assert len(files) == 5
        assert files == sorted(files)

    def test_parse_line_malformed(self):
        with pytest.raises(LogFormatError):
            parse_line("garbage")
        with pytest.raises(LogFormatError):
            parse_line("not-a-time gpua001 kernel: hi")

    def test_parse_line_roundtrip(self):
        record = LogRecord(time=12.25, host="gpua001", message="kernel: NVRM: ok")
        parsed = parse_line(record.render())
        assert parsed.time == pytest.approx(12.25)
        assert parsed.host == "gpua001"
        assert parsed.message == "kernel: NVRM: ok"


class TestNoise:
    def test_noise_volume_and_content(self):
        window = StudyWindow.scaled(pre_days=5, op_days=25)
        config = NoiseConfig(
            benign_rate_per_node_hour=0.5, excluded_xid_rate_per_hour=2.0
        )
        records = generate_noise(
            config,
            node_names=["gpua001", "cn001"],
            gpu_node_names=["gpua001"],
            window=window,
            rng=np.random.default_rng(0),
        )
        hours = window.end / HOUR
        benign_expected = 0.5 * 2 * hours
        excluded_expected = 2.0 * hours
        assert len(records) == pytest.approx(
            benign_expected + excluded_expected, rel=0.1
        )
        excluded = [r for r in records if "Xid" in r.message]
        assert len(excluded) == pytest.approx(excluded_expected, rel=0.15)
        # Excluded-XID lines carry only codes 13/43.
        assert all(("): 13," in r.message) or ("): 43," in r.message) for r in excluded)

    def test_noise_within_window(self):
        window = StudyWindow.scaled(pre_days=2, op_days=2)
        records = generate_noise(
            NoiseConfig(),
            node_names=["gpua001"],
            gpu_node_names=["gpua001"],
            window=window,
            rng=np.random.default_rng(1),
        )
        assert all(0 <= r.time < window.end for r in records)

    def test_no_gpu_nodes_no_xid_noise(self):
        window = StudyWindow.scaled(pre_days=2, op_days=2)
        records = generate_noise(
            NoiseConfig(excluded_xid_rate_per_hour=50.0),
            node_names=["cn001"],
            gpu_node_names=[],
            window=window,
            rng=np.random.default_rng(2),
        )
        assert not any("Xid" in r.message for r in records)
