"""Unit tests for the sacct-style accounting database."""

import pytest

from repro.core.exceptions import LogFormatError
from repro.core.xid import EventClass
from repro.slurm.accounting import (
    AccountingWriter,
    load_records,
    read_accounting,
    read_ground_truth,
)
from repro.slurm.types import Allocation, JobRecord, JobState, Partition


def make_record(job_id=1, **overrides) -> JobRecord:
    defaults = dict(
        job_id=job_id,
        name="train_resnet_001",
        user="u0007",
        partition=Partition.GPU_A100_X4,
        submit_time=100.0,
        start_time=160.0,
        end_time=3760.0,
        state=JobState.COMPLETED,
        exit_code=0,
        allocation=Allocation(
            nodes=("gpua001", "gpua002"),
            gpus={"gpua001": (0, 1), "gpua002": (2,)},
        ),
        gpu_count=3,
        is_ml_truth=True,
        killed_by=None,
    )
    defaults.update(overrides)
    return JobRecord(**defaults)


class TestRoundtrip:
    def test_sacct_roundtrip(self, tmp_path):
        path = tmp_path / "sacct.csv"
        original = make_record()
        with AccountingWriter(path) as writer:
            writer.write(original)
        [loaded] = list(read_accounting(path))
        assert loaded.job_id == original.job_id
        assert loaded.name == original.name
        assert loaded.partition is original.partition
        assert loaded.state is original.state
        assert loaded.exit_code == original.exit_code
        assert loaded.allocation.nodes == original.allocation.nodes
        assert loaded.allocation.gpus == original.allocation.gpus
        assert loaded.gpu_count == 3
        # Timestamps roundtrip at second resolution.
        assert loaded.submit_time == pytest.approx(original.submit_time, abs=1)
        assert loaded.end_time == pytest.approx(original.end_time, abs=1)

    def test_ground_truth_not_in_sacct(self, tmp_path):
        path = tmp_path / "sacct.csv"
        with AccountingWriter(path) as writer:
            writer.write(make_record(killed_by=EventClass.GSP_ERROR))
        [loaded] = list(read_accounting(path))
        assert loaded.killed_by is None  # analysis never sees the cause
        assert loaded.is_ml_truth is False

    def test_truth_sidecar_roundtrip(self, tmp_path):
        sacct = tmp_path / "sacct.csv"
        truth_path = tmp_path / "truth.csv"
        with AccountingWriter(sacct, truth_path) as writer:
            writer.write(make_record(job_id=1, killed_by=EventClass.GSP_ERROR))
            writer.write(make_record(job_id=2, is_ml_truth=False))
        truth = read_ground_truth(truth_path)
        assert truth[1] == (EventClass.GSP_ERROR, True)
        assert truth[2] == (None, False)

    def test_multiple_records_order_preserved(self, tmp_path):
        path = tmp_path / "sacct.csv"
        with AccountingWriter(path) as writer:
            for i in range(5):
                writer.write(make_record(job_id=i + 1))
            assert writer.count == 5
        loaded = load_records(path)
        assert [r.job_id for r in loaded] == [1, 2, 3, 4, 5]

    def test_cpu_job_roundtrip(self, tmp_path):
        path = tmp_path / "sacct.csv"
        record = make_record(
            partition=Partition.CPU,
            allocation=Allocation(nodes=("cn001",)),
            gpu_count=0,
        )
        with AccountingWriter(path) as writer:
            writer.write(record)
        [loaded] = load_records(path)
        assert loaded.gpu_count == 0
        assert loaded.allocation.gpus == {}


class TestMalformedInput:
    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("not|a|real|header\n")
        with pytest.raises(LogFormatError, match="header"):
            list(read_accounting(path))

    def test_short_row_rejected(self, tmp_path):
        path = tmp_path / "sacct.csv"
        with AccountingWriter(path) as writer:
            writer.write(make_record())
        with open(path, "a") as handle:
            handle.write("1|too|short\n")
        with pytest.raises(LogFormatError, match="malformed row"):
            list(read_accounting(path))

    def test_bad_gres_rejected(self, tmp_path):
        path = tmp_path / "sacct.csv"
        with AccountingWriter(path) as writer:
            writer.write(make_record())
        text = path.read_text().replace("gpua001:0,1;gpua002:2", "???")
        path.write_text(text)
        with pytest.raises(LogFormatError, match="GresIdx"):
            list(read_accounting(path))


class TestDerivedProperties:
    def test_elapsed_and_gpu_hours(self):
        record = make_record()  # 3600 s on 3 GPUs
        assert record.elapsed == pytest.approx(3600.0)
        assert record.elapsed_minutes == pytest.approx(60.0)
        assert record.gpu_hours == pytest.approx(3.0)

    def test_job_state_success(self):
        assert JobState.COMPLETED.is_success
        assert not JobState.FAILED.is_success
        assert not JobState.NODE_FAIL.is_success

    def test_allocation_helpers(self):
        allocation = Allocation(
            nodes=("gpua001",), gpus={"gpua001": (1, 3)}
        )
        assert allocation.gpu_count == 2
        assert allocation.uses_gpu("gpua001", 3)
        assert not allocation.uses_gpu("gpua001", 0)
        assert allocation.gpus_on("gpua999") == ()


class TestRequestValidation:
    def test_zero_duration_rejected(self):
        from repro.slurm.types import JobRequest

        with pytest.raises(ValueError, match="duration"):
            JobRequest(
                job_id=1,
                name="x",
                user="u",
                partition=Partition.CPU,
                submit_time=0.0,
                gpu_count=0,
                duration=0.0,
            )

    def test_gpu_partition_needs_gpus(self):
        from repro.slurm.types import JobRequest

        with pytest.raises(ValueError, match="0 GPUs"):
            JobRequest(
                job_id=1,
                name="x",
                user="u",
                partition=Partition.GPU_A100_X4,
                submit_time=0.0,
                gpu_count=0,
                duration=10.0,
            )
