"""Tests for the study runner (repro.study.runner) and artifacts."""

import pytest

from repro import DeltaStudy, StudyConfig
from repro.core.periods import PeriodName
from repro.study.artifacts import StudyArtifacts


class TestMemoryOnlyRun:
    @pytest.fixture(scope="class")
    def run(self):
        config = StudyConfig.small(seed=19, job_scale=0.02)
        return DeltaStudy(config).run(None), config

    def test_no_disk_artifacts(self, run):
        artifacts, _ = run
        assert artifacts.output_dir is None
        assert artifacts.syslog_dir is None
        assert artifacts.sacct_path is None

    def test_ground_truth_present(self, run):
        artifacts, _ = run
        assert artifacts.logical_events
        assert artifacts.job_records
        assert artifacts.raw_log_lines > len(artifacts.logical_events)

    def test_utilization_sampled_in_both_periods(self, run):
        artifacts, config = run
        times = [t for t, _ in artifacts.utilization_samples]
        boundary = config.window.operational.start
        assert any(t < boundary for t in times)
        assert any(t >= boundary for t in times)
        expected = config.window.total_days * 24 / config.utilization_sample_interval_hours
        assert len(times) == pytest.approx(expected, rel=0.05)

    def test_mean_utilization_nonzero_in_op(self, run):
        artifacts, _ = run
        op = artifacts.mean_utilization(PeriodName.OPERATIONAL)
        pre = artifacts.mean_utilization(PeriodName.PRE_OPERATIONAL)
        assert op > 0
        assert op > pre  # pre-op load factor is 10%

    def test_summary_mentions_key_counts(self, run):
        artifacts, _ = run
        text = artifacts.summary()
        assert "logical errors" in text
        assert "jobs finished" in text
        assert "nodes: 8" in text

    def test_logical_counts_partition_all_events(self, run):
        artifacts, _ = run
        counts = artifacts.logical_counts()
        total = sum(
            n for period in counts.values() for n in period.values()
        )
        assert total == len(artifacts.logical_events)


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        config = StudyConfig.small(seed=23, job_scale=0.005, op_days=20)
        a = DeltaStudy(config).run(None)
        b = DeltaStudy(config).run(None)
        assert len(a.logical_events) == len(b.logical_events)
        assert len(a.job_records) == len(b.job_records)
        assert [e.time for e in a.logical_events[:100]] == [
            e.time for e in b.logical_events[:100]
        ]
        assert [r.end_time for r in a.job_records[:50]] == [
            r.end_time for r in b.job_records[:50]
        ]

    def test_different_seeds_differ(self):
        a = DeltaStudy(StudyConfig.small(seed=1, job_scale=0.005, op_days=20)).run(None)
        b = DeltaStudy(StudyConfig.small(seed=2, job_scale=0.005, op_days=20)).run(None)
        assert [e.time for e in a.logical_events[:50]] != [
            e.time for e in b.logical_events[:50]
        ]


class TestJobFeeder:
    def test_all_submitted_jobs_accounted_or_running_at_horizon(self):
        config = StudyConfig.small(seed=29, job_scale=0.02, op_days=30)
        artifacts = DeltaStudy(config).run(None)
        # Finished jobs ended within the window.
        for record in artifacts.job_records:
            assert record.end_time <= config.window.end + 1e-6
            assert record.start_time >= 0

    def test_job_ids_unique(self):
        config = StudyConfig.small(seed=29, job_scale=0.02, op_days=30)
        artifacts = DeltaStudy(config).run(None)
        ids = [r.job_id for r in artifacts.job_records]
        assert len(ids) == len(set(ids))
