"""Unit tests for spatial error characterization (repro.analysis.spatial)."""

import pytest

from repro.analysis.spatial import (
    gini_coefficient,
    node_error_counts,
    repeat_offenders,
    spatial_stats,
)
from repro.core.periods import PeriodName, StudyWindow
from repro.core.records import ExtractedError
from repro.core.timebase import DAY
from repro.core.xid import EventClass


def error(time=0.0, node="gpua001", gpu=0, event=EventClass.MMU_ERROR):
    return ExtractedError(
        time=time, node=node, gpu_index=gpu, event_class=event, xid=31
    )


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_approaches_one(self):
        value = gini_coefficient([0] * 99 + [1000])
        assert value > 0.95

    def test_empty_is_none(self):
        assert gini_coefficient([]) is None
        assert gini_coefficient([0, 0]) is None

    def test_two_point_example(self):
        # counts (1, 3): Gini = 0.25 by direct computation.
        assert gini_coefficient([1, 3]) == pytest.approx(0.25)


class TestSpatialStats:
    def test_counts_and_shares(self):
        errors = (
            [error(gpu=0)] * 6 + [error(gpu=1)] * 3 + [error(node="gpua002")] * 1
        )
        stats = spatial_stats(errors)
        assert stats.total_errors == 10
        assert stats.units_with_errors == 3
        assert stats.top_offenders[0].count == 6
        assert stats.top1_share == pytest.approx(0.6)
        assert stats.top5_share == pytest.approx(1.0)

    def test_empty_population(self):
        stats = spatial_stats([])
        assert stats.total_errors == 0
        assert stats.gini is None
        assert stats.top_offenders == ()

    def test_class_filter(self):
        errors = [error(), error(event=EventClass.GSP_ERROR)]
        stats = spatial_stats(errors, event_class=EventClass.GSP_ERROR)
        assert stats.total_errors == 1

    def test_period_filter(self):
        window = StudyWindow.scaled(pre_days=10, op_days=10)
        errors = [error(time=DAY), error(time=15 * DAY)]
        stats = spatial_stats(
            errors, window=window, period=PeriodName.OPERATIONAL
        )
        assert stats.total_errors == 1

    def test_top_k_limits_output(self):
        errors = [error(gpu=i % 4, node=f"gpua{i:03d}") for i in range(20)]
        stats = spatial_stats(errors, top_k=3)
        assert len(stats.top_offenders) == 3
        assert stats.units_with_errors == 20


class TestHelpers:
    def test_node_error_counts_descending(self):
        errors = [error(node="gpua002")] * 3 + [error(node="gpua001")]
        counts = node_error_counts(errors)
        assert counts[0] == ("gpua002", 3)
        assert counts[1] == ("gpua001", 1)

    def test_repeat_offenders_threshold(self):
        errors = [error(gpu=0)] * 5 + [error(gpu=1)] * 2
        offenders = repeat_offenders(errors, min_count=3)
        assert len(offenders) == 1
        assert offenders[0].count == 5

    def test_repeat_offenders_finds_episode_gpu(self, small_run):
        artifacts, result = small_run
        offenders = repeat_offenders(
            result.errors,
            min_count=1000,
            event_class=EventClass.UNCONTAINED_MEMORY_ERROR,
        )
        assert len(offenders) == 1
        assert offenders[0].share > 0.9
