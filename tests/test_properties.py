"""Cross-cutting property-based tests (hypothesis).

Invariants that must hold for *any* input, not just the calibrated
scenarios: scheduler resource safety, engine ordering, accounting
roundtrips, coalescing conservation under composition.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import Cluster
from repro.core.timebase import HOUR
from repro.core.xid import EventClass
from repro.sim.engine import Engine
from repro.slurm.accounting import AccountingWriter, load_records
from repro.slurm.scheduler import Scheduler
from repro.slurm.types import Allocation, JobRecord, JobRequest, JobState, Partition


@st.composite
def job_streams(draw):
    """Random GPU job streams: (submit offset, gpus, duration, fail)."""
    n = draw(st.integers(min_value=1, max_value=40))
    jobs = []
    t = 0.0
    for i in range(n):
        t += draw(st.floats(min_value=0.0, max_value=2 * HOUR))
        gpus = draw(st.integers(min_value=1, max_value=8))
        duration = draw(st.floats(min_value=60.0, max_value=20 * HOUR))
        fail = draw(st.booleans())
        jobs.append((t, gpus, duration, fail))
    return jobs


class TestSchedulerInvariants:
    @given(job_streams())
    @settings(max_examples=40, deadline=None)
    def test_no_double_allocation_and_all_jobs_finish(self, stream):
        engine = Engine(horizon=10_000 * HOUR)
        cluster = Cluster.small(four_way=3, eight_way=1, cpu=0)
        scheduler = Scheduler(engine, cluster)

        violations = []

        def check_busy_consistency():
            # Every busy GPU belongs to exactly one running job.
            claimed = {}
            for node in cluster.gpu_nodes():
                for job_id in scheduler.jobs_on_node(node.name):
                    pass
            for node in cluster.gpu_nodes():
                for gpu in node.gpus:
                    holders = scheduler.jobs_using_gpu(node.name, gpu.index)
                    if gpu.busy and len(holders) != 1:
                        violations.append((node.name, gpu.index, holders))
                    if not gpu.busy and holders:
                        violations.append((node.name, gpu.index, holders))

        for i, (submit, gpus, duration, fail) in enumerate(stream):
            request = JobRequest(
                job_id=i + 1,
                name=f"j{i}",
                user="u",
                partition=Partition.GPU_A100_X4,
                submit_time=submit,
                gpu_count=gpus,
                duration=duration,
                intrinsic_failure=fail,
            )
            engine.schedule(submit, lambda r=request: scheduler.submit(r))
        engine.schedule(5_000 * HOUR, check_busy_consistency)
        engine.run()

        assert not violations
        # Everything eventually completes (capacity 20 GPUs >= max job).
        assert len(scheduler.records) == len(stream)
        assert scheduler.running_count == 0
        assert scheduler.queued_count == 0
        assert not any(g.busy for g in cluster.gpus())

    @given(job_streams())
    @settings(max_examples=25, deadline=None)
    def test_job_timing_invariants(self, stream):
        engine = Engine(horizon=10_000 * HOUR)
        cluster = Cluster.small(four_way=3, eight_way=1, cpu=0)
        scheduler = Scheduler(engine, cluster)
        for i, (submit, gpus, duration, fail) in enumerate(stream):
            request = JobRequest(
                job_id=i + 1,
                name=f"j{i}",
                user="u",
                partition=Partition.GPU_A100_X4,
                submit_time=submit,
                gpu_count=gpus,
                duration=duration,
                intrinsic_failure=fail,
            )
            engine.schedule(submit, lambda r=request: scheduler.submit(r))
        engine.run()
        for record in scheduler.records:
            assert record.start_time >= record.submit_time
            assert record.end_time == pytest.approx(
                record.start_time
                + next(
                    d for (s, g, d, f) in [stream[record.job_id - 1]]
                )
            )
            assert record.allocation.gpu_count == record.gpu_count


class TestEngineProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=999.0),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_execution_order_is_sorted(self, times):
        engine = Engine(horizon=1000.0)
        executed = []
        for t in times:
            engine.schedule(t, lambda t=t: executed.append(t))
        engine.run()
        assert executed == sorted(times)
        assert len(executed) == len(times)


class TestAccountingProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=10_000),
                st.sampled_from(list(JobState)),
                st.integers(min_value=0, max_value=8),
                st.floats(min_value=60.0, max_value=100_000.0),
            ),
            min_size=1,
            max_size=25,
            unique_by=lambda t: t[0],
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_preserves_fields(self, tmp_path_factory, rows):
        tmp = tmp_path_factory.mktemp("acct")
        path = tmp / "sacct.csv"
        records = []
        for job_id, state, gpus, duration in rows:
            allocation = (
                Allocation(
                    nodes=("gpua001",),
                    gpus={"gpua001": tuple(range(max(gpus, 1)))} if gpus else {},
                )
                if gpus
                else Allocation(nodes=("cn001",))
            )
            records.append(
                JobRecord(
                    job_id=job_id,
                    name=f"j{job_id}",
                    user="u",
                    partition=Partition.GPU_A100_X4 if gpus else Partition.CPU,
                    submit_time=1000.0,
                    start_time=2000.0,
                    end_time=2000.0 + duration,
                    state=state,
                    exit_code=0 if state is JobState.COMPLETED else 1,
                    allocation=allocation,
                    gpu_count=gpus,
                )
            )
        with AccountingWriter(path) as writer:
            for record in records:
                writer.write(record)
        loaded = load_records(path)
        assert len(loaded) == len(records)
        for original, roundtripped in zip(records, loaded):
            assert roundtripped.job_id == original.job_id
            assert roundtripped.state is original.state
            assert roundtripped.gpu_count == original.gpu_count
            assert roundtripped.allocation.gpus == original.allocation.gpus
            assert roundtripped.end_time == pytest.approx(
                original.end_time, abs=1.0
            )
