"""Tests for the fleet-scale campaign subsystem (repro.fleetscale).

Covers the DESIGN §17 invariants: fleet geometry agrees with the DES
Cluster byte-for-byte, thinned sampling is deterministic per seed and
statistically faithful to the calibrated targets, the slice batcher
keeps the heap bounded by the node count, and per-architecture
attribution never leaks across architectures (campaign accumulators
and Stage-II splits alike).
"""

import json

import numpy as np
import pytest

from repro import DeltaStudy, StudyConfig
from repro.calibration.delta import delta_fault_suite
from repro.cli import main
from repro.cluster.inventory import Inventory
from repro.cluster.topology import (
    DELTA_A100_GPUS,
    Cluster,
    ClusterShape,
)
from repro.core.arch import Architecture
from repro.core.exceptions import ConfigurationError
from repro.core.periods import PeriodName, StudyWindow
from repro.core.xid import EventClass, table1_order
from repro.faults.config import scale_counts
from repro.fleetscale import (
    FleetCampaign,
    FleetCampaignConfig,
    FleetSpec,
    ThinnedFleetSampler,
    run_campaign,
    shape_for_scale,
)
from repro.fleetscale.sampling import CLASS_LIST, kill_probabilities
from repro.reporting.fleet import (
    UNKNOWN_ARCH,
    arch_split,
    per_arch_mtbe,
    render_fleet_table1,
    render_fleet_table2,
)
from repro.sim.rng import RngRegistry

MIXED_SHAPE = ClusterShape(4, 1, 2, gh200_nodes=3)


class TestShapeForScale:
    def test_a100_keeps_delta_ratio(self):
        shape = shape_for_scale("a100", 10_000)
        assert shape.gh200_nodes == 0
        assert shape.gpu_count == 10_000
        # 4-way : 8-way GPU split stays near Delta's 400:48.
        four_gpus = shape.four_way_nodes * 4
        assert four_gpus / shape.gpu_count == pytest.approx(
            400 / 448, abs=0.01
        )

    def test_delta_scale_is_exact(self):
        shape = shape_for_scale("a100", DELTA_A100_GPUS)
        assert (shape.four_way_nodes, shape.eight_way_nodes) == (100, 6)

    def test_hopper_is_all_gh200(self):
        shape = shape_for_scale("hopper", 10_000)
        assert shape.four_way_nodes == 0
        assert shape.eight_way_nodes == 0
        assert shape.gh200_nodes == 2_500

    def test_mixed_splits_half_and_half(self):
        shape = shape_for_scale("mixed", 10_000)
        a100 = shape.four_way_nodes * 4 + shape.eight_way_nodes * 8
        hopper = shape.gh200_nodes * 4
        assert a100 + hopper == shape.gpu_count
        assert abs(a100 - hopper) / shape.gpu_count < 0.05

    def test_tiny_mixed_fleet_stays_heterogeneous(self):
        shape = shape_for_scale("mixed", 8)
        assert shape.gh200_nodes >= 1
        assert shape.four_way_nodes >= 1

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown architecture"):
            shape_for_scale("blackwell", 100)

    def test_nonpositive_scale_rejected(self):
        with pytest.raises(ConfigurationError, match=">= 1"):
            shape_for_scale("a100", 0)


class TestFleetSpecGeometry:
    def test_subfleet_sizes_match_shape(self):
        spec = FleetSpec(MIXED_SHAPE)
        a100 = spec.subfleets[Architecture.A100]
        hopper = spec.subfleets[Architecture.HOPPER]
        assert a100.gpu_count == 4 * 4 + 1 * 8
        assert hopper.gpu_count == 3 * 4
        assert spec.gpu_count == MIXED_SHAPE.gpu_count
        assert spec.node_count == MIXED_SHAPE.gpu_node_count

    def test_node_names_match_cluster(self):
        spec = FleetSpec(MIXED_SHAPE)
        cluster = Cluster(MIXED_SHAPE)
        cluster_names = sorted(n.name for n in cluster.gpu_nodes())
        fleet_names = sorted(
            name
            for sub in spec.subfleets.values()
            for name in sub.node_names()
        )
        assert fleet_names == cluster_names

    def test_locate_roundtrip(self):
        spec = FleetSpec(MIXED_SHAPE)
        a100 = spec.subfleets[Architecture.A100]
        # 4-way group first: ordinal 0..15 on gpua001..gpua004, then
        # the 8-way node gpuc001 holds ordinals 16..23.
        assert a100.node_name(a100.locate(0)[0]) == "gpua001"
        assert a100.locate(15) == (3, 3)
        assert a100.locate(16) == (4, 0)
        assert a100.node_name(4) == "gpuc001"
        node_ord, gpu_idx, node_gpus = a100.locate_many(
            np.arange(a100.gpu_count)
        )
        assert node_gpus[:16].tolist() == [4] * 16
        assert node_gpus[16:].tolist() == [8] * 8
        # Every (node, index) pair is distinct.
        pairs = set(zip(node_ord.tolist(), gpu_idx.tolist()))
        assert len(pairs) == a100.gpu_count

    def test_inventory_matches_cluster_exactly(self, tmp_path):
        spec = FleetSpec(MIXED_SHAPE)
        path = tmp_path / "inventory.json"
        written = spec.write_inventory(path)
        loaded = Inventory.load(path)
        reference = Inventory.from_cluster(Cluster(MIXED_SHAPE))
        assert written == len(reference.entries())
        got = [
            (e.node, e.gpu_index, e.pci_address, e.serial, e.architecture)
            for e in loaded.entries()
        ]
        want = [
            (e.node, e.gpu_index, e.pci_address, e.serial, e.architecture)
            for e in reference.entries()
        ]
        assert got == want

    def test_inventory_resolves_host_pci_to_gpu(self, tmp_path):
        """Syslog-style (host, pci) lookups resolve for every unit."""
        spec = FleetSpec(MIXED_SHAPE)
        path = tmp_path / "inventory.json"
        spec.write_inventory(path)
        inventory = Inventory.load(path)
        for entry in inventory.entries():
            assert (
                inventory.resolve(entry.node, entry.pci_address)
                == entry.gpu_index
            )
            assert inventory.architecture_of(entry.node) == entry.architecture
        counts = inventory.node_counts_by_architecture()
        assert counts == {"a100": 5, "hopper": 3}


class TestThinnedSampling:
    WINDOW = StudyWindow.scaled(20, 60)

    def _sampler(self, seed=3):
        spec = FleetSpec(MIXED_SHAPE)
        sub = spec.subfleets[Architecture.A100]
        suite = scale_counts(
            delta_fault_suite(include_episode=False),
            sub.gpu_count / DELTA_A100_GPUS,
        )
        return ThinnedFleetSampler(
            sub, suite, self.WINDOW, RngRegistry(seed=seed)
        )

    def test_same_seed_is_byte_identical(self):
        a = self._sampler(seed=9).sample_slice(0.0, self.WINDOW.end)
        b = self._sampler(seed=9).sample_slice(0.0, self.WINDOW.end)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.class_idx, b.class_idx)
        assert np.array_equal(a.gpu_ordinal, b.gpu_ordinal)

    def test_different_seeds_differ(self):
        a = self._sampler(seed=9).sample_slice(0.0, self.WINDOW.end)
        b = self._sampler(seed=10).sample_slice(0.0, self.WINDOW.end)
        assert not (
            len(a) == len(b) and np.array_equal(a.times, b.times)
        )

    def test_slicing_is_invariant(self):
        """Onsets drawn per-slice land only inside their slice."""
        sampler = self._sampler(seed=4)
        mid = self.WINDOW.end / 2
        first = sampler.sample_slice(0.0, mid)
        # Onset times (class events share the onset's slice) may spill
        # past the slice end via episode repeats, but never past the
        # window end.
        assert len(first)
        assert first.times.max() < self.WINDOW.end
        assert first.times.min() >= 0.0

    def test_events_sorted_and_in_range(self):
        sampler = self._sampler()
        events = sampler.sample_slice(0.0, self.WINDOW.end)
        assert np.all(np.diff(events.times) >= 0)
        assert events.gpu_ordinal.min() >= 0
        assert events.gpu_ordinal.max() < 24
        assert set(np.unique(events.class_idx)) <= set(
            range(len(CLASS_LIST))
        )

    def test_kill_probabilities_cover_catalog(self):
        probs = kill_probabilities(delta_fault_suite(include_episode=False))
        assert set(probs) == set(CLASS_LIST)
        assert probs[EventClass.CONTAINED_MEMORY_ERROR] == 1.0
        assert probs[EventClass.UNCONTAINED_MEMORY_ERROR] == 1.0
        # Accounting rows carry no kill probability of their own.
        assert probs[EventClass.UNCORRECTABLE_ECC] == 0.0
        assert probs[EventClass.ROW_REMAP_EVENT] == 0.0
        assert 0.0 < probs[EventClass.NVLINK_ERROR] < 1.0


class TestCampaignAccuracy:
    """The Delta-shape A100 campaign reproduces the calibrated targets.

    Episodic classes are compound-Poisson, so per-seed counts swing by
    several sigma; the gate averages seeds and bounds the deviation by
    a CLT estimate of the mean's sigma (clustering weight = expected
    errors per onset) plus the repo's R1-style 5% floor.
    """

    SEEDS = (101, 102, 103)

    def _cluster_weight(self, suite, event_class):
        simple = {c.event_class: c for c in suite.simple_faults}
        if event_class in simple:
            return simple[event_class].episode.mean_errors + 1.0
        if event_class is EventClass.NVLINK_ERROR:
            return 4.0  # manifestation + episode clustering
        return 2.0  # memory-chain rows: at most one per onset

    def test_mean_counts_match_expectations(self):
        sums = {}
        expected = None
        suite = None
        for seed in self.SEEDS:
            campaign = FleetCampaign(
                FleetCampaignConfig(arch="a100", scale=448, seed=seed)
            )
            campaign.run()
            stats = campaign.accumulator.stats()[Architecture.A100]
            if expected is None:
                sampler = campaign._samplers[Architecture.A100]
                expected = sampler.expected_counts()
                suite = campaign.suites[Architecture.A100]
            for period in PeriodName:
                counts = stats.class_counts(period)
                for event_class in table1_order():
                    key = (period, event_class)
                    sums[key] = sums.get(key, 0) + counts[event_class]
        n = len(self.SEEDS)
        for period in PeriodName:
            got_total = 0.0
            want_total = 0.0
            for event_class in table1_order():
                mean = sums[(period, event_class)] / n
                want = expected[period][event_class]
                got_total += mean
                want_total += want
                if want < 5:
                    continue
                weight = self._cluster_weight(suite, event_class)
                sigma = (want * weight / n) ** 0.5
                tolerance = max(3.0, 0.05 * want + 4.0 * sigma)
                assert abs(mean - want) <= tolerance, (
                    f"{period.value}/{event_class.value}: "
                    f"mean {mean:.1f} vs target {want:.1f} "
                    f"(tolerance {tolerance:.1f})"
                )
            # Aggregate volume is tight: clustering averages out.
            assert got_total == pytest.approx(want_total, rel=0.05)


class TestCampaign:
    WINDOW = StudyWindow.scaled(30, 90)

    def _config(self, seed=11, **kwargs):
        kwargs.setdefault("arch", "mixed")
        kwargs.setdefault("scale", 64)
        kwargs.setdefault("slice_days", 7.0)
        return FleetCampaignConfig(window=self.WINDOW, seed=seed, **kwargs)

    def test_same_seed_runs_are_byte_identical(self):
        payloads = []
        for _ in range(2):
            result = FleetCampaign(self._config(seed=5)).run()
            payload = result.to_payload()
            payload["host"] = None  # wall-clock varies; results must not
            payloads.append(json.dumps(payload, sort_keys=True))
        assert payloads[0] == payloads[1]

    def test_different_seeds_differ(self):
        results = [
            FleetCampaign(self._config(seed=seed)).run().total_events
            for seed in (5, 6)
        ]
        assert results[0] != results[1]

    def test_heap_bounded_by_node_count(self):
        campaign = FleetCampaign(self._config(seed=7))
        result = campaign.run()
        # One driver entry + at most one batch entry per node.
        assert result.host["heap_high_water"] <= campaign.spec.node_count + 2
        assert result.host["slices_run"] == 18  # ceil(120 / 7)

    def test_per_arch_attribution_is_exclusive(self):
        campaign = FleetCampaign(self._config(seed=13))
        campaign.run()
        stats = campaign.accumulator.stats()
        a100 = stats[Architecture.A100]
        hopper = stats[Architecture.HOPPER]
        assert a100.node_count == 7 and hopper.node_count == 9
        # Node tallies are sized per sub-fleet: no shared indices.
        assert len(a100.node_events) == 7
        assert len(hopper.node_events) == 9
        assert a100.total_events > 0 and hopper.total_events > 0
        # Hopper's GSP projection (0.18x) shows up in its own table
        # only: per-GPU GSP rate must be well below the A100 one.
        period = PeriodName.OPERATIONAL
        a100_gsp = a100.class_counts(period)[EventClass.GSP_ERROR]
        hopper_gsp = hopper.class_counts(period)[EventClass.GSP_ERROR]
        assert (
            hopper_gsp / hopper.gpu_count < a100_gsp / a100.gpu_count
        )

    def test_artifacts_written(self, tmp_path):
        result = run_campaign(
            self._config(seed=11), out_dir=tmp_path, write_inventory=True
        )
        names = {p.name for p in tmp_path.iterdir()}
        assert {
            "fleet_result.json",
            "inventory.json",
            "table1_a100.txt",
            "table1_hopper.txt",
            "table2_a100.txt",
            "table2_hopper.txt",
        } <= names
        payload = json.loads((tmp_path / "fleet_result.json").read_text())
        assert payload["total_events"] == result.total_events
        assert [a["architecture"] for a in payload["architectures"]] == [
            "a100",
            "hopper",
        ]
        table1 = (tmp_path / "table1_hopper.txt").read_text()
        assert "hopper" in table1 and "GSP Error" in table1
        inventory = Inventory.load(tmp_path / "inventory.json")
        assert inventory.node_counts_by_architecture() == {
            "a100": 7,
            "hopper": 9,
        }

    def test_renderers_cover_catalog(self):
        campaign = FleetCampaign(self._config(seed=11))
        campaign.run()
        stats = campaign.accumulator.stats()[Architecture.A100]
        table1 = render_fleet_table1(stats, self.WINDOW)
        table2 = render_fleet_table2(stats)
        for event_class in table1_order():
            from repro.core.xid import spec_for

            assert spec_for(event_class).abbreviation in table1
            assert spec_for(event_class).abbreviation in table2

    def test_invalid_slice_rejected(self):
        with pytest.raises(ConfigurationError, match="slice_days"):
            FleetCampaignConfig(slice_days=0.0)


class TestStageTwoArchSplit:
    """Mixed-architecture DES runs attribute errors per architecture
    through syslog emission, (host, pci) resolution, and Stage-II."""

    @pytest.fixture(scope="class")
    def mixed_run(self, tmp_path_factory):
        from repro.pipeline import run_pipeline

        out = tmp_path_factory.mktemp("mixed_run")
        config = StudyConfig.small(seed=33, include_episode=False)
        import dataclasses

        config = dataclasses.replace(config, cluster_shape=MIXED_SHAPE)
        artifacts = DeltaStudy(config).run(out)
        result = run_pipeline(out)
        return out, artifacts, result

    def test_no_cross_architecture_leakage(self, mixed_run):
        out, artifacts, result = mixed_run
        inventory = Inventory.load(out / "inventory.json")
        split = arch_split(result.errors, inventory)
        assert UNKNOWN_ARCH not in split
        assert sum(len(v) for v in split.values()) == len(result.errors)
        # Ground truth: gh-prefixed hosts are Hopper, the rest A100.
        for error in split.get("hopper", []):
            assert error.node.startswith("gh")
        for error in split.get("a100", []):
            assert not error.node.startswith("gh")
        assert split["hopper"] and split["a100"]

    def test_per_arch_mtbe_uses_arch_node_counts(self, mixed_run):
        out, artifacts, result = mixed_run
        inventory = Inventory.load(out / "inventory.json")
        analyses = per_arch_mtbe(result.errors, inventory, artifacts.window)
        assert set(analyses) == {"a100", "hopper"}
        # Spot-check the per-node multiplier: 5 A100 vs 3 GH200 nodes.
        a100 = analyses["a100"].overall(PeriodName.OPERATIONAL)
        hopper = analyses["hopper"].overall(PeriodName.OPERATIONAL)
        assert a100.count > 0 and hopper.count > 0
        assert a100.per_node_mtbe_hours == pytest.approx(
            a100.system_mtbe_hours * 5
        )
        assert hopper.per_node_mtbe_hours == pytest.approx(
            hopper.system_mtbe_hours * 3
        )


class TestCli:
    def test_arch_sweep_requires_hopper_or_mixed(self, tmp_path):
        code = main(
            [
                "fleetscale",
                str(tmp_path / "out"),
                "--arch",
                "a100",
                "--arch-sweep",
                "gsp=0.5",
            ]
        )
        assert code == 2

    def test_unknown_sweep_key_is_config_error(self, tmp_path):
        code = main(
            [
                "fleetscale",
                str(tmp_path / "out"),
                "--arch",
                "mixed",
                "--arch-sweep",
                "bogus=1.0",
            ]
        )
        assert code == 2

    def test_simulate_rejects_sweep_without_hopper(self, tmp_path):
        code = main(
            [
                "simulate",
                str(tmp_path / "out"),
                "--preset",
                "small",
                "--arch-sweep",
                "gsp=0.5",
            ]
        )
        assert code == 2

    def test_fleetscale_happy_path(self, tmp_path, capsys):
        out = tmp_path / "campaign"
        code = main(
            [
                "fleetscale",
                str(out),
                "--arch",
                "mixed",
                "--scale",
                "64",
                "--days",
                "120",
                "--slice-days",
                "10",
                "--seed",
                "3",
                "--arch-sweep",
                "gsp=0.5,memory=2.0",
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "GPUs" in captured and "peak RSS" in captured
        assert (out / "fleet_result.json").is_file()
        assert (out / "table2_hopper.txt").is_file()
