"""Service-chaos harness tests: every fault class injected and healed.

These are the end-to-end companions to ``tests/test_stream_guard.py``:
a real two-tenant service over a tiny corpus, real worker threads, and
the :class:`~repro.stream.chaos.ChaosController` driving faults through
the genuine failure paths — then assertions that the supervisor
detected, counted, and healed each one, and that the healthy co-tenant
never noticed.
"""

import threading
import time

import pytest

from repro.core.exceptions import ConfigurationError
from repro.stream import (
    CHAOS_KINDS,
    ChaosController,
    ChaosEvent,
    GuardConfig,
    MultiTenantService,
    StreamIngest,
    TenantSpec,
    build_chaos_plan,
)
from repro.stream.chaos import CORRUPT_CHECKPOINT, IO_ERROR, KILL_INGEST
from repro.stream.ingest import CHECKPOINT_FILE

LINE = "2022-01-{day:02d}T00:00:{sec:02d}.000000 gpua001 kernel: ok\n"


def make_corpus(root, days=1, lines_per_day=3):
    """A minimal artifact dir: a few parseable syslog lines, no errors."""
    syslog = root / "syslog"
    syslog.mkdir(parents=True)
    for day in range(1, days + 1):
        path = syslog / f"syslog-2022-01-{day:02d}.log"
        path.write_text(
            "".join(
                LINE.format(day=day, sec=sec) for sec in range(lines_per_day)
            )
        )
    return root


def wait_until(predicate, timeout=20.0, interval=0.02):
    """Poll ``predicate`` until true or ``timeout`` elapses."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


FAST_GUARD = GuardConfig(
    stall_timeout=30.0,
    watchdog_interval=0.02,
    backoff_base=0.02,
    backoff_max=0.1,
    backoff_jitter=0.0,
    breaker_threshold=5,
    breaker_cooldown=1.0,
    seed=1,
)


class TestChaosPlan:
    def test_deterministic_in_seed(self):
        a = build_chaos_plan(["x", "y"], seed=9, horizon_seconds=5.0)
        b = build_chaos_plan(["x", "y"], seed=9, horizon_seconds=5.0)
        assert a == b
        c = build_chaos_plan(["x", "y"], seed=10, horizon_seconds=5.0)
        assert a != c

    def test_round_robin_victims_and_sorted(self):
        plan = build_chaos_plan(
            ["x", "y"], seed=0, kills=2, corruptions=2, io_errors=2
        )
        assert len(plan) == 6
        # Victims alternate in kind order, so both tenants get faults.
        assert {event.tenant for event in plan} == {"x", "y"}
        times = [event.at_seconds for event in plan]
        assert times == sorted(times)
        assert all(event.kind in CHAOS_KINDS for event in plan)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            build_chaos_plan([], seed=0)
        with pytest.raises(ConfigurationError):
            build_chaos_plan(["x"], seed=0, horizon_seconds=0.0)
        with pytest.raises(ConfigurationError):
            ChaosEvent(at_seconds=1.0, kind="meteor", tenant="x")
        with pytest.raises(ConfigurationError):
            ChaosEvent(at_seconds=-1.0, kind=KILL_INGEST, tenant="x")


class TestControllerWiring:
    def test_start_before_attach_raises(self):
        controller = ChaosController([])
        with pytest.raises(ConfigurationError):
            controller.start()

    def test_attach_rejects_unknown_tenant(self, tmp_path):
        corpus = make_corpus(tmp_path / "corpus")
        plan = [ChaosEvent(0.0, KILL_INGEST, "nobody")]
        with pytest.raises(ConfigurationError):
            MultiTenantService(
                [TenantSpec(name="alpha", follow_dir=corpus)],
                port=None,
                chaos=ChaosController(plan),
            )

    def test_snapshot_shape(self):
        controller = ChaosController(
            [ChaosEvent(1.0, KILL_INGEST, "alpha")]
        )
        snap = controller.snapshot()
        assert snap["planned"][0]["kind"] == KILL_INGEST
        assert snap["applied"] == []
        assert snap["exhausted"] is False
        assert controller.exhausted is False


class ServiceUnderChaos:
    """A live two-tenant service with a chaos plan, on a thread."""

    def __init__(self, tmp_path, plan):
        corpus = make_corpus(tmp_path / "corpus", days=2)
        self.service = MultiTenantService(
            [
                TenantSpec(name="alpha", follow_dir=corpus),
                TenantSpec(name="beta", follow_dir=corpus),
            ],
            port=None,
            checkpoint_root=tmp_path / "ckpt",
            poll_interval=0.05,
            checkpoint_interval=0.15,
            guard=FAST_GUARD,
            chaos=ChaosController(plan),
        )
        self.corpus = corpus
        self.thread = threading.Thread(
            target=self.service.run, kwargs={"install_signals": False}
        )

    def __enter__(self):
        self.thread.start()
        return self.service

    def __exit__(self, *exc):
        self.service.stop()
        self.thread.join(timeout=10.0)
        return False

    def runtime(self, name):
        for rt in self.service.runtimes:
            if rt.name == name:
                return rt
        raise KeyError(name)


@pytest.mark.parametrize("kind", [KILL_INGEST, IO_ERROR])
def test_fault_detected_and_healed(tmp_path, kind):
    plan = [ChaosEvent(0.3, kind, "alpha")]
    harness = ServiceUnderChaos(tmp_path, plan)
    with harness as service:
        assert wait_until(lambda: service.chaos.exhausted)
        assert wait_until(
            lambda: service.supervisor.recoveries["alpha"]
        ), service.supervisor.snapshot()
        recovery = service.supervisor.recoveries["alpha"][0]
        assert recovery["reason"] == "crash"
        assert recovery["seconds"] < 15.0
        assert service.supervisor.restart_counts["alpha"]["crash"] >= 1
        # The co-tenant never flinched.
        assert service.supervisor.restart_counts["beta"] == {}
        assert harness.runtime("beta").degraded is False
        # The healed tenant is back to serving fresh.
        assert wait_until(
            lambda: not harness.runtime("alpha").degraded
        )
        doc = service.health_snapshot()
        assert doc["chaos"]["exhausted"] is True
        assert doc["chaos"]["applied"][0]["kind"] == kind
        assert doc["tenants"]["alpha"]["last_failure"] is not None


def test_torn_checkpoint_quarantined_and_healed(tmp_path):
    plan = [ChaosEvent(0.5, CORRUPT_CHECKPOINT, "alpha")]
    harness = ServiceUnderChaos(tmp_path, plan)
    with harness as service:
        alpha = harness.runtime("alpha")
        # Let a real checkpoint land first, so the chaos event tears an
        # actual file rather than inventing one.
        assert wait_until(lambda: alpha.checkpoint_path.exists())
        assert wait_until(lambda: service.chaos.exhausted)
        assert wait_until(lambda: service.supervisor.recoveries["alpha"])
        assert wait_until(lambda: alpha.quarantined_checkpoints)
        quarantine_dir = alpha.checkpoint_path.parent
        corrupt = sorted(
            quarantine_dir.glob(f"{CHECKPOINT_FILE}.corrupt-*")
        )
        assert corrupt, list(quarantine_dir.iterdir())
        assert wait_until(lambda: not alpha.degraded)
    # Post-heal identity: the scratch-rebuilt tenant, drained, matches
    # a fresh single pass over the same corpus.
    alpha.poll_once(final=True)
    reference = StreamIngest(harness.corpus / "syslog")
    reference.drain()
    expected = reference.result()
    result = alpha.core.ingest.result()
    assert result.errors == expected.errors
    assert result.health.lines_read == expected.health.lines_read


def test_applied_log_and_downtime_slo_feed(tmp_path):
    """Every applied event is logged; the outage feeds the SLO engine."""
    plan = [ChaosEvent(0.3, KILL_INGEST, "alpha")]
    harness = ServiceUnderChaos(tmp_path, plan)
    with harness as service:
        assert wait_until(lambda: service.supervisor.recoveries["alpha"])
        snap = service.chaos.snapshot()
        assert len(snap["applied"]) == 1
        entry = snap["applied"][0]
        assert entry["tenant"] == "alpha"
        assert entry["kind"] == KILL_INGEST
        assert "detail" in entry
        # The freshness objective for the victim saw samples (either
        # healthy-cadence ones or downtime staleness), proving the
        # outage path is wired into the SLO engine.
        slo = service.slo.snapshot(prefix="alpha:")
        freshness = [
            obj
            for obj in slo["objectives"]
            if obj["name"] == "alpha:ingest-freshness"
        ]
        assert freshness
