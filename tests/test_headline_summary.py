"""Tests for the composite headline computation and the one-page
summary renderer."""

import pytest

from repro.analysis import compute_headline
from repro.reporting.summary import render_summary


class TestComputeHeadline:
    @pytest.fixture(scope="class")
    def headline(self, small_run):
        artifacts, result = small_run
        return compute_headline(
            result.errors,
            result.jobs,
            result.downtime,
            artifacts.window,
            artifacts.node_count,
        )

    def test_mtbe_fields_populated(self, headline):
        assert headline.pre_op_per_node_mtbe_hours is not None
        assert headline.op_per_node_mtbe_hours is not None
        assert headline.op_per_node_mtbe_hours > 0

    def test_degradation_direction(self, headline):
        # Table-I-scale counts over a compressed window still degrade
        # into the operational period.
        assert headline.op_per_node_mtbe_hours < headline.pre_op_per_node_mtbe_hours
        assert headline.mtbe_degradation_fraction is not None
        assert 0.0 < headline.mtbe_degradation_fraction < 1.0

    def test_memory_much_safer_than_hardware(self, headline):
        assert headline.memory_vs_hardware_ratio is not None
        assert headline.memory_vs_hardware_ratio > 20

    def test_gsp_degradation_factor(self, headline):
        assert headline.gsp_degradation_factor is not None
        assert headline.gsp_degradation_factor > 1.5

    def test_nvlink_fractions(self, headline):
        assert headline.nvlink_multi_gpu_fraction == pytest.approx(0.42, abs=0.08)
        if headline.nvlink_job_failure_fraction is not None:
            assert 0.0 <= headline.nvlink_job_failure_fraction <= 1.0

    def test_availability_embedded(self, headline):
        report = headline.availability
        assert report.mttr_hours is not None
        assert report.availability_formula is not None
        assert 0.0 < report.availability_formula < 1.0


class TestRenderSummary:
    @pytest.fixture(scope="class")
    def text(self, small_run):
        artifacts, result = small_run
        return render_summary(
            result.errors,
            result.jobs,
            result.downtime,
            artifacts.window,
            artifacts.node_count,
        )

    def test_sections_present(self, text):
        for section in (
            "GPU RESILIENCE STUDY SUMMARY",
            "-- reliability --",
            "-- weakest components",
            "-- job impact",
            "-- availability --",
            "-- error-process structure --",
        ):
            assert section in text

    def test_outlier_unit_reported(self, text):
        assert "outlier unit" in text
        assert "uncontained_memory_error" in text

    def test_no_jobs_still_renders(self, small_run):
        artifacts, result = small_run
        text = render_summary(
            result.errors, [], result.downtime, artifacts.window,
            artifacts.node_count,
        )
        assert "GPU RESILIENCE STUDY SUMMARY" in text
        assert "-- job impact" not in text

    def test_empty_everything_renders(self, small_run):
        artifacts, _ = small_run
        text = render_summary(
            [], [], [], artifacts.window, artifacts.node_count
        )
        assert "0 coalesced errors" in text
