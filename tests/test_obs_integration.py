"""Integration tests for the telemetry layer: engine tombstone
accounting and auto-compaction, health-report/metrics agreement after a
chaos-corrupted pipeline run, and end-to-end export determinism."""

import json

import pytest

from repro import DeltaStudy, StudyConfig
from repro.obs import Telemetry
from repro.obs.metrics import MetricsRegistry
from repro.pipeline import run_pipeline
from repro.sim.engine import Engine
from repro.syslog.chaos import ChaosConfig, corrupt_artifacts


def _noop() -> None:
    pass


class TestEngineTombstoneAccounting:
    def test_live_vs_tombstone_split(self):
        engine = Engine(horizon=100.0, auto_compact_ratio=0.0)
        handles = [engine.schedule(float(i + 1), _noop) for i in range(10)]
        for h in handles[:4]:
            h.cancel()
        assert engine.pending_events == 10
        assert engine.live_pending_events == 6
        assert engine.tombstone_ratio == pytest.approx(0.4)

    def test_double_cancel_counted_once(self):
        engine = Engine(horizon=100.0, auto_compact_ratio=0.0)
        h = engine.schedule(1.0, _noop)
        h.cancel()
        h.cancel()
        assert engine.live_pending_events == 0
        assert engine.tombstone_ratio == 1.0

    def test_compact_removes_only_tombstones(self):
        engine = Engine(horizon=100.0, auto_compact_ratio=0.0)
        fired = []
        for i in range(8):
            h = engine.schedule(float(i + 1), lambda i=i: fired.append(i))
            if i % 2:
                h.cancel()
        removed = engine.compact()
        assert removed == 4
        assert engine.pending_events == 4
        assert engine.tombstone_ratio == 0.0
        assert engine.compactions == 1
        engine.run()
        assert fired == [0, 2, 4, 6]

    def test_auto_compaction_triggers_at_ratio(self):
        engine = Engine(
            horizon=1e6, auto_compact_ratio=0.5, auto_compact_min=8
        )
        handles = [engine.schedule(float(i + 1), _noop) for i in range(8)]
        for h in handles[:3]:
            h.cancel()
        assert engine.compactions == 0  # 3/8 < 0.5
        handles[3].cancel()  # 4/8 crosses the threshold
        assert engine.compactions == 1
        assert engine.pending_events == 4
        assert engine.live_pending_events == 4

    def test_auto_compaction_respects_min_heap_size(self):
        engine = Engine(
            horizon=1e6, auto_compact_ratio=0.5, auto_compact_min=100
        )
        handles = [engine.schedule(float(i + 1), _noop) for i in range(10)]
        for h in handles:
            h.cancel()
        assert engine.compactions == 0

    def test_bad_ratio_rejected(self):
        from repro.core.exceptions import SimulationError

        with pytest.raises(SimulationError):
            Engine(horizon=10.0, auto_compact_ratio=1.5)


class TestEngineMetrics:
    def test_flush_publishes_tombstone_and_subsystem_series(self):
        reg = MetricsRegistry()
        engine = Engine(horizon=100.0, metrics=reg, auto_compact_ratio=0.0)
        engine.schedule(1.0, _noop, label="submit:j1")
        engine.schedule(2.0, _noop, label="submit:j2")
        engine.schedule(3.0, _noop, label="detect:n1")
        doomed = engine.schedule(50.0, _noop, label="repair:n1")
        doomed.cancel()
        engine.schedule(99.0, _noop, label="repair:n2")
        engine.run(until=10.0)
        engine.flush_metrics()

        assert reg.value("sim_events_executed_total", subsystem="submit") == 2
        assert reg.value("sim_events_executed_total", subsystem="detect") == 1
        assert reg.value("sim_events_scheduled_total") == 5
        assert reg.value("sim_events_cancelled_total") == 1
        assert reg.value("sim_heap_depth", state="live") == 1
        assert reg.value("sim_heap_depth", state="tombstone") == 1
        assert reg.value("sim_tombstone_ratio") == pytest.approx(0.5)
        assert reg.value("sim_now_seconds") == 10.0
        # Host domain: wall seconds exist but stay out of default exports.
        assert reg.value(
            "sim_callback_seconds_total", subsystem="submit"
        ) >= 0.0
        assert "sim_callback_seconds_total" not in reg.render_prometheus()

    def test_flush_is_idempotent(self):
        reg = MetricsRegistry()
        engine = Engine(horizon=100.0, metrics=reg)
        engine.schedule(1.0, _noop, label="submit:x")
        engine.run()
        engine.flush_metrics()
        engine.flush_metrics()
        assert reg.value("sim_events_executed_total", subsystem="submit") == 1
        assert reg.value("sim_events_scheduled_total") == 1

    def test_tombstones_fired_when_not_compacted(self):
        reg = MetricsRegistry()
        engine = Engine(horizon=100.0, metrics=reg, auto_compact_ratio=0.0)
        engine.schedule(1.0, _noop).cancel()
        engine.schedule(2.0, _noop)
        engine.run()
        engine.flush_metrics()
        assert reg.value("sim_tombstones_fired_total") == 1
        assert reg.value("sim_compactions_total") == 0


@pytest.fixture(scope="module")
def chaos_telemetry_run(tmp_path_factory):
    """A chaos-corrupted small run pushed through the pipeline with
    telemetry enabled; returns ``(result, telemetry)``."""
    out = tmp_path_factory.mktemp("obs_chaos")
    config = StudyConfig.small(
        seed=41, job_scale=0.005, op_days=25, include_episode=True
    )
    DeltaStudy(config).run(out)
    corrupt_artifacts(out, ChaosConfig.calibrated(seed=3).scaled(20.0))
    telemetry = Telemetry.create(seed=41)
    result = run_pipeline(out, telemetry=telemetry)
    return result, telemetry


class TestHealthMetricsAgreement:
    """Satellite: the health report and the metrics registry are two
    views of the same pass and must never drift apart."""

    def test_chaos_run_actually_quarantined_lines(self, chaos_telemetry_run):
        result, _ = chaos_telemetry_run
        assert result.health.total_quarantined > 0
        assert result.health.total_repaired > 0

    def test_quarantine_reasons_agree(self, chaos_telemetry_run):
        result, telemetry = chaos_telemetry_run
        m = telemetry.metrics
        for reason, count in result.health.quarantined.items():
            assert (
                m.value("pipeline_quarantined_lines_total", reason=reason)
                == count
            ), reason
        total = sum(
            s.value
            for s in m.samples()
            if s.name == "pipeline_quarantined_lines_total"
        )
        assert total == result.health.total_quarantined

    def test_repairs_and_file_incidents_agree(self, chaos_telemetry_run):
        result, telemetry = chaos_telemetry_run
        m = telemetry.metrics
        for reason, count in result.health.repaired.items():
            assert (
                m.value("pipeline_repaired_lines_total", reason=reason)
                == count
            ), reason
        for reason, count in result.health.file_incidents.items():
            assert (
                m.value("pipeline_file_incidents_total", reason=reason)
                == count
            ), reason

    def test_line_and_coverage_accounting_agree(self, chaos_telemetry_run):
        result, telemetry = chaos_telemetry_run
        m = telemetry.metrics
        health = result.health
        assert m.value("pipeline_lines_read_total") == health.lines_read
        assert m.value("pipeline_lines_parsed_total") == health.parsed_lines
        assert (
            m.value("pipeline_day_coverage", state="present")
            == health.days_present
        )
        assert (
            m.value("pipeline_day_coverage", state="missing")
            == health.days_missing
        )
        assert m.value("pipeline_completeness") == pytest.approx(
            health.completeness
        )
        assert m.value("pipeline_coalesced_errors_total") == len(result.errors)
        assert m.value("pipeline_job_records_total") == len(result.jobs)

    def test_trace_covers_every_stage(self, chaos_telemetry_run):
        _, telemetry = chaos_telemetry_run
        names = {s.name for s in telemetry.tracer.finished}
        assert {
            "pipeline", "discover", "extract", "coalesce", "downtime",
            "load-jobs", "day",
        } <= names


class TestSimulateExportDeterminism:
    """Acceptance: same seed, byte-identical metric and trace exports."""

    @staticmethod
    def _run(seed):
        telemetry = Telemetry.create(seed=seed)
        config = StudyConfig.small(seed=seed, job_scale=0.003, op_days=20)
        DeltaStudy(config).run(telemetry=telemetry)
        return (
            telemetry.metrics.render_prometheus(),
            telemetry.metrics.to_json(),
            telemetry.tracer.to_jsonl(),
        )

    def test_same_seed_identical_exports(self):
        first = self._run(11)
        second = self._run(11)
        assert first == second

    def test_different_seed_diverges(self):
        assert self._run(11)[2] != self._run(12)[2]

    def test_sim_span_timestamps_are_simulation_time(self):
        telemetry = Telemetry.create(seed=11)
        config = StudyConfig.small(seed=11, job_scale=0.003, op_days=20)
        DeltaStudy(config).run(telemetry=telemetry)
        spans = {s.name: s for s in telemetry.tracer.finished}
        run_span = spans["engine-run"]
        # The engine-run span closes at the horizon, in sim seconds.
        assert run_span.end == pytest.approx(config.window.end)
        # Exported records carry no wall-clock fields ...
        for record in map(
            json.loads, telemetry.tracer.to_jsonl().splitlines()
        ):
            assert "wall_start" not in record and "wall_end" not in record
        # ... while the in-memory spans keep wall time for the report.
        assert run_span.wall_seconds > 0.0
