"""Unit tests for job population statistics (repro.analysis.jobstats)."""

import pytest

from repro.analysis.jobstats import JobStatistics
from repro.analysis.ml import ClassifierQuality, is_ml_job_name, validate_classifier
from repro.core.periods import StudyWindow
from repro.core.timebase import DAY, HOUR, MINUTE
from repro.slurm.types import Allocation, JobRecord, JobState, Partition


@pytest.fixture()
def window():
    return StudyWindow.scaled(pre_days=10, op_days=40)


OP0 = 10 * DAY


def job(
    job_id,
    gpu_count=1,
    minutes=60.0,
    name="namd_prod_001",
    state=JobState.COMPLETED,
    end=None,
    partition=Partition.GPU_A100_X4,
):
    end = OP0 + DAY if end is None else end
    start = end - minutes * MINUTE
    gpus = (
        {"gpua001": tuple(range(min(gpu_count, 4)))} if gpu_count else {}
    )
    return JobRecord(
        job_id=job_id,
        name=name,
        user="u",
        partition=partition,
        submit_time=start,
        start_time=start,
        end_time=end,
        state=state,
        exit_code=0 if state is JobState.COMPLETED else 1,
        allocation=Allocation(
            nodes=("gpua001",) if gpu_count else ("cn001",), gpus=gpus
        ),
        gpu_count=gpu_count,
    )


class TestBucketStats:
    def test_counts_and_shares(self, window):
        jobs = [job(i, gpu_count=1) for i in range(7)] + [
            job(10 + i, gpu_count=2) for i in range(3)
        ]
        rows = JobStatistics(jobs, window).bucket_stats()
        by_label = {r.bucket.label: r for r in rows}
        assert by_label["1"].count == 7
        assert by_label["1"].share == pytest.approx(0.7)
        assert by_label["2-4"].count == 3

    def test_elapsed_statistics(self, window):
        jobs = [job(i, minutes=m) for i, m in enumerate([10, 20, 30, 40, 100])]
        rows = JobStatistics(jobs, window).bucket_stats()
        row = next(r for r in rows if r.bucket.label == "1")
        assert row.mean_minutes == pytest.approx(40.0)
        assert row.p50_minutes == pytest.approx(30.0)

    def test_empty_bucket_has_none_stats(self, window):
        rows = JobStatistics([job(1)], window).bucket_stats()
        row = next(r for r in rows if r.bucket.label == "256+")
        assert row.count == 0
        assert row.mean_minutes is None

    def test_ml_gpu_hours_split(self, window):
        jobs = [
            job(1, minutes=60.0, name="train_resnet_001"),
            job(2, minutes=60.0, name="namd_prod_001"),
        ]
        rows = JobStatistics(jobs, window).bucket_stats()
        row = next(r for r in rows if r.bucket.label == "1")
        assert row.ml_gpu_hours == pytest.approx(1.0)
        assert row.non_ml_gpu_hours == pytest.approx(1.0)

    def test_operational_filter(self, window):
        pre_job = job(1, end=5 * DAY)
        op_job = job(2)
        stats = JobStatistics([pre_job, op_job], window)
        assert stats.population().gpu_jobs == 1
        everything = JobStatistics(
            [pre_job, op_job], window, operational_only=False
        )
        assert everything.population().gpu_jobs == 2


class TestPopulation:
    def test_success_rates(self, window):
        jobs = [
            job(1),
            job(2, state=JobState.FAILED),
            job(3, gpu_count=0, partition=Partition.CPU),
            job(4, gpu_count=0, partition=Partition.CPU, state=JobState.FAILED),
        ]
        population = JobStatistics(jobs, window).population()
        assert population.gpu_jobs == 2
        assert population.cpu_jobs == 2
        assert population.gpu_success_rate == pytest.approx(0.5)
        assert population.cpu_success_rate == pytest.approx(0.5)

    def test_gpu_count_fractions(self, window):
        jobs = (
            [job(i, gpu_count=1) for i in range(6)]
            + [job(10 + i, gpu_count=3) for i in range(3)]
            + [job(20, gpu_count=8)]
        )
        population = JobStatistics(jobs, window).population()
        assert population.single_gpu_fraction == pytest.approx(0.6)
        assert population.two_to_four_fraction == pytest.approx(0.3)
        assert population.over_four_fraction == pytest.approx(0.1)

    def test_empty_population(self, window):
        population = JobStatistics([], window).population()
        assert population.gpu_jobs == 0
        assert population.gpu_success_rate is None
        assert population.single_gpu_fraction is None

    def test_gpu_hours_totals(self, window):
        jobs = [job(1, gpu_count=2, minutes=90.0)]
        stats = JobStatistics(jobs, window)
        assert stats.total_gpu_hours() == pytest.approx(3.0)

    def test_ml_fraction_of_gpu_hours(self, window):
        jobs = [
            job(1, minutes=60.0, name="llm_pretrain_007"),
            job(2, minutes=180.0, name="wrf_forecast_002"),
        ]
        stats = JobStatistics(jobs, window)
        assert stats.ml_fraction_of_gpu_hours() == pytest.approx(0.25)


class TestMlClassifier:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("train_resnet_001", True),
            ("bert_finetune_910", True),
            ("MODEL_selection_3", True),
            ("llm_pretrain_x", True),
            ("namd_prod_001", False),
            ("wrf_forecast_17", False),
            ("exp42_003", False),
        ],
    )
    def test_keyword_matching(self, name, expected):
        assert is_ml_job_name(name) is expected

    def test_validate_classifier_confusion_matrix(self):
        pairs = [
            ("train_resnet_001", True),  # TP
            ("exp42_001", True),  # FN (opaque ML name)
            ("namd_prod_001", False),  # TN
            ("train_system_x", False),  # FP (HPC job named 'train')
        ]
        quality = validate_classifier(pairs)
        assert quality.true_positive == 1
        assert quality.false_negative == 1
        assert quality.true_negative == 1
        assert quality.false_positive == 1
        assert quality.precision == pytest.approx(0.5)
        assert quality.recall == pytest.approx(0.5)

    def test_empty_quality(self):
        quality = ClassifierQuality(0, 0, 0, 0)
        assert quality.precision is None
        assert quality.recall is None


class TestQueueWait:
    def test_queue_wait_statistics(self, window):
        j1 = job(1)
        # Give job 2 a 30-minute queue wait by moving its submit back.
        base = job(2)
        delayed = JobRecord(
            job_id=base.job_id,
            name=base.name,
            user=base.user,
            partition=base.partition,
            submit_time=base.start_time - 1800.0,
            start_time=base.start_time,
            end_time=base.end_time,
            state=base.state,
            exit_code=base.exit_code,
            allocation=base.allocation,
            gpu_count=base.gpu_count,
        )
        stats = JobStatistics([j1, delayed], window)
        mean, p50, p99 = stats.queue_wait_stats()
        assert mean == pytest.approx(15.0)
        assert p50 == pytest.approx(15.0)
        assert p99 == pytest.approx(29.7, abs=0.5)

    def test_queue_wait_none_without_jobs(self, window):
        assert JobStatistics([], window).queue_wait_stats() is None
