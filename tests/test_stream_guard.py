"""Supervision-layer unit tests: backoff, breaker, watchdog heals.

These run against duck-typed fake runtimes, so they exercise the
supervisor's detection/restart/recovery state machine in milliseconds
without building any ingest state.  The end-to-end variants — real
tenants, real checkpoints, real faults — live in
``tests/test_stream_chaos.py``.
"""

import threading
import time

import pytest

from repro.core.exceptions import ConfigurationError
from repro.stream import (
    CircuitBreaker,
    GuardConfig,
    IngestSupervisor,
    RestartBackoff,
)
from repro.stream.guard import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    TenantWorker,
)


def wait_until(predicate, timeout=5.0, interval=0.01):
    """Poll ``predicate`` until true or ``timeout`` elapses."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class FakeRuntime:
    """Duck-typed stand-in for TenantRuntime: scriptable failures."""

    def __init__(self, name, fail_polls=0):
        self.name = name
        self.fail_polls = fail_polls
        self.block_event = None
        self.rebuilds = 0
        self.mark_downs = []
        self.mark_ups = 0
        self.downtime_ticks = 0
        self.heartbeat_ticks = 0
        self.checkpoints = 0
        self.failures = []

    def poll_once(self, final=False):
        if self.block_event is not None:
            event, self.block_event = self.block_event, None
            event.wait()
        if self.fail_polls > 0:
            self.fail_polls -= 1
            raise RuntimeError("scripted poll failure")
        return 0

    def checkpoint(self):
        self.checkpoints += 1

    def rebuild(self):
        self.rebuilds += 1

    def note_worker_failure(self, exc):
        self.failures.append(exc)

    def mark_down(self, reason, breaker_state):
        self.mark_downs.append((reason, breaker_state))

    def mark_up(self):
        self.mark_ups += 1

    def record_downtime_freshness(self):
        self.downtime_ticks += 1

    def record_freshness_heartbeat(self):
        self.heartbeat_ticks += 1


FAST = GuardConfig(
    stall_timeout=0.4,
    watchdog_interval=0.02,
    backoff_base=0.02,
    backoff_max=0.08,
    backoff_jitter=0.0,
    breaker_threshold=3,
    breaker_cooldown=0.2,
    seed=7,
)


class TestGuardConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"stall_timeout": 0.0},
            {"stall_timeout": -1.0},
            {"watchdog_interval": 0.0},
            {"backoff_base": 0.0},
            {"backoff_base": 2.0, "backoff_max": 1.0},
            {"backoff_jitter": 1.0},
            {"backoff_jitter": -0.1},
            {"breaker_threshold": 0},
            {"breaker_cooldown": -1.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            GuardConfig(**kwargs)

    def test_defaults_valid(self):
        config = GuardConfig()
        assert config.stall_timeout > 0
        assert config.backoff_base <= config.backoff_max


class TestRestartBackoff:
    def test_deterministic_in_seed_and_salt(self):
        config = GuardConfig(seed=11, backoff_jitter=0.2)
        a = [RestartBackoff(config, salt=3).next_delay() for _ in range(1)]
        first = RestartBackoff(config, salt=3)
        second = RestartBackoff(config, salt=3)
        assert [first.next_delay() for _ in range(6)] == [
            second.next_delay() for _ in range(6)
        ]
        # A different salt (another tenant) gets a different sequence.
        other = RestartBackoff(config, salt=4)
        assert [other.next_delay() for _ in range(6)] != a + [
            first.next_delay() for _ in range(5)
        ]

    def test_exponential_growth_and_ceiling(self):
        config = GuardConfig(
            backoff_base=0.5, backoff_max=4.0, backoff_jitter=0.0
        )
        backoff = RestartBackoff(config)
        assert [backoff.next_delay() for _ in range(6)] == [
            0.5,
            1.0,
            2.0,
            4.0,
            4.0,
            4.0,
        ]

    def test_jitter_is_bounded(self):
        config = GuardConfig(
            backoff_base=1.0, backoff_max=1.0, backoff_jitter=0.25, seed=5
        )
        backoff = RestartBackoff(config)
        for _ in range(50):
            delay = backoff.next_delay()
            assert 0.75 <= delay <= 1.25

    def test_reset_rearms_from_base(self):
        config = GuardConfig(
            backoff_base=0.5, backoff_max=8.0, backoff_jitter=0.0
        )
        backoff = RestartBackoff(config)
        backoff.next_delay()
        backoff.next_delay()
        assert backoff.attempt == 2
        backoff.reset()
        assert backoff.attempt == 0
        assert backoff.next_delay() == 0.5


class TestCircuitBreaker:
    def test_stays_closed_under_threshold(self):
        breaker = CircuitBreaker(GuardConfig(breaker_threshold=3))
        assert breaker.record_failure(0.0) == BREAKER_CLOSED
        assert breaker.record_failure(1.0) == BREAKER_CLOSED
        assert breaker.allow_restart(1.0) is True

    def test_opens_at_threshold_and_blocks_restarts(self):
        breaker = CircuitBreaker(
            GuardConfig(breaker_threshold=2, breaker_cooldown=100.0)
        )
        breaker.record_failure(0.0)
        assert breaker.record_failure(1.0) == BREAKER_OPEN
        assert breaker.allow_restart(2.0) is False
        assert breaker.allow_restart(50.0) is False

    def test_cooldown_admits_one_half_open_probe(self):
        breaker = CircuitBreaker(
            GuardConfig(breaker_threshold=1, breaker_cooldown=10.0)
        )
        breaker.record_failure(0.0)
        assert breaker.state == BREAKER_OPEN
        assert breaker.allow_restart(10.0) is True
        assert breaker.state == BREAKER_HALF_OPEN
        # Only one probe at a time.
        assert breaker.allow_restart(11.0) is False

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(
            GuardConfig(breaker_threshold=1, breaker_cooldown=10.0)
        )
        breaker.record_failure(0.0)
        breaker.allow_restart(10.0)
        assert breaker.record_failure(11.0) == BREAKER_OPEN
        # The cooldown clock restarted at the probe failure.
        assert breaker.allow_restart(20.0) is False
        assert breaker.allow_restart(21.0) is True

    def test_probe_success_closes_and_clears(self):
        breaker = CircuitBreaker(
            GuardConfig(breaker_threshold=1, breaker_cooldown=10.0)
        )
        breaker.record_failure(0.0)
        breaker.allow_restart(10.0)
        breaker.record_success(11.0)
        assert breaker.state == BREAKER_CLOSED
        assert breaker.consecutive_failures == 0


class TestTenantWorker:
    def test_refuses_checkpoint_after_stop(self):
        """A superseded generation must not overwrite its successor."""
        runtime = FakeRuntime("a")
        worker = TenantWorker(
            runtime, poll_interval=0.01, checkpoint_interval=0.0
        )
        worker.stop()
        worker.start()
        worker.thread.join(timeout=2.0)
        assert runtime.checkpoints == 0

    def test_failure_recorded_and_thread_exits(self):
        runtime = FakeRuntime("a", fail_polls=1)
        worker = TenantWorker(
            runtime, poll_interval=0.01, checkpoint_interval=100.0
        )
        worker.start()
        assert wait_until(lambda: not worker.alive)
        assert isinstance(worker.failure, RuntimeError)
        assert runtime.failures


class TestSupervisorHeals:
    def _run_supervisor(self, runtimes, config=FAST, poll=0.01):
        supervisor = IngestSupervisor(
            runtimes, config, poll_interval=poll, checkpoint_interval=100.0
        )
        supervisor.start()
        return supervisor

    def test_crash_detected_rebuilt_and_recovered(self):
        runtime = FakeRuntime("alpha", fail_polls=1)
        supervisor = self._run_supervisor([runtime])
        try:
            assert wait_until(lambda: supervisor.recoveries["alpha"])
        finally:
            supervisor.stop()
        assert runtime.rebuilds == 1
        assert runtime.mark_downs and runtime.mark_downs[0][0] == "crash"
        assert runtime.mark_ups == 1
        recovery = supervisor.recoveries["alpha"][0]
        assert recovery["reason"] == "crash"
        assert recovery["seconds"] >= 0.0
        assert supervisor.restart_counts["alpha"]["crash"] == 1
        assert supervisor.breakers["alpha"].state == BREAKER_CLOSED
        snap = supervisor.snapshot()["alpha"]
        assert snap["healing"] is False
        assert snap["last_recovery_seconds"] is not None

    def test_stall_detected_and_replaced(self):
        """Alive-but-silent worker: abandoned, replaced, recovered."""
        release = threading.Event()
        runtime = FakeRuntime("alpha")
        runtime.block_event = release
        supervisor = self._run_supervisor([runtime])
        try:
            assert wait_until(
                lambda: supervisor.recoveries["alpha"], timeout=10.0
            )
        finally:
            supervisor.stop()
            release.set()
        assert runtime.mark_downs[0][0] == "stall"
        assert supervisor.restart_counts["alpha"]["stall"] == 1
        assert runtime.rebuilds == 1

    def test_persistent_failure_trips_breaker_open(self):
        config = GuardConfig(
            stall_timeout=5.0,
            watchdog_interval=0.02,
            backoff_base=0.01,
            backoff_max=0.02,
            backoff_jitter=0.0,
            breaker_threshold=2,
            breaker_cooldown=600.0,
        )
        runtime = FakeRuntime("alpha", fail_polls=10_000)
        supervisor = self._run_supervisor([runtime], config=config)
        try:
            assert wait_until(
                lambda: supervisor.breakers["alpha"].state == BREAKER_OPEN
            )
            # While open with a long cooldown, restarts stop: downtime
            # ticks keep accruing but no recovery ever lands.
            ticks = runtime.downtime_ticks
            assert wait_until(
                lambda: runtime.downtime_ticks > ticks, timeout=2.0
            )
            assert not supervisor.recoveries["alpha"]
        finally:
            supervisor.stop()
        snap = supervisor.snapshot()["alpha"]
        assert snap["breaker"] == BREAKER_OPEN
        assert snap["healing"] is True

    def test_healthy_co_tenant_untouched_by_sick_one(self):
        sick = FakeRuntime("sick", fail_polls=1)
        healthy = FakeRuntime("healthy")
        supervisor = self._run_supervisor([sick, healthy])
        try:
            assert wait_until(lambda: supervisor.recoveries["sick"])
        finally:
            supervisor.stop()
        assert healthy.rebuilds == 0
        assert healthy.mark_downs == []
        assert supervisor.restart_counts["healthy"] == {}
        assert healthy.heartbeat_ticks > 0
