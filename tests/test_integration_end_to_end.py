"""Integration tests: full simulation → artifacts → pipeline → analysis.

These tests exercise the exact information flow of the paper: the
analysis side reads only what is on disk, and we verify it recovers the
simulator's ground truth.
"""

from collections import Counter

import pytest

from repro.analysis import (
    JobImpactAnalysis,
    JobStatistics,
    MtbeAnalysis,
    validate_classifier,
)
from repro.core.periods import PeriodName
from repro.core.xid import EventClass
from repro.slurm.accounting import read_ground_truth
from repro.slurm.types import JobState


class TestArtifactsOnDisk:
    def test_expected_files_exist(self, small_run):
        artifacts, _ = small_run
        assert artifacts.syslog_dir.is_dir()
        assert artifacts.inventory_path.exists()
        assert artifacts.sacct_path.exists()
        assert artifacts.truth_path.exists()
        day_files = list(artifacts.syslog_dir.glob("syslog-*.log"))
        assert len(day_files) == pytest.approx(80, abs=3)

    def test_raw_lines_exceed_logical_errors(self, small_run):
        artifacts, result = small_run
        # Duplicate bursts mean raw lines >> logical errors.
        assert artifacts.raw_log_lines > len(artifacts.logical_events) * 2
        assert result.raw_hits > len(result.errors)

    def test_extraction_saw_noise_and_excluded_xids(self, small_run):
        _, result = small_run
        stats = result.extraction_stats
        assert stats.excluded_xid_lines > 0
        assert stats.total_lines > stats.matched_lines
        assert stats.malformed_lines == 0
        assert stats.unresolved_pci_lines == 0


class TestPipelineRecoversGroundTruth:
    def test_per_class_counts_match(self, small_run):
        artifacts, result = small_run
        truth = artifacts.logical_counts()
        recovered: Counter = Counter()
        for error in result.errors:
            period = artifacts.window.period_of(error.time)
            recovered[(period, error.event_class)] += 1
        for period in (PeriodName.PRE_OPERATIONAL, PeriodName.OPERATIONAL):
            for event_class in EventClass:
                expected = truth[period].get(event_class, 0)
                got = recovered.get((period, event_class), 0)
                # Coalescing recovers logical errors nearly exactly;
                # allow a small slack for window-boundary merges.
                assert got == pytest.approx(expected, abs=max(3, 0.03 * expected)), (
                    period,
                    event_class,
                )

    def test_total_recovery_rate(self, small_run):
        artifacts, result = small_run
        assert len(result.errors) == pytest.approx(
            len(artifacts.logical_events), rel=0.02
        )

    def test_downtime_episodes_match_ops_records(self, small_run):
        artifacts, result = small_run
        # Log-recovered downtime should match the ops layer's records
        # except episodes still open at window end.
        assert len(result.downtime) >= len(artifacts.downtime_records) - 25
        assert len(result.downtime) <= len(artifacts.downtime_records)
        ground = sorted(r.start for r in artifacts.downtime_records)
        recovered = sorted(r.start for r in result.downtime)
        for got, expected in zip(recovered[:50], ground[:50]):
            assert got == pytest.approx(expected, abs=1.0)

    def test_job_records_roundtrip(self, small_run):
        artifacts, result = small_run
        assert len(result.jobs) == len(artifacts.job_records)
        truth_states = {r.job_id: r.state for r in artifacts.job_records}
        for job in result.jobs[:200]:
            assert truth_states[job.job_id] is job.state


class TestImpactAgainstGroundTruth:
    def test_attributed_jobs_really_were_killed(self, small_run):
        artifacts, result = small_run
        impact = JobImpactAnalysis(
            result.errors, result.jobs, artifacts.window
        ).run()
        truth = read_ground_truth(artifacts.truth_path)
        killed_ids = {jid for jid, (cause, _) in truth.items() if cause}
        attributed = impact.gpu_failed_job_ids
        if not attributed:
            pytest.skip("no attributed jobs at this scale")
        # Precision: attributed jobs must overwhelmingly be true kills.
        truly_killed = len(attributed & killed_ids)
        assert truly_killed / len(attributed) > 0.93

    def test_recall_of_true_kills(self, small_run):
        artifacts, result = small_run
        impact = JobImpactAnalysis(
            result.errors, result.jobs, artifacts.window
        ).run()
        truth = read_ground_truth(artifacts.truth_path)
        operational = artifacts.window.operational
        killed_ids = {
            r.job_id
            for r in artifacts.job_records
            if r.killed_by is not None and operational.contains(r.end_time)
        }
        if not killed_ids:
            pytest.skip("no ground-truth kills at this scale")
        recovered = len(impact.gpu_failed_job_ids & killed_ids)
        assert recovered / len(killed_ids) > 0.9

    def test_gsp_errors_always_fatal(self, small_run):
        artifacts, result = small_run
        impact = JobImpactAnalysis(
            result.errors, result.jobs, artifacts.window
        ).run()
        gsp = impact.per_class.get(EventClass.GSP_ERROR)
        if gsp is None or gsp.jobs_encountering < 3:
            pytest.skip("too few GSP encounters at this scale")
        assert gsp.failure_probability >= 0.9

    def test_mmu_failure_probability_band(self, small_run):
        artifacts, result = small_run
        impact = JobImpactAnalysis(
            result.errors, result.jobs, artifacts.window
        ).run()
        mmu = impact.per_class[EventClass.MMU_ERROR]
        assert mmu.jobs_encountering > 100
        assert 0.75 <= mmu.failure_probability <= 1.0


class TestOutlierEpisode:
    def test_episode_gpu_detected_as_outlier(self, small_run):
        artifacts, result = small_run
        analysis = MtbeAnalysis(result.errors, artifacts.window, artifacts.node_count)
        outliers = analysis.outliers
        assert len(outliers) >= 1
        top = outliers[0]
        assert top.event_class is EventClass.UNCONTAINED_MEMORY_ERROR
        assert top.period is PeriodName.PRE_OPERATIONAL
        assert top.share > 0.9

    def test_overall_mtbe_excludes_episode(self, small_run):
        artifacts, result = small_run
        analysis = MtbeAnalysis(result.errors, artifacts.window, artifacts.node_count)
        with_episode = analysis.overall(
            PeriodName.PRE_OPERATIONAL, exclude_outliers=False
        )
        without = analysis.overall(PeriodName.PRE_OPERATIONAL)
        assert without.count < with_episode.count * 0.6
        assert without.per_node_mtbe_hours > with_episode.per_node_mtbe_hours

    def test_episode_gpu_replaced_after_discovery(self, small_run):
        artifacts, _ = small_run
        swaps = [r for r in artifacts.downtime_records if r.gpu_replaced]
        assert any(
            r.cause is EventClass.UNCONTAINED_MEMORY_ERROR for r in swaps
        )


class TestWorkloadStatistics:
    def test_success_rate_band(self, small_run):
        artifacts, result = small_run
        stats = JobStatistics(result.jobs, artifacts.window)
        population = stats.population()
        assert population.cpu_success_rate == pytest.approx(0.749, abs=0.04)

    def test_ml_classifier_quality_on_run(self, small_run):
        artifacts, _ = small_run
        pairs = [
            (r.name, r.is_ml_truth)
            for r in artifacts.job_records
            if r.gpu_count > 0
        ]
        quality = validate_classifier(pairs)
        assert quality.precision is None or quality.precision > 0.9
        if quality.recall is not None:
            assert 0.7 < quality.recall < 0.98  # opaque names are missed

    def test_job_states_consistent_with_exit_codes(self, small_run):
        _, result = small_run
        for job in result.jobs:
            if job.state is JobState.COMPLETED:
                assert job.exit_code == 0
            else:
                assert job.exit_code != 0
