"""Shared fixtures for the test suite.

The expensive fixture is ``small_run``: one complete small-scale study
simulation with on-disk artifacts, shared across the whole session.
Tests that need different configurations build their own runs.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro import Cluster, DeltaStudy, StudyConfig
from repro.pipeline import run_pipeline
from repro.sim.rng import RngRegistry


@pytest.fixture()
def rng() -> np.random.Generator:
    """A deterministic generator for unit tests."""
    return np.random.default_rng(12345)


@pytest.fixture()
def rngs() -> RngRegistry:
    """A deterministic stream registry."""
    return RngRegistry(seed=12345)


@pytest.fixture()
def small_cluster() -> Cluster:
    """A small cluster with both node flavours."""
    return Cluster.small(four_way=4, eight_way=1, cpu=2)


@pytest.fixture(scope="session")
def small_run(tmp_path_factory: pytest.TempPathFactory):
    """One complete small study run with on-disk artifacts.

    Returns ``(artifacts, pipeline_result)``; sessions share it, so
    tests must not mutate the returned objects.
    """
    out = tmp_path_factory.mktemp("small_run")
    config = StudyConfig.small(seed=42, include_episode=True, job_scale=0.03)
    artifacts = DeltaStudy(config).run(out)
    result = run_pipeline(out)
    return artifacts, result
