"""Determinism tests for the sharded parallel Stage-II pipeline.

The contract under test (see DESIGN §11): ``run_pipeline(workers=N)``
is an optimization only — for any worker count it must produce results
identical to the serial pass, including the pieces that look
order-dependent: the monotonic-timestamp watermark stitched across
shard boundaries, clock-step repair counts and their bounded sample
details, quarantine accounting, and the per-day checkpoint payloads.
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import time

import pytest

from repro import DeltaStudy, StudyConfig
from repro.core.exceptions import ConfigurationError, PipelineInterrupted
from repro.pipeline import (
    CHECKPOINT_DIRNAME,
    host_cores,
    resolve_workers,
    run_pipeline,
)
from repro.pipeline.shard import merge_scan, scan_day_file
from repro.pipeline.extract import ExtractionStats
from repro.pipeline.downtime import DowntimeExtractor
from repro.syslog.chaos import ChaosConfig, corrupt_artifacts
from repro.syslog.quarantine import REASON_CLOCK_STEP, Quarantine


def _fingerprint(result):
    """Every observable output of one pass, as comparable plain data."""
    health = result.health
    return {
        "errors": result.errors,
        "downtime": result.downtime,
        "jobs": result.jobs,
        "stats": result.extraction_stats,
        "raw_hits": result.raw_hits,
        "lines_read": health.lines_read,
        "parsed_lines": health.parsed_lines,
        "quarantined": health.quarantined,
        "repaired": health.repaired,
        "file_incidents": health.file_incidents,
        "samples": health.quarantine_samples,
        "days": (health.days_present, health.days_missing),
    }


def _assert_identical(a, b, include_samples=True):
    # Checkpoint payloads carry counters but not the bounded sample
    # list, so any *resumed* pass (serial or parallel alike) replays
    # counters only — resume comparisons skip the samples field.
    fa, fb = _fingerprint(a), _fingerprint(b)
    for key in fa:
        if key == "samples" and not include_samples:
            continue
        assert fa[key] == fb[key], f"{key} differs between passes"


@pytest.fixture(scope="module")
def corrupted_src(tmp_path_factory):
    """A chaos-corrupted small run (pristine: no checkpoint state)."""
    src = tmp_path_factory.mktemp("parallel_chaos") / "run"
    config = StudyConfig.small(
        seed=41, job_scale=0.005, op_days=25, include_episode=True
    )
    DeltaStudy(config).run(src)
    corrupt_artifacts(src, ChaosConfig.calibrated(seed=3).scaled(20.0))
    return src


@pytest.fixture(scope="module")
def corrupted_baseline(corrupted_src):
    """The serial (workers=1) reference result over the corrupted run."""
    return run_pipeline(corrupted_src, workers=1)


def _copy(src, tmp_path):
    dst = tmp_path / "copy"
    shutil.copytree(src, dst)
    return dst


class TestParallelSerialIdentity:
    def test_clean_run_identity(self, tmp_path):
        config = StudyConfig.small(seed=12, job_scale=0.003, op_days=10)
        DeltaStudy(config).run(tmp_path)
        serial = run_pipeline(tmp_path, workers=1)
        parallel = run_pipeline(tmp_path, workers=3)
        _assert_identical(serial, parallel)

    def test_corrupted_run_identity(self, corrupted_src, corrupted_baseline):
        """Satellite: chaos-corrupted input through 4 workers matches
        the serial pass field for field — errors, downtime, stats,
        quarantine counts, samples, and health accounting."""
        assert corrupted_baseline.health.total_quarantined > 0
        assert corrupted_baseline.health.total_repaired > 0
        assert (
            corrupted_baseline.health.repaired.get(REASON_CLOCK_STEP, 0) > 0
        )
        parallel = run_pipeline(corrupted_src, workers=4)
        _assert_identical(corrupted_baseline, parallel)

    def test_more_workers_than_files_identity(self, tmp_path):
        config = StudyConfig.small(seed=9, job_scale=0.002, op_days=6)
        DeltaStudy(config).run(tmp_path)
        serial = run_pipeline(tmp_path, workers=1)
        oversubscribed = run_pipeline(tmp_path, workers=32)
        _assert_identical(serial, oversubscribed)

    def test_invalid_worker_count_rejected(self, tmp_path):
        (tmp_path / "syslog").mkdir()
        with pytest.raises(ConfigurationError):
            run_pipeline(tmp_path, workers=0)


class TestBoundaryClockStep:
    """The watermark-stitching rule: a clock step that crosses a day
    boundary must clamp, count, and sample identically whether the two
    days were scanned by one process or two."""

    DAY1_MAX = "2022-01-01T23:59:50.000000"

    def _write_days(self, tmp_path):
        syslog = tmp_path / "syslog"
        syslog.mkdir(parents=True)
        day1 = [
            "2022-01-01T00:00:10.000000 gpua001 kernel: benign",
            f"{self.DAY1_MAX} gpua001 kernel: NVRM: Xid "
            "(PCI:0000:07:00): 79, GPU has fallen off the bus.",
        ]
        # Day 2 opens *behind* day 1's maximum (NTP step across the
        # rotation boundary): three stepped lines, one of them an
        # analyzed XID hit, then the clock recovers.
        day2 = [
            "2022-01-01T22:00:00.000000 gpua002 kernel: stepped-1",
            "2022-01-01T22:30:00.000000 gpua002 kernel: NVRM: Xid "
            "(PCI:0000:47:00): 79, GPU has fallen off the bus.",
            "2022-01-01T23:00:00.000000 gpua002 kernel: stepped-3",
            "2022-01-02T01:00:00.000000 gpua002 kernel: recovered",
        ]
        (syslog / "syslog-2022-01-01.log").write_text(
            "\n".join(day1) + "\n", encoding="utf-8"
        )
        (syslog / "syslog-2022-01-02.log").write_text(
            "\n".join(day2) + "\n", encoding="utf-8"
        )
        return syslog

    def test_cross_boundary_clamp_identical_and_exact(self, tmp_path):
        from repro.core.timebase import parse_syslog_timestamp

        self._write_days(tmp_path)
        serial = run_pipeline(tmp_path, load_jobs=False, workers=1)
        parallel = run_pipeline(tmp_path, load_jobs=False, workers=2)
        _assert_identical(serial, parallel)

        # All three stepped day-2 lines are boundary clamps.
        assert serial.health.repaired[REASON_CLOCK_STEP] == 3
        watermark = parse_syslog_timestamp(self.DAY1_MAX)
        # The stitched hit carries the day-1 watermark, not its raw time.
        assert serial.raw_hits == 2
        hit_times = sorted(e.time for e in serial.errors)
        assert watermark in hit_times
        # Sample details record the boundary watermark as the target.
        clock_samples = [
            detail
            for reason, detail in serial.health.quarantine_samples
            if reason == REASON_CLOCK_STEP
        ]
        assert len(clock_samples) == 3
        assert all(f"clamped to {watermark:.6f}" in d for d in clock_samples)

    def test_mixed_local_and_boundary_clamps(self, tmp_path):
        """Local steps inside day 2 interleave with boundary clamps;
        order and counts must match the serial pass exactly."""
        syslog = tmp_path / "syslog"
        syslog.mkdir(parents=True)
        (syslog / "syslog-2022-01-01.log").write_text(
            "2022-01-01T20:00:00.000000 gpua001 kernel: benign\n",
            encoding="utf-8",
        )
        day2 = [
            # boundary clamp (before day-1 max)
            "2022-01-01T10:00:00.000000 gpua002 kernel: b1",
            # boundary clamp
            "2022-01-01T12:00:00.000000 gpua002 kernel: b2",
            # ahead of watermark: new running max
            "2022-01-02T08:00:00.000000 gpua002 kernel: ok",
            # local clamp (behind the new max)
            "2022-01-02T07:00:00.000000 gpua002 kernel: l1",
            "2022-01-02T09:00:00.000000 gpua002 kernel: ok2",
        ]
        (syslog / "syslog-2022-01-02.log").write_text(
            "\n".join(day2) + "\n", encoding="utf-8"
        )
        serial = run_pipeline(tmp_path, load_jobs=False, workers=1)
        parallel = run_pipeline(tmp_path, load_jobs=False, workers=2)
        _assert_identical(serial, parallel)
        assert serial.health.repaired[REASON_CLOCK_STEP] == 3
        details = [
            d
            for r, d in serial.health.quarantine_samples
            if r == REASON_CLOCK_STEP
        ]
        # Line order: two boundary clamps, then the local one.
        assert len(details) == 3
        assert details[0].startswith("gpua002")
        assert "clamped to" in details[2]


class TestShardMergeUnits:
    """Direct scan/merge invariants (no orchestrator in the way)."""

    def _scan(self, tmp_path, lines):
        path = tmp_path / "syslog-2022-01-03.log"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return scan_day_file(path)

    def test_scan_is_watermark_independent(self, tmp_path):
        scan = self._scan(
            tmp_path,
            [
                "2022-01-03T00:00:05.000000 gpua001 kernel: a",
                "2022-01-03T00:00:01.000000 gpua001 kernel: stepped",
                "2022-01-03T00:00:09.000000 gpua001 kernel: b",
            ],
        )
        assert scan.lines_read == 3
        assert scan.parsed_lines == 3
        assert scan.repaired == {REASON_CLOCK_STEP: 1}
        # Unclamped timestamps arrive sorted (running-maximum property).
        times = list(scan.unclamped_times)
        assert times == sorted(times)

    def test_merge_against_high_watermark_clamps_prefix(self, tmp_path):
        scan = self._scan(
            tmp_path,
            [
                "2022-01-03T00:00:05.000000 gpua001 kernel: a",
                "2022-01-03T00:00:09.000000 gpua001 kernel: b",
                "2022-01-03T00:00:20.000000 gpua001 kernel: c",
            ],
        )
        quarantine = Quarantine()
        stats = ExtractionStats()
        watermark = scan.unclamped_times[1] + 1.0  # between b and c
        new_wm, payload = merge_scan(
            scan, watermark, quarantine, stats, DowntimeExtractor(), []
        )
        # a and b fall below the incoming watermark: two boundary clamps.
        assert quarantine.repaired[REASON_CLOCK_STEP] == 2
        assert new_wm == scan.unclamped_times[2]
        assert payload["last_time"] == new_wm

    def test_merge_with_no_watermark_matches_local(self, tmp_path):
        scan = self._scan(
            tmp_path, ["2022-01-03T00:00:05.000000 gpua001 kernel: a"]
        )
        quarantine = Quarantine()
        new_wm, payload = merge_scan(
            scan,
            float("-inf"),
            quarantine,
            ExtractionStats(),
            DowntimeExtractor(),
            [],
        )
        assert quarantine.total_repaired == 0
        assert new_wm == scan.local_max
        assert payload["lines_read"] == 1


class TestCheckpointInterchange:
    """Serial and parallel checkpoints are the same artifact."""

    def test_checkpoint_payloads_byte_identical(
        self, corrupted_src, tmp_path
    ):
        a = _copy(corrupted_src, tmp_path / "a")
        b = _copy(corrupted_src, tmp_path / "b")
        run_pipeline(a, checkpoint=True, workers=1)
        run_pipeline(b, checkpoint=True, workers=4)
        days_a = sorted((a / CHECKPOINT_DIRNAME / "days").iterdir())
        days_b = sorted((b / CHECKPOINT_DIRNAME / "days").iterdir())
        assert [p.name for p in days_a] == [p.name for p in days_b]
        for pa, pb in zip(days_a, days_b):
            assert pa.read_bytes() == pb.read_bytes(), pa.name

    def test_parallel_interrupt_resumed_serial(
        self, corrupted_src, corrupted_baseline, tmp_path
    ):
        work = _copy(corrupted_src, tmp_path)
        with pytest.raises(PipelineInterrupted):
            run_pipeline(
                work, checkpoint=True, interrupt_after_files=4, workers=4
            )
        resumed = run_pipeline(work, resume=True, workers=1)
        assert resumed.health.resumed_files == 4
        _assert_identical(corrupted_baseline, resumed, include_samples=False)

    def test_serial_interrupt_resumed_parallel(
        self, corrupted_src, corrupted_baseline, tmp_path
    ):
        work = _copy(corrupted_src, tmp_path)
        with pytest.raises(PipelineInterrupted):
            run_pipeline(
                work, checkpoint=True, interrupt_after_files=4, workers=1
            )
        resumed = run_pipeline(work, resume=True, workers=4)
        assert resumed.health.resumed_files == 4
        _assert_identical(corrupted_baseline, resumed, include_samples=False)


class TestResumeUnderParallelism:
    """Satellite: a parallel run killed mid-campaign resumes to results
    identical to an uninterrupted serial pass."""

    def test_killed_parallel_run_resumes_identical(
        self, corrupted_src, corrupted_baseline, tmp_path
    ):
        work = _copy(corrupted_src, tmp_path)
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src",
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
        driver = (
            "import sys\n"
            "from repro.pipeline import run_pipeline\n"
            "run_pipeline(sys.argv[1], checkpoint=True, workers=3)\n"
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", driver, str(work)], env=env
        )
        # Kill once the run has had a chance to checkpoint some days
        # (or let it finish — resume must be identical either way).
        manifest = work / CHECKPOINT_DIRNAME / "manifest.json"
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if manifest.exists() or proc.poll() is not None:
                break
            time.sleep(0.05)
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60)

        resumed = run_pipeline(work, resume=True, workers=3)
        _assert_identical(corrupted_baseline, resumed, include_samples=False)


class TestWorkerResolution:
    def test_auto_maps_to_host_cores(self):
        cores = host_cores()
        assert cores >= 1
        assert resolve_workers("auto") == cores
        assert resolve_workers(None) == cores
        assert resolve_workers(0) == cores

    def test_explicit_counts(self):
        assert resolve_workers(3) == 3
        assert resolve_workers("2") == 2
        assert resolve_workers(-5) == 1

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers("many")


class TestParallelCli:
    def test_workers_flag(self, tmp_path, capsys):
        from repro.cli import main

        config = StudyConfig.small(seed=13, job_scale=0.002, op_days=8)
        DeltaStudy(config).run(tmp_path)
        assert main(["pipeline", str(tmp_path), "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "raw lines scanned" in out
        assert main(["pipeline", str(tmp_path), "--workers", "auto"]) == 0
        assert "raw lines scanned" in capsys.readouterr().out

    def test_bad_workers_flag(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "syslog").mkdir()
        assert main(["pipeline", str(tmp_path), "--workers", "lots"]) == 2
        assert "invalid --workers" in capsys.readouterr().err
