"""Engine snapshot/restore, state digests, and run checkpoints.

Covers the two recovery mechanisms DESIGN §10 distinguishes:

* in-process structural snapshots (:meth:`Engine.snapshot` /
  :meth:`Engine.restore`), including their interaction with the lazy
  tombstone heap and auto-compaction under a cancel-heavy fault storm;
* cross-process replay-verified checkpoints
  (:mod:`repro.sim.checkpoint`), proven byte-identical across an
  interrupt/resume cycle of a real study run.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.exceptions import (
    CheckpointError,
    SimulationError,
    SimulationInterrupted,
)
from repro.core.timebase import DAY
from repro.sim.checkpoint import (
    CheckpointConfig,
    CheckpointRecord,
    RunCheckpoint,
)
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.study import DeltaStudy, StudyConfig


def _tiny_config(seed: int = 11) -> StudyConfig:
    return StudyConfig.small(
        seed=seed, pre_days=1.0, op_days=5.0, job_scale=0.01
    )


def _artifact_bytes(root: Path) -> dict:
    """Map of relative path -> file bytes for a whole artifact tree."""
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


class TestEngineSnapshot:
    def _scripted_engine(self, trace):
        """An engine running a deterministic self-rescheduling script."""
        engine = Engine(horizon=100.0)

        def tick(t):
            def fire():
                trace.append(("tick", engine.now))
                if t + 10.0 < engine.horizon:
                    engine.schedule(t + 10.0, tick(t + 10.0), label="w:tick")

            return fire

        engine.schedule(5.0, tick(5.0), label="w:tick")
        return engine

    def test_restore_replays_identically(self):
        trace = []
        engine = self._scripted_engine(trace)
        engine.run(until=40.0)
        snap = engine.snapshot()
        prefix = list(trace)
        engine.run()
        full = list(trace)

        trace.clear()
        trace.extend(prefix)
        engine.restore(snap)
        engine.run()
        assert trace == full

    def test_snapshot_is_reusable(self):
        trace = []
        engine = self._scripted_engine(trace)
        engine.run(until=35.0)
        snap = engine.snapshot()
        results = []
        for _ in range(2):
            trace.clear()
            engine.restore(snap)
            engine.run()
            results.append(list(trace))
        assert results[0] == results[1]

    def test_snapshot_isolated_from_later_activity(self):
        engine = Engine(horizon=50.0)
        handle = engine.schedule(10.0, lambda: None, label="a")
        snap = engine.snapshot()
        handle.cancel()
        assert snap.live_events == 1
        engine.restore(snap)
        assert engine.live_pending_events == 1

    def test_restore_while_running_raises(self):
        engine = Engine(horizon=50.0)
        snap = engine.snapshot()

        def sabotage():
            with pytest.raises(SimulationError):
                engine.restore(snap)

        engine.schedule(1.0, sabotage)
        engine.run()

    def test_counters_roundtrip(self):
        engine = Engine(horizon=50.0)
        keep = engine.schedule(20.0, lambda: None)
        engine.schedule(30.0, lambda: None).cancel()
        engine.run(until=10.0)
        snap = engine.snapshot()
        other = Engine(horizon=50.0)
        other.restore(snap)
        assert other.now == engine.now
        assert other.pending_events == engine.pending_events
        assert other.live_pending_events == engine.live_pending_events
        assert other.state_digest() == engine.state_digest()
        assert keep is not None


class TestStateDigest:
    def test_equal_futures_digest_equally(self):
        a, b = Engine(horizon=10.0), Engine(horizon=10.0)
        a.schedule(1.0, lambda: None, label="x")
        a.schedule(2.0, lambda: None, label="y")
        # Different scheduling order (so different seq numbers), same
        # live multiset.
        b.schedule(2.0, lambda: None, label="y")
        b.schedule(1.0, lambda: None, label="x")
        assert a.state_digest() == b.state_digest()

    def test_tombstones_do_not_count(self):
        a, b = Engine(horizon=10.0), Engine(horizon=10.0)
        a.schedule(1.0, lambda: None, label="x")
        b.schedule(1.0, lambda: None, label="x")
        b.schedule(5.0, lambda: None, label="doomed").cancel()
        assert a.state_digest() == b.state_digest()

    def test_exclusion_prefixes(self):
        a, b = Engine(horizon=10.0), Engine(horizon=10.0)
        a.schedule(1.0, lambda: None, label="x")
        b.schedule(1.0, lambda: None, label="x")
        b.schedule(3.0, lambda: None, label="chaos:kill")
        b.schedule(4.0, lambda: None, label="checkpoint:tick")
        assert a.state_digest() != b.state_digest()
        assert a.state_digest(
            exclude_label_prefixes=("chaos:", "checkpoint:")
        ) == b.state_digest(exclude_label_prefixes=("chaos:", "checkpoint:"))

    def test_live_event_changes_digest(self):
        a, b = Engine(horizon=10.0), Engine(horizon=10.0)
        a.schedule(1.0, lambda: None, label="x")
        b.schedule(1.0, lambda: None, label="y")
        assert a.state_digest() != b.state_digest()


class TestTombstoneStormSnapshot:
    """Satellite: cancel-heavy storms + compaction + snapshot/restore."""

    def _storm_engine(self, trace):
        """A fault-storm script that cancels most of what it schedules."""
        engine = Engine(
            horizon=1000.0, auto_compact_ratio=0.5, auto_compact_min=64
        )
        handles = []

        def wave(t):
            def fire():
                trace.append(round(engine.now, 3))
                # Schedule a burst, then cancel 90% of it — the
                # mitigation path of a fault storm.
                burst = [
                    engine.schedule(
                        engine.now + 1.0 + 0.01 * i,
                        lambda: trace.append("burst"),
                        label="storm:burst",
                    )
                    for i in range(100)
                ]
                for handle in burst[: len(burst) * 9 // 10]:
                    handle.cancel()
                handles.extend(burst)
                if t + 50.0 < engine.horizon:
                    engine.schedule(
                        t + 50.0, wave(t + 50.0), label="storm:wave"
                    )

            return fire

        engine.schedule(10.0, wave(10.0), label="storm:wave")
        return engine

    def test_auto_compaction_triggers_under_storm(self):
        trace = []
        engine = self._storm_engine(trace)
        engine.run()
        assert engine.compactions > 0
        assert engine.tombstone_ratio < 0.5

    def test_snapshot_restore_mid_storm_is_deterministic(self):
        trace = []
        engine = self._storm_engine(trace)
        engine.run(until=310.0)
        assert engine.compactions > 0  # storm already forced compaction
        snap = engine.snapshot()
        prefix = list(trace)
        engine.run()
        full = list(trace)
        full_digest = engine.state_digest()

        # Restore into the same engine and replay the tail twice.
        for _ in range(2):
            trace.clear()
            trace.extend(prefix)
            engine.restore(snap)
            engine.run()
            assert trace == full
            assert engine.state_digest() == full_digest

    def test_compaction_after_restore_preserves_future(self):
        trace = []
        engine = self._storm_engine(trace)
        engine.run(until=310.0)
        snap = engine.snapshot()
        prefix = list(trace)
        engine.run()
        full = list(trace)

        # Restore, force an immediate manual compaction, then replay:
        # removing tombstones must not change what fires.
        trace.clear()
        trace.extend(prefix)
        engine.restore(snap)
        engine.compact()
        assert engine.tombstone_ratio == 0.0
        engine.run()
        assert trace == full


class TestRngRegistryState:
    def test_state_roundtrip(self):
        rngs = RngRegistry(seed=7)
        stream = rngs.stream("faults")
        stream.normal(size=8)
        state = rngs.state()
        digest = rngs.digest()
        expected = stream.normal(size=4).tolist()
        rngs.restore_state(state)
        assert rngs.digest() == digest
        assert rngs.stream("faults").normal(size=4).tolist() == expected

    def test_digest_tracks_consumption(self):
        rngs = RngRegistry(seed=7)
        before = rngs.digest()
        rngs.stream("faults").normal()
        assert rngs.digest() != before


class TestRunCheckpointDocument:
    def test_save_load_roundtrip(self, tmp_path):
        doc = RunCheckpoint(
            seed=3,
            config_digest="abc",
            records=[
                CheckpointRecord(
                    sim_time=86400.0,
                    executed_events=10,
                    engine_digest="e1",
                    rng_digest="r1",
                )
            ],
        )
        path = tmp_path / "ck.json"
        doc.save(path)
        loaded = RunCheckpoint.load(path)
        assert loaded is not None
        assert loaded.seed == 3
        assert loaded.watermark == 86400.0
        assert not loaded.completed

    def test_damaged_document_loads_as_none(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{not json", encoding="utf-8")
        assert RunCheckpoint.load(path) is None
        path.write_text(json.dumps({"version": 99}), encoding="utf-8")
        assert RunCheckpoint.load(path) is None
        assert RunCheckpoint.load(tmp_path / "absent.json") is None

    def test_bad_cadence_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointConfig(path=tmp_path / "ck.json", cadence_days=0)


class TestCheckpointedRun:
    """Interrupt/resume drills over a real (tiny) study run."""

    def test_interrupt_then_resume_is_byte_identical(self, tmp_path):
        baseline_dir = tmp_path / "baseline"
        resumed_dir = tmp_path / "resumed"
        ck = CheckpointConfig(
            path=tmp_path / "engine_checkpoint.json", cadence_days=1.0
        )

        DeltaStudy(_tiny_config()).run(baseline_dir)

        with pytest.raises(SimulationInterrupted):
            DeltaStudy(_tiny_config()).run(
                resumed_dir, checkpoint=ck, interrupt_at_day=3.0
            )
        partial = RunCheckpoint.load(ck.path)
        assert partial is not None
        assert not partial.completed
        assert 0 < len(partial.records) <= 3

        DeltaStudy(_tiny_config()).run(resumed_dir, checkpoint=ck, resume=True)
        final = RunCheckpoint.load(ck.path)
        assert final is not None and final.completed
        assert len(final.records) >= len(partial.records)
        # The resumed run re-proved the interrupted run's watermarks.
        assert final.records[: len(partial.records)] == partial.records

        assert _artifact_bytes(resumed_dir) == _artifact_bytes(baseline_dir)

    def test_resume_with_other_config_refused(self, tmp_path):
        ck = CheckpointConfig(
            path=tmp_path / "engine_checkpoint.json", cadence_days=1.0
        )
        with pytest.raises(SimulationInterrupted):
            DeltaStudy(_tiny_config()).run(
                tmp_path / "a", checkpoint=ck, interrupt_at_day=2.0
            )
        with pytest.raises(CheckpointError):
            DeltaStudy(
                StudyConfig.small(
                    seed=11, pre_days=1.0, op_days=5.0, job_scale=0.02
                )
            ).run(tmp_path / "b", checkpoint=ck, resume=True)

    def test_resume_with_other_seed_refused(self, tmp_path):
        ck = CheckpointConfig(
            path=tmp_path / "engine_checkpoint.json", cadence_days=1.0
        )
        with pytest.raises(SimulationInterrupted):
            DeltaStudy(_tiny_config(seed=11)).run(
                tmp_path / "a", checkpoint=ck, interrupt_at_day=2.0
            )
        with pytest.raises(CheckpointError):
            DeltaStudy(_tiny_config(seed=12)).run(
                tmp_path / "b", checkpoint=ck, resume=True
            )

    def test_divergence_detected(self, tmp_path):
        ck = CheckpointConfig(
            path=tmp_path / "engine_checkpoint.json", cadence_days=1.0
        )
        with pytest.raises(SimulationInterrupted):
            DeltaStudy(_tiny_config()).run(
                tmp_path / "a", checkpoint=ck, interrupt_at_day=3.0
            )
        # Tamper with a recorded digest: the replay must refuse.
        payload = json.loads(ck.path.read_text("utf-8"))
        payload["records"][0]["rng_digest"] = "0" * 64
        ck.path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(CheckpointError, match="diverged"):
            DeltaStudy(_tiny_config()).run(
                tmp_path / "b", checkpoint=ck, resume=True
            )

    def test_cadence_beyond_horizon_writes_no_records(self, tmp_path):
        ck = CheckpointConfig(
            path=tmp_path / "engine_checkpoint.json", cadence_days=400.0
        )
        DeltaStudy(_tiny_config()).run(tmp_path / "a", checkpoint=ck)
        doc = RunCheckpoint.load(ck.path)
        assert doc is not None and doc.completed
        assert doc.records == []

    def test_interrupt_day_scales_records(self, tmp_path):
        ck = CheckpointConfig(
            path=tmp_path / "engine_checkpoint.json", cadence_days=1.0
        )
        with pytest.raises(SimulationInterrupted):
            DeltaStudy(_tiny_config()).run(
                tmp_path / "a", checkpoint=ck, interrupt_at_day=4.5
            )
        doc = RunCheckpoint.load(ck.path)
        assert doc is not None
        assert doc.watermark <= 4.5 * DAY
