"""Unit tests for span tracing and structured logging (repro.obs)."""

import io
import json

from repro.obs import Telemetry
from repro.obs.tracing import Tracer, chrome_trace_from_jsonl


def _make_tracer(seed=7):
    """A tracer driven by a hand-cranked fake clock."""
    tracer = Tracer(enabled=True, seed=seed)
    state = {"t": 0.0}

    def advance(dt):
        state["t"] += dt

    tracer.set_clock(lambda: state["t"])
    return tracer, advance


class TestSpanTree:
    def test_nesting_sets_parent_and_depth(self):
        tracer, advance = _make_tracer()
        with tracer.span("outer") as outer:
            advance(1.0)
            with tracer.span("inner") as inner:
                advance(2.0)
                assert inner.parent_id == outer.span_id
                assert (outer.depth, inner.depth) == (1, 2)
        assert tracer.current_span_id is None
        # Completion order: inner closes first.
        assert [s.name for s in tracer.finished] == ["inner", "outer"]

    def test_trace_clock_timestamps(self):
        tracer, advance = _make_tracer()
        with tracer.span("outer"):
            advance(1.0)
            with tracer.span("inner") as inner:
                advance(2.0)
        outer = tracer.finished[1]
        assert (outer.start, outer.end) == (0.0, 3.0)
        assert (inner.start, inner.end) == (1.0, 3.0)
        assert inner.duration == 2.0

    def test_siblings_share_parent(self):
        tracer, _ = _make_tracer()
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id
        assert a.span_id != b.span_id

    def test_span_finishes_on_exception(self):
        tracer, advance = _make_tracer()
        try:
            with tracer.span("boom"):
                advance(1.0)
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert [s.name for s in tracer.finished] == ["boom"]
        assert tracer.finished[0].end == 1.0
        assert tracer.current_span_id is None

    def test_set_attr(self):
        tracer, _ = _make_tracer()
        with tracer.span("s", preset="small") as span:
            span.set_attr("events", 42)
        rec = tracer.finished[0].to_record()
        assert rec["attrs"] == {"preset": "small", "events": 42}


class TestDeterminism:
    def test_span_ids_derive_from_seed_and_ordinal(self):
        a, _ = _make_tracer(seed=7)
        b, _ = _make_tracer(seed=7)
        other, _ = _make_tracer(seed=8)
        for t in (a, b, other):
            with t.span("x"):
                with t.span("y"):
                    pass
        ids = lambda t: [s.span_id for s in t.finished]  # noqa: E731
        assert ids(a) == ids(b)
        assert ids(a) != ids(other)

    def test_same_seed_byte_identical_jsonl(self):
        def run(seed):
            tracer, advance = _make_tracer(seed=seed)
            with tracer.span("outer", seed=seed):
                advance(1.5)
                with tracer.span("inner"):
                    advance(0.5)
            return tracer.to_jsonl()

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_exported_record_has_no_wall_clock_fields(self):
        tracer, _ = _make_tracer()
        with tracer.span("s"):
            pass
        rec = tracer.finished[0].to_record()
        assert set(rec) == {
            "name", "span_id", "parent_id", "depth", "start", "end", "attrs",
        }


class TestChromeTrace:
    def test_document_shape(self):
        tracer, advance = _make_tracer()
        with tracer.span("outer"):
            advance(2.0)
            with tracer.span("inner"):
                advance(1.0)
        doc = tracer.to_chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        events = {e["name"]: e for e in doc["traceEvents"]}
        assert len(events) == 2
        outer = events["outer"]
        assert outer["ph"] == "X"
        assert outer["ts"] == 0.0
        assert outer["dur"] == 3.0 * 1e6  # microseconds
        assert outer["tid"] == 1
        assert events["inner"]["tid"] == 2
        assert events["inner"]["args"]["parent_id"] == outer["args"]["span_id"]

    def test_jsonl_round_trip_matches_direct_export(self):
        tracer, advance = _make_tracer()
        with tracer.span("s", k="v"):
            advance(1.0)
        from_jsonl = chrome_trace_from_jsonl(tracer.to_jsonl())
        assert from_jsonl == tracer.to_chrome_trace()


class TestDisabledTracer:
    def test_yields_none_and_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x") as span:
            assert span is None
        assert tracer.finished == []
        assert tracer.to_jsonl() == ""
        assert tracer.to_chrome_trace()["traceEvents"] == []


class TestStructuredLogger:
    def test_records_correlate_to_run_and_span(self):
        stream = io.StringIO()
        tel = Telemetry.create(seed=5, log_stream=stream)
        state = {"t": 0.0}
        tel.set_clock(lambda: state["t"])
        with tel.tracer.span("phase") as span:
            state["t"] = 12.5
            tel.logger.event("thing.done", count=3)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1
        rec = json.loads(lines[0])
        assert rec["event"] == "thing.done"
        assert rec["run_id"] == "run-00000005"
        assert rec["span_id"] == span.span_id
        assert rec["t"] == 12.5
        assert rec["level"] == "info"
        assert rec["count"] == 3
        assert tel.logger.records_written == 1

    def test_no_stream_is_noop(self):
        tel = Telemetry.create(seed=1)  # no log_stream
        tel.logger.event("ignored")
        assert tel.logger.records_written == 0

    def test_disabled_bundle_is_inert(self):
        tel = Telemetry.disabled()
        assert not tel.enabled
        with tel.tracer.span("x") as span:
            assert span is None
        tel.logger.event("ignored")
        tel.metrics.counter("c_total").inc()
        assert tel.metrics.render_prometheus() == ""
        tel.close()

    def test_close_is_idempotent(self):
        stream = io.StringIO()
        tel = Telemetry.create(seed=1, log_stream=stream)
        tel.logger.event("one")
        tel.close()
        tel.close()
        assert not tel.logger.enabled
