"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def cli_artifacts(tmp_path_factory):
    """One small simulation driven through the CLI itself."""
    out = tmp_path_factory.mktemp("cli") / "run"
    code = main(
        [
            "simulate",
            str(out),
            "--preset",
            "small",
            "--seed",
            "9",
            "--job-scale",
            "0.01",
        ]
    )
    assert code == 0
    return out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "out"])
        assert args.preset == "small"
        assert args.seed == 2022
        assert args.job_scale is None

    def test_report_flags(self):
        args = build_parser().parse_args(
            ["report", "dir", "--compare", "--nodes", "8"]
        )
        assert args.compare
        assert args.nodes == 8

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "out", "--preset", "huge"])


class TestSimulate:
    def test_artifacts_written(self, cli_artifacts, capsys):
        assert (cli_artifacts / "sacct.csv").exists()
        assert (cli_artifacts / "inventory.json").exists()
        assert (cli_artifacts / "syslog").is_dir()


class TestPipeline:
    def test_pipeline_summary(self, cli_artifacts, capsys):
        code = main(["pipeline", str(cli_artifacts)])
        assert code == 0
        out = capsys.readouterr().out
        assert "coalesced errors" in out
        assert "excluded XID 13/43 lines" in out

    def test_custom_window(self, cli_artifacts, capsys):
        code = main(
            ["pipeline", str(cli_artifacts), "--coalesce-window", "120"]
        )
        assert code == 0
        assert "dt=120s" in capsys.readouterr().out


class TestReport:
    def test_report_prints_all_tables(self, cli_artifacts, capsys):
        code = main(["report", str(cli_artifacts), "--nodes", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Table II" in out
        assert "Table III" in out
        assert "Figure 2" in out
        assert "MMU Error" in out

    def test_report_with_compare(self, cli_artifacts, capsys):
        code = main(["report", str(cli_artifacts), "--nodes", "8", "--compare"])
        assert code == 0
        out = capsys.readouterr().out
        assert "paper comparisons" in out
        assert "within tolerance" in out


class TestSummary:
    def test_summary_renders(self, cli_artifacts, capsys):
        code = main(["summary", str(cli_artifacts), "--nodes", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "GPU RESILIENCE STUDY SUMMARY" in out
        assert "-- reliability --" in out
        assert "-- availability --" in out
        assert "weakest components" in out


class TestObservability:
    def test_telemetry_flags_parse_on_every_run_command(self):
        parser = build_parser()
        for command in ("simulate", "pipeline", "report"):
            args = parser.parse_args(
                [command, "d", "--metrics-out", "m.prom", "--trace-out",
                 "t.jsonl", "--log-json", "l.jsonl", "--obs"]
            )
            assert args.metrics_out == "m.prom"
            assert args.trace_out == "t.jsonl"
            assert args.log_json == "l.jsonl"
            assert args.obs

    @pytest.fixture(scope="class")
    def telemetry_artifacts(self, tmp_path_factory):
        """One telemetry-enabled simulation via the CLI."""
        root = tmp_path_factory.mktemp("cli_obs")
        code = main(
            [
                "simulate", str(root / "run"),
                "--preset", "small", "--seed", "5", "--job-scale", "0.005",
                "--metrics-out", str(root / "m.prom"),
                "--trace-out", str(root / "t.jsonl"),
                "--log-json", str(root / "l.jsonl"),
            ]
        )
        assert code == 0
        return root

    def test_simulate_writes_telemetry_artifacts(
        self, telemetry_artifacts, capsys
    ):
        prom = (telemetry_artifacts / "m.prom").read_text()
        assert "# TYPE faults_injected_total counter" in prom
        assert "sim_events_executed_total{" in prom
        trace_lines = (
            (telemetry_artifacts / "t.jsonl").read_text().splitlines()
        )
        names = {json.loads(line)["name"] for line in trace_lines}
        assert {"simulate", "build", "engine-run"} <= names
        log_lines = (telemetry_artifacts / "l.jsonl").read_text().splitlines()
        events = {json.loads(line)["event"] for line in log_lines}
        assert "simulate.done" in events

    def test_run_report_printed(self, telemetry_artifacts, capsys):
        out_dir = telemetry_artifacts / "run2"
        code = main(
            ["simulate", str(out_dir), "--preset", "small",
             "--seed", "5", "--job-scale", "0.005", "--obs"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "run report" in out
        assert "wall time per stage" in out
        assert "sim events/sec" in out
        assert "hottest subsystems" in out

    def test_obs_renders_metrics_table(self, telemetry_artifacts, capsys):
        code = main(["obs", str(telemetry_artifacts / "m.prom")])
        assert code == 0
        out = capsys.readouterr().out
        assert "faults_injected_total" in out
        assert "metric" in out and "value" in out

    def test_obs_json_snapshot_also_renders(
        self, telemetry_artifacts, capsys
    ):
        out_dir = telemetry_artifacts / "run3"
        code = main(
            ["simulate", str(out_dir), "--preset", "small",
             "--seed", "5", "--job-scale", "0.005",
             "--metrics-out", str(telemetry_artifacts / "m.json")]
        )
        assert code == 0
        capsys.readouterr()
        snapshot = json.loads((telemetry_artifacts / "m.json").read_text())
        assert snapshot["schema"] == "repro-metrics-v1"
        code = main(["obs", str(telemetry_artifacts / "m.json")])
        assert code == 0
        assert "faults_injected_total" in capsys.readouterr().out

    def test_obs_chrome_conversion(self, telemetry_artifacts, capsys):
        chrome = telemetry_artifacts / "t.chrome.json"
        code = main(
            ["obs", str(telemetry_artifacts / "t.jsonl"),
             "--chrome", str(chrome)]
        )
        assert code == 0
        doc = json.loads(chrome.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert all(e["ph"] == "X" for e in doc["traceEvents"])
        assert {e["name"] for e in doc["traceEvents"]} >= {
            "simulate", "engine-run"
        }

    def test_same_seed_cli_runs_identical_artifacts(
        self, telemetry_artifacts, tmp_path
    ):
        code = main(
            ["simulate", str(tmp_path / "again"), "--preset", "small",
             "--seed", "5", "--job-scale", "0.005",
             "--metrics-out", str(tmp_path / "m.prom"),
             "--trace-out", str(tmp_path / "t.jsonl")]
        )
        assert code == 0
        assert (tmp_path / "m.prom").read_text() == (
            telemetry_artifacts / "m.prom"
        ).read_text()
        assert (tmp_path / "t.jsonl").read_text() == (
            telemetry_artifacts / "t.jsonl"
        ).read_text()


class TestExitCodes:
    def test_mapping(self):
        from repro.cli import (
            EXIT_CONFIG_ERROR,
            EXIT_INTERRUPTED,
            EXIT_RUNTIME_ERROR,
            exit_code_for,
        )
        from repro.core.exceptions import (
            CampaignError,
            CheckpointError,
            ConfigurationError,
        )

        assert exit_code_for(ConfigurationError("x")) == EXIT_CONFIG_ERROR
        assert exit_code_for(CampaignError("x")) == EXIT_RUNTIME_ERROR
        assert exit_code_for(CheckpointError("x")) == EXIT_RUNTIME_ERROR
        assert exit_code_for(KeyboardInterrupt()) == EXIT_INTERRUPTED

    def test_unknown_exceptions_propagate(self):
        from repro.cli import exit_code_for

        with pytest.raises(ValueError):
            exit_code_for(ValueError("not ours"))

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "exit codes:" in out
        assert "partial campaign success" in out

    def test_config_error_exits_2(self, tmp_path, capsys):
        code = main(
            ["study", str(tmp_path / "camp"), "--seeds", "not-a-seed"]
        )
        assert code == 2
        assert "bad --seeds" in capsys.readouterr().err


class TestSeedParsing:
    def test_comma_list_and_range(self):
        from repro.cli import _parse_seeds

        assert _parse_seeds("7,8,9") == (7, 8, 9)
        assert _parse_seeds("7..10") == (7, 8, 9, 10)
        assert _parse_seeds(" 5 ") == (5,)

    def test_bad_specs_rejected(self):
        from repro.cli import _parse_seeds
        from repro.core.exceptions import ConfigurationError

        for bad in ("x", "9..7", "1,two", ""):
            with pytest.raises(ConfigurationError):
                _parse_seeds(bad)


class TestStudyCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["study", "camp"])
        assert args.preset == "small"
        assert args.seeds == "2022..2025"
        assert args.max_workers == 4
        assert args.max_attempts == 3
        assert not args.resume

    def test_campaign_via_cli(self, tmp_path, capsys):
        camp = tmp_path / "camp"
        code = main(
            [
                "study", str(camp),
                "--seeds", "7,8",
                "--job-scale", "0.01",
                "--pre-days", "1", "--op-days", "3",
                "--max-workers", "2",
                "--chaos-garbage", "1.0",
                "--chaos-strikes", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "coverage: 2/2 cells (100.0%)" in out
        assert (camp / "manifest.json").is_file()
        summary = json.loads(
            (camp / "campaign_summary.json").read_text("utf-8")
        )
        assert summary["coverage"]["fraction"] == 1.0
        # Chaos forced a retry on every cell.
        manifest = json.loads((camp / "manifest.json").read_text("utf-8"))
        assert all(
            cell["attempts"] == 2 for cell in manifest["cells"].values()
        )

    def test_partial_campaign_exits_4(self, tmp_path, capsys):
        # Chaos seed 0 deterministically sabotages seed-8's only
        # attempt and spares seed-7's (asserted in test_supervise's
        # plan-determinism coverage), so exactly one cell fails.
        code = main(
            [
                "study", str(tmp_path / "camp"),
                "--seeds", "7,8",
                "--job-scale", "0.01",
                "--pre-days", "1", "--op-days", "3",
                "--max-attempts", "1",
                "--chaos-garbage", "0.5",
                "--chaos-seed", "0",
                "--chaos-strikes", "9",
            ]
        )
        captured = capsys.readouterr()
        assert code == 4
        assert "degraded campaign" in captured.err
        assert "coverage: 1/2 cells" in captured.out

    def test_day_overrides_need_small_preset(self, tmp_path, capsys):
        code = main(
            ["study", str(tmp_path / "camp"), "--preset", "delta",
             "--pre-days", "1"]
        )
        assert code == 2
        assert "only apply to --preset small" in capsys.readouterr().err
