"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def cli_artifacts(tmp_path_factory):
    """One small simulation driven through the CLI itself."""
    out = tmp_path_factory.mktemp("cli") / "run"
    code = main(
        [
            "simulate",
            str(out),
            "--preset",
            "small",
            "--seed",
            "9",
            "--job-scale",
            "0.01",
        ]
    )
    assert code == 0
    return out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "out"])
        assert args.preset == "small"
        assert args.seed == 2022
        assert args.job_scale is None

    def test_report_flags(self):
        args = build_parser().parse_args(
            ["report", "dir", "--compare", "--nodes", "8"]
        )
        assert args.compare
        assert args.nodes == 8

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "out", "--preset", "huge"])


class TestSimulate:
    def test_artifacts_written(self, cli_artifacts, capsys):
        assert (cli_artifacts / "sacct.csv").exists()
        assert (cli_artifacts / "inventory.json").exists()
        assert (cli_artifacts / "syslog").is_dir()


class TestPipeline:
    def test_pipeline_summary(self, cli_artifacts, capsys):
        code = main(["pipeline", str(cli_artifacts)])
        assert code == 0
        out = capsys.readouterr().out
        assert "coalesced errors" in out
        assert "excluded XID 13/43 lines" in out

    def test_custom_window(self, cli_artifacts, capsys):
        code = main(
            ["pipeline", str(cli_artifacts), "--coalesce-window", "120"]
        )
        assert code == 0
        assert "dt=120s" in capsys.readouterr().out


class TestReport:
    def test_report_prints_all_tables(self, cli_artifacts, capsys):
        code = main(["report", str(cli_artifacts), "--nodes", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Table II" in out
        assert "Table III" in out
        assert "Figure 2" in out
        assert "MMU Error" in out

    def test_report_with_compare(self, cli_artifacts, capsys):
        code = main(["report", str(cli_artifacts), "--nodes", "8", "--compare"])
        assert code == 0
        out = capsys.readouterr().out
        assert "paper comparisons" in out
        assert "within tolerance" in out


class TestSummary:
    def test_summary_renders(self, cli_artifacts, capsys):
        code = main(["summary", str(cli_artifacts), "--nodes", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "GPU RESILIENCE STUDY SUMMARY" in out
        assert "-- reliability --" in out
        assert "-- availability --" in out
        assert "weakest components" in out
