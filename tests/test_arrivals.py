"""Unit + property tests for arrival processes (repro.faults.arrivals)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import CalibrationError
from repro.core.periods import StudyWindow
from repro.core.timebase import DAY, HOUR
from repro.faults.arrivals import (
    PersistentEpisodeProcess,
    PiecewisePoissonProcess,
    UtilizationCoupledProcess,
    merge_sorted,
    sample_poisson_arrivals,
)


class TestPoissonArrivals:
    def test_count_matches_rate(self, rng):
        times = sample_poisson_arrivals(rng, 10.0, 0.0, 1000 * HOUR)
        assert len(times) == pytest.approx(10_000, rel=0.05)

    def test_sorted_within_bounds(self, rng):
        times = sample_poisson_arrivals(rng, 5.0, 100.0, 100.0 + 10 * HOUR)
        assert np.all(np.diff(times) >= 0)
        assert times.min() >= 100.0
        assert times.max() < 100.0 + 10 * HOUR

    def test_zero_rate_empty(self, rng):
        assert sample_poisson_arrivals(rng, 0.0, 0.0, HOUR).size == 0

    def test_empty_interval(self, rng):
        assert sample_poisson_arrivals(rng, 5.0, 10.0, 10.0).size == 0

    def test_negative_rate_rejected(self, rng):
        with pytest.raises(CalibrationError, match="negative"):
            sample_poisson_arrivals(rng, -1.0, 0.0, HOUR)


class TestPiecewisePoisson:
    def test_per_period_rates(self, rng):
        window = StudyWindow.scaled(pre_days=50, op_days=50)
        process = PiecewisePoissonProcess(
            pre_op_rate_per_hour=1.0, op_rate_per_hour=10.0
        )
        times = process.sample(rng, window)
        boundary = window.operational.start
        pre = (times < boundary).sum()
        op = (times >= boundary).sum()
        assert pre == pytest.approx(1200, rel=0.15)
        assert op == pytest.approx(12_000, rel=0.05)

    def test_expected_counts(self):
        window = StudyWindow.scaled(pre_days=10, op_days=20)
        process = PiecewisePoissonProcess(2.0, 3.0)
        pre, op = process.expected_counts(window)
        assert pre == pytest.approx(2.0 * 240)
        assert op == pytest.approx(3.0 * 480)


class TestUtilizationCoupled:
    def test_rate_law(self):
        process = UtilizationCoupledProcess(
            base_rate_per_hour=10.0, floor=0.1, slope=1.0
        )
        assert process.rate_at(0.0) == pytest.approx(1.0)
        assert process.rate_at(0.9) == pytest.approx(10.0)

    def test_thinning_matches_profile(self, rng):
        window = StudyWindow.scaled(pre_days=40, op_days=40)
        process = UtilizationCoupledProcess(
            base_rate_per_hour=5.0, floor=0.1, slope=1.0
        )
        boundary = window.operational.start

        def utilization(t: float) -> float:
            return 0.1 if t < boundary else 0.8

        times = process.sample(rng, window, utilization)
        pre_rate = (times < boundary).sum() / window.pre_operational.duration_hours
        op_rate = (times >= boundary).sum() / window.operational.duration_hours
        assert pre_rate == pytest.approx(process.rate_at(0.1), rel=0.15)
        assert op_rate == pytest.approx(process.rate_at(0.8), rel=0.10)

    def test_validation(self):
        with pytest.raises(CalibrationError):
            UtilizationCoupledProcess(base_rate_per_hour=-1.0)
        with pytest.raises(CalibrationError):
            UtilizationCoupledProcess(base_rate_per_hour=1.0, floor=-0.5)


class TestPersistentEpisode:
    def test_expected_count_formula(self):
        process = PersistentEpisodeProcess(
            start=0.0,
            end=16 * DAY,
            gap_floor_seconds=30.0,
            mean_extra_seconds=5.53,
        )
        # Calibrated to the 38,900-error episode of Section IV(vi).
        assert process.expected_count == pytest.approx(38_900, rel=0.01)

    def test_sample_count_near_expectation(self, rng):
        process = PersistentEpisodeProcess(
            start=0.0, end=2 * DAY, gap_floor_seconds=30.0, mean_extra_seconds=5.53
        )
        times = process.sample(rng)
        assert len(times) == pytest.approx(process.expected_count, rel=0.02)

    def test_gaps_respect_floor(self, rng):
        process = PersistentEpisodeProcess(
            start=0.0, end=DAY, gap_floor_seconds=30.0, mean_extra_seconds=5.0
        )
        times = process.sample(rng)
        assert np.diff(times).min() >= 30.0

    def test_times_within_episode(self, rng):
        process = PersistentEpisodeProcess(
            start=100.0, end=100.0 + DAY, gap_floor_seconds=30.0
        )
        times = process.sample(rng)
        assert times.min() > 100.0
        assert times.max() < 100.0 + DAY

    def test_validation(self):
        with pytest.raises(CalibrationError):
            PersistentEpisodeProcess(start=10.0, end=10.0)
        with pytest.raises(CalibrationError):
            PersistentEpisodeProcess(start=0.0, end=1.0, gap_floor_seconds=-1.0)


class TestMergeSorted:
    def test_empty(self):
        assert merge_sorted([]).size == 0
        assert merge_sorted([np.empty(0)]).size == 0

    @given(
        st.lists(
            st.lists(
                st.floats(min_value=0, max_value=1e6),
                max_size=30,
            ),
            max_size=5,
        )
    )
    @settings(max_examples=50)
    def test_merge_is_sorted_and_complete(self, arrays):
        np_arrays = [np.sort(np.array(a, dtype=float)) for a in arrays]
        merged = merge_sorted(np_arrays)
        assert merged.size == sum(a.size for a in np_arrays)
        assert np.all(np.diff(merged) >= 0)
