"""SLOEngine: burn-rate math, multi-window policies, latch/re-arm.

All tests drive the engine with explicit ``now=`` timestamps (the
injectable-clock contract), so window arithmetic is deterministic —
the SLO analog of the alert engine's log-time rule.
"""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    BURN_POLICIES,
    BURN_WINDOWS,
    ServiceObjective,
    SLOEngine,
    default_slos,
)


def _availability(target=0.9):
    return ServiceObjective(
        name="avail",
        description="requests succeed",
        kind="availability",
        target=target,
        route="/v1/fleet",
    )


def _engine(target=0.9, registry=None):
    return SLOEngine(objectives=[_availability(target)], registry=registry)


class TestObjectiveValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ServiceObjective(
                name="x", description="", kind="throughput", target=0.9
            )

    def test_target_must_be_fraction(self):
        with pytest.raises(ValueError):
            ServiceObjective(
                name="x", description="", kind="availability", target=1.0
            )

    def test_latency_needs_threshold(self):
        with pytest.raises(ValueError):
            ServiceObjective(
                name="x", description="", kind="latency", target=0.9
            )

    def test_error_budget(self):
        assert _availability(0.999).error_budget == pytest.approx(0.001)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            SLOEngine(objectives=[_availability(), _availability()])


class TestDefaultSlos:
    def test_stock_objective_set(self):
        objectives = default_slos()
        names = {o.name for o in objectives}
        assert names == {
            "fleet-availability", "fleet-latency",
            "alerts-availability", "alerts-latency",
            "ingest-freshness",
        }
        freshness = next(o for o in objectives if o.kind == "freshness")
        assert freshness.threshold_seconds == 2.0


class TestClassification:
    def test_availability_good_bad(self):
        engine = _engine()
        engine.record_request("/v1/fleet", 200, 0.01, now=0.0)
        engine.record_request("/v1/fleet", 404, 0.01, now=1.0)  # still good
        engine.record_request("/v1/fleet", 500, 0.01, now=2.0)
        snapshot = engine.snapshot(now=3.0)
        objective = snapshot["objectives"][0]
        assert (objective["good"], objective["bad"]) == (2, 1)

    def test_route_filter(self):
        engine = _engine()
        engine.record_request("/v1/alerts", 500, 0.01, now=0.0)
        assert engine.snapshot(now=1.0)["objectives"][0]["events"] == 0

    def test_latency_classification(self):
        engine = SLOEngine(objectives=[ServiceObjective(
            name="lat", description="", kind="latency", target=0.5,
            threshold_seconds=0.25,
        )])
        engine.record_request("/x", 200, 0.1, now=0.0)   # good
        engine.record_request("/x", 200, 0.3, now=1.0)   # slow -> bad
        engine.record_request("/x", 503, 0.01, now=2.0)  # failed -> bad
        objective = engine.snapshot(now=3.0)["objectives"][0]
        assert (objective["good"], objective["bad"]) == (1, 2)

    def test_freshness_classification(self):
        engine = SLOEngine(objectives=[ServiceObjective(
            name="fresh", description="", kind="freshness", target=0.5,
            threshold_seconds=2.0,
        )])
        engine.record_freshness(1.0, now=0.0)
        engine.record_freshness(5.0, now=1.0)
        objective = engine.snapshot(now=2.0)["objectives"][0]
        assert (objective["good"], objective["bad"]) == (1, 1)
        # request traffic does not touch freshness objectives
        engine.record_request("/v1/fleet", 500, 0.01, now=2.0)
        assert engine.snapshot(now=3.0)["objectives"][0]["events"] == 2


class TestBurnRates:
    def test_burn_rate_value(self):
        # target 0.9 -> budget 0.1; half the events bad -> burn = 5.0.
        engine = _engine(target=0.9)
        for i in range(10):
            engine.record_request("/v1/fleet", 200, 0.01, now=float(i))
            engine.record_request("/v1/fleet", 500, 0.01, now=float(i))
        objective = engine.snapshot(now=20.0)["objectives"][0]
        for label, _ in BURN_WINDOWS:
            assert objective["burn_rates"][label] == pytest.approx(5.0)

    def test_windows_see_different_traffic(self):
        engine = _engine(target=0.9)
        # Old bad traffic outside 5m but inside 1h.
        for i in range(10):
            engine.record_request("/v1/fleet", 500, 0.01, now=600.0 + i)
        # Recent good traffic inside 5m.
        for i in range(10):
            engine.record_request("/v1/fleet", 200, 0.01, now=1500.0 + i)
        objective = engine.snapshot(now=1510.0)["objectives"][0]
        assert objective["burn_rates"]["5m"] == pytest.approx(0.0)
        assert objective["burn_rates"]["1h"] == pytest.approx(5.0)

    def test_empty_window_burns_zero(self):
        engine = _engine()
        assert all(
            rate == 0.0
            for rate in engine.snapshot(now=0.0)["objectives"][0][
                "burn_rates"
            ].values()
        )


class TestAlerting:
    def test_fast_policy_fires_once_and_latches(self):
        engine = _engine(target=0.95)  # budget 0.05: all-bad burns at 20x
        for i in range(50):
            engine.record_request("/v1/fleet", 500, 0.01, now=float(i))
        fired = engine.evaluate(now=50.0)
        assert [a.policy for a in fired] == ["fast", "slow"]
        assert fired[0].severity == "critical"
        assert "avail" in fired[0].message
        # Condition still true -> latched, no re-fire.
        assert engine.evaluate(now=51.0) == []
        assert engine.active_count() == 2

    def test_rearm_after_recovery(self):
        engine = _engine(target=0.95)
        for i in range(50):
            engine.record_request("/v1/fleet", 500, 0.01, now=float(i))
        assert len(engine.evaluate(now=50.0)) == 2
        # Seven hours later the bins have been evicted: burn 0, re-armed.
        assert engine.evaluate(now=7 * 3600.0) == []
        assert engine.active_count() == 0
        for i in range(50):
            engine.record_request(
                "/v1/fleet", 500, 0.01, now=7 * 3600.0 + i
            )
        refired = engine.evaluate(now=7 * 3600.0 + 60.0)
        assert [a.policy for a in refired] == ["fast", "slow"]
        assert len(engine.history) == 4

    def test_slow_but_not_fast(self):
        # Burn ~8x: above the slow threshold (6) and below fast (14.4).
        engine = _engine(target=0.9)
        for i in range(100):
            status = 500 if i % 5 < 4 else 200  # 80% bad -> burn 8.0
            engine.record_request("/v1/fleet", status, 0.01, now=float(i))
        fired = engine.evaluate(now=100.0)
        assert [a.policy for a in fired] == ["slow"]
        assert fired[0].severity == "warning"

    def test_policy_table_shape(self):
        names = [name for name, _, _, _ in BURN_POLICIES]
        assert names == ["fast", "slow"]


class TestMetricsPublication:
    def test_families_published(self):
        registry = MetricsRegistry(enabled=True)
        engine = _engine(target=0.95, registry=registry)
        for i in range(10):
            engine.record_request("/v1/fleet", 500, 0.01, now=float(i))
        engine.evaluate(now=10.0)
        values = {
            (s.name, tuple(sorted(s.labels.items()))): s.value
            for s in registry.samples(include_host=True)
        }
        assert values[("slo_compliance", (("slo", "avail"),))] == 0.0
        assert values[("slo_verdict", (("slo", "avail"),))] == 0.0
        assert (
            values[("slo_alerts_total", (("policy", "fast"), ("slo", "avail")))]
            == 1.0
        )
        burn = values[("slo_burn_rate", (("slo", "avail"), ("window", "5m")))]
        assert burn == pytest.approx(20.0)

    def test_host_domain_excluded_from_default_export(self):
        registry = MetricsRegistry(enabled=True)
        engine = _engine(registry=registry)
        engine.record_request("/v1/fleet", 200, 0.01, now=0.0)
        engine.evaluate(now=1.0)
        assert "slo_" not in registry.render_prometheus()
        assert "slo_" not in registry.to_json()
        assert any(
            s.name.startswith("slo_")
            for s in registry.samples(include_host=True)
        )


class TestViews:
    def test_verdicts(self):
        engine = SLOEngine(objectives=[
            _availability(target=0.9),
            ServiceObjective(
                name="fresh", description="", kind="freshness",
                target=0.9, threshold_seconds=2.0,
            ),
        ])
        assert engine.verdicts() == {"avail": "no_data", "fresh": "no_data"}
        engine.record_request("/v1/fleet", 200, 0.01, now=0.0)
        engine.record_freshness(10.0, now=0.0)
        assert engine.verdicts() == {"avail": "pass", "fresh": "fail"}

    def test_snapshot_schema(self):
        engine = _engine()
        engine.record_request("/v1/fleet", 200, 0.01, now=0.0)
        snapshot = engine.snapshot(now=1.0)
        assert snapshot["schema"] == "repro-slo-v1"
        assert set(snapshot["windows"]) == {"5m", "1h", "6h"}
        assert [p["name"] for p in snapshot["policies"]] == ["fast", "slow"]
        objective = snapshot["objectives"][0]
        for key in (
            "name", "description", "kind", "route", "target",
            "threshold_seconds", "events", "good", "bad", "compliance",
            "error_budget_spent", "burn_rates", "verdict", "alerting",
        ):
            assert key in objective
        json.dumps(snapshot)  # must be JSON-serializable as-is

    def test_budget_spent(self):
        engine = _engine(target=0.9)
        for i in range(9):
            engine.record_request("/v1/fleet", 200, 0.01, now=float(i))
        engine.record_request("/v1/fleet", 500, 0.01, now=9.0)
        objective = engine.snapshot(now=10.0)["objectives"][0]
        assert objective["compliance"] == pytest.approx(0.9)
        assert objective["error_budget_spent"] == pytest.approx(1.0)
        assert objective["verdict"] == "pass"  # >= target
