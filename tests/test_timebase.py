"""Unit tests for repro.core.timebase."""

from datetime import datetime, timezone

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import timebase


class TestEpochConversions:
    def test_epoch_is_january_2022(self):
        assert timebase.STUDY_EPOCH == datetime(2022, 1, 1, tzinfo=timezone.utc)

    def test_zero_maps_to_epoch(self):
        assert timebase.to_datetime(0.0) == timebase.STUDY_EPOCH

    def test_one_day_later(self):
        moment = timebase.to_datetime(timebase.DAY)
        assert moment == datetime(2022, 1, 2, tzinfo=timezone.utc)

    def test_from_datetime_inverts_to_datetime(self):
        instant = 1_234_567.25
        assert timebase.from_datetime(timebase.to_datetime(instant)) == pytest.approx(
            instant
        )

    def test_naive_datetime_treated_as_utc(self):
        naive = datetime(2022, 3, 1, 12, 0, 0)
        aware = datetime(2022, 3, 1, 12, 0, 0, tzinfo=timezone.utc)
        assert timebase.from_datetime(naive) == timebase.from_datetime(aware)

    @given(st.floats(min_value=0, max_value=200 * 86400.0))
    def test_roundtrip_over_window(self, instant):
        back = timebase.from_datetime(timebase.to_datetime(instant))
        assert back == pytest.approx(instant, abs=1e-3)


class TestUnits:
    def test_unit_relations(self):
        assert timebase.MINUTE == 60 * timebase.SECOND
        assert timebase.HOUR == 60 * timebase.MINUTE
        assert timebase.DAY == 24 * timebase.HOUR
        assert timebase.YEAR == 365 * timebase.DAY

    def test_hours_helper(self):
        assert timebase.hours(7200.0) == 2.0


class TestSyslogTimestamps:
    def test_format_includes_microseconds(self):
        text = timebase.format_syslog_timestamp(0.125)
        assert text == "2022-01-01T00:00:00.125000"

    def test_parse_inverts_format(self):
        instant = 86_400.0 * 17 + 3661.5
        text = timebase.format_syslog_timestamp(instant)
        assert timebase.parse_syslog_timestamp(text) == pytest.approx(instant)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            timebase.parse_syslog_timestamp("not-a-timestamp")


class TestSlurmTimestamps:
    def test_format_has_no_microseconds(self):
        text = timebase.format_slurm_timestamp(59.9)
        assert text == "2022-01-01T00:00:59"

    def test_parse_inverts_format_to_second(self):
        instant = 123_456.0
        text = timebase.format_slurm_timestamp(instant)
        assert timebase.parse_slurm_timestamp(text) == instant


class TestDayIndex:
    def test_first_day_is_zero(self):
        assert timebase.day_index(0.0) == 0
        assert timebase.day_index(86_399.999) == 0

    def test_day_boundary(self):
        assert timebase.day_index(86_400.0) == 1

    @given(st.integers(min_value=0, max_value=1200))
    def test_day_index_matches_division(self, day):
        assert timebase.day_index(day * timebase.DAY + 1.0) == day
