"""Meta-tests over the public API surface.

Checks the documentation contract (every public module, class, and
function carries a docstring) and that the package exports declared in
``__all__`` actually resolve.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.sim",
    "repro.cluster",
    "repro.gpu",
    "repro.faults",
    "repro.ops",
    "repro.slurm",
    "repro.workload",
    "repro.syslog",
    "repro.study",
    "repro.pipeline",
    "repro.stream",
    "repro.obs",
    "repro.loadgen",
    "repro.analysis",
    "repro.reporting",
    "repro.calibration",
]


def iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                yield importlib.import_module(f"{package_name}.{info.name}")


ALL_MODULES = list(iter_modules())


class TestDocstrings:
    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=lambda m: m.__name__
    )
    def test_module_docstring(self, module):
        assert module.__doc__, f"{module.__name__} lacks a module docstring"

    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=lambda m: m.__name__
    )
    def test_public_members_documented(self, module):
        undocumented = []
        for name, member in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(member) or inspect.isfunction(member)):
                continue
            if getattr(member, "__module__", None) != module.__name__:
                continue  # re-exports are documented at their home
            if not inspect.getdoc(member):
                undocumented.append(name)
            elif inspect.isclass(member):
                for method_name, method in vars(member).items():
                    if method_name.startswith("_"):
                        continue
                    if inspect.isfunction(method) and not inspect.getdoc(method):
                        undocumented.append(f"{name}.{method_name}")
        assert not undocumented, (
            f"{module.__name__}: undocumented public members: {undocumented}"
        )


class TestExports:
    @pytest.mark.parametrize(
        "module",
        [m for m in ALL_MODULES if hasattr(m, "__all__")],
        ids=lambda m: m.__name__,
    )
    def test_all_entries_resolve(self, module):
        for name in module.__all__:
            assert hasattr(module, name), f"{module.__name__}.__all__: {name}"

    def test_top_level_version(self):
        assert repro.__version__ == "1.0.0"
