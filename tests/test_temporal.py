"""Unit tests for temporal error characterization (repro.analysis.temporal)."""

import numpy as np
import pytest

from repro.analysis.temporal import (
    burstiness_by_class,
    hour_of_day_profile,
    inter_arrival_stats,
    monthly_error_series,
    trend_ratio,
)
from repro.core.periods import PeriodName, StudyWindow
from repro.core.records import ExtractedError
from repro.core.timebase import DAY, HOUR
from repro.core.xid import EventClass


@pytest.fixture()
def window():
    return StudyWindow.scaled(pre_days=30, op_days=90)


def error(time, event=EventClass.MMU_ERROR, node="gpua001", gpu=0):
    return ExtractedError(
        time=time, node=node, gpu_index=gpu, event_class=event, xid=31
    )


class TestMonthlySeries:
    def test_counts_per_month(self, window):
        errors = [error(5 * DAY), error(6 * DAY), error(45 * DAY)]
        starts, counts = monthly_error_series(errors, window)
        assert counts[0] == 2
        assert counts[1] == 1
        assert counts.sum() == 3
        assert starts[1] == 30.0

    def test_class_filter(self, window):
        errors = [
            error(5 * DAY),
            error(6 * DAY, event=EventClass.GSP_ERROR),
        ]
        _, counts = monthly_error_series(
            errors, window, event_class=EventClass.GSP_ERROR
        )
        assert counts.sum() == 1

    def test_out_of_window_ignored(self, window):
        errors = [error(window.end + DAY)]
        _, counts = monthly_error_series(errors, window)
        assert counts.sum() == 0


class TestInterArrival:
    def test_regular_arrivals_low_cv(self, window):
        errors = [error(i * HOUR) for i in range(200)]
        stats = inter_arrival_stats(errors, EventClass.MMU_ERROR)
        assert stats.mean_hours == pytest.approx(1.0)
        assert stats.cv == pytest.approx(0.0, abs=1e-9)
        assert stats.is_bursty is False
        # Regular arrivals are decisively non-exponential.
        assert stats.ks_pvalue < 0.01

    def test_poisson_arrivals_cv_near_one(self, window):
        rng = np.random.default_rng(4)
        times = np.cumsum(rng.exponential(3600.0, size=3000))
        errors = [error(float(t)) for t in times]
        stats = inter_arrival_stats(errors, EventClass.MMU_ERROR)
        assert stats.cv == pytest.approx(1.0, abs=0.08)
        assert stats.ks_pvalue > 0.01  # consistent with exponential

    def test_bursty_arrivals_high_cv(self, window):
        times = []
        for burst_start in range(0, 100):
            base = burst_start * DAY
            times.extend(base + np.arange(10) * 60.0)
        errors = [error(float(t)) for t in times]
        stats = inter_arrival_stats(errors, EventClass.MMU_ERROR)
        assert stats.cv > 2.0
        assert stats.is_bursty is True

    def test_too_few_samples(self, window):
        stats = inter_arrival_stats([error(0.0)], EventClass.MMU_ERROR)
        assert stats.count == 1
        assert stats.mean_hours is None
        assert stats.is_bursty is None

    def test_period_filter(self, window):
        errors = [error(i * HOUR) for i in range(10)]  # all pre-op
        stats = inter_arrival_stats(
            errors,
            EventClass.MMU_ERROR,
            period=PeriodName.OPERATIONAL,
            window=window,
        )
        assert stats.count == 0


class TestHourProfile:
    def test_profile_shape(self):
        errors = [error(3 * HOUR), error(DAY + 3 * HOUR), error(15 * HOUR)]
        profile = hour_of_day_profile(errors)
        assert profile.shape == (24,)
        assert profile[3] == 2
        assert profile[15] == 1
        assert profile.sum() == 3


class TestTrend:
    def test_degrading_class(self, window):
        # 30 pre-op errors in 30 days vs 900 op errors in 90 days:
        # 1/day -> 10/day = 10x degradation.
        errors = [error(i * DAY + 1.0) for i in range(30)]
        errors += [
            error(30 * DAY + i * (90 * DAY / 900)) for i in range(900)
        ]
        ratio = trend_ratio(errors, window, EventClass.MMU_ERROR)
        assert ratio == pytest.approx(10.0, rel=0.05)

    def test_no_pre_op_errors_returns_none(self, window):
        errors = [error(40 * DAY)]
        assert trend_ratio(errors, window, EventClass.MMU_ERROR) is None

    def test_burstiness_by_class_covers_present_classes(self, window):
        errors = [error(40 * DAY + i * HOUR) for i in range(20)]
        errors += [
            error(40 * DAY + i * HOUR, event=EventClass.GSP_ERROR)
            for i in range(20)
        ]
        table = burstiness_by_class(errors, window)
        assert set(table) == {EventClass.MMU_ERROR, EventClass.GSP_ERROR}
