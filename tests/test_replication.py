"""Tests for replicated studies (repro.analysis.replication)."""

import pytest

from repro import StudyConfig
from repro.analysis.replication import MetricSummary, ReplicatedStudy


class TestMetricSummary:
    def test_basic_statistics(self):
        summary = MetricSummary(name="x", values=(1.0, 2.0, 3.0))
        assert summary.n == 3
        assert summary.mean == pytest.approx(2.0)
        assert summary.std == pytest.approx(1.0)
        assert summary.ci_half_width == pytest.approx(1.96 / 3**0.5, rel=1e-6)
        assert summary.contains(2.5) is True
        assert summary.contains(10.0) is False

    def test_single_value_has_no_ci(self):
        summary = MetricSummary(name="x", values=(5.0,))
        assert summary.mean == 5.0
        assert summary.std is None
        assert summary.ci_low is None
        assert summary.contains(5.0) is None
        assert "n=1" in summary.render()

    def test_empty(self):
        summary = MetricSummary(name="x", values=())
        assert summary.mean is None
        assert "no data" in summary.render()

    def test_render_contains_ci(self):
        summary = MetricSummary(name="metric", values=(1.0, 2.0, 3.0, 4.0))
        text = summary.render()
        assert "metric:" in text
        assert "95% CI" in text


class TestReplicatedStudy:
    @pytest.fixture(scope="class")
    def summaries(self):
        config = StudyConfig.small(seed=5, job_scale=0.002, op_days=40)
        return ReplicatedStudy(config, replicates=3).run()

    def test_headline_metrics_present(self, summaries):
        for name in (
            "pre_op_per_node_mtbe_hours",
            "op_per_node_mtbe_hours",
            "memory_vs_hardware_ratio",
            "gsp_degradation_factor",
        ):
            assert name in summaries
            assert summaries[name].n >= 2

    def test_replicates_differ(self, summaries):
        # Independent seeds must not produce identical MTBE values.
        values = summaries["op_per_node_mtbe_hours"].values
        assert len(set(values)) > 1

    def test_degradation_direction_stable(self, summaries):
        # Every replicate shows op MTBE below pre-op MTBE (23% story).
        pre = summaries["pre_op_per_node_mtbe_hours"].values
        op = summaries["op_per_node_mtbe_hours"].values
        assert all(o < p for o, p in zip(op, pre))

    def test_render(self, summaries):
        config = StudyConfig.small(seed=5, job_scale=0.002, op_days=40)
        text = ReplicatedStudy(config, replicates=3).render(summaries)
        assert "replication report" in text
        assert "op_per_node_mtbe_hours" in text

    def test_invalid_replicate_count(self):
        with pytest.raises(ValueError):
            ReplicatedStudy(StudyConfig.small(), replicates=0)

    def test_custom_metrics_fn(self):
        config = StudyConfig.small(seed=5, job_scale=0.002, op_days=20)

        def count_metric(errors, window, node_count):
            return {"total_errors": float(len(errors))}

        summaries = ReplicatedStudy(
            config, replicates=2, metrics_fn=count_metric
        ).run()
        assert set(summaries) == {"total_errors"}
        assert all(v > 0 for v in summaries["total_errors"].values)
