"""Smoke tests over the example scripts.

Heavyweight examples are not executed here (the benchmark harness and
integration tests already cover the same code paths); these tests
verify every example imports cleanly, exposes a ``main`` entry point,
and parses ``--help`` without running a simulation — the failure mode
that silently rots example code.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

#: Examples that accept an ``argv`` parameter on main() and define
#: an argparse --help.
ARGPARSE_EXAMPLES = {
    "full_study",
    "checkpoint_planner",
    "what_if_gsp",
    "hopper_projection",
    "error_trends",
    "generate_experiments",
}


def load_example(path: Path):
    """Import an example script as a module without executing main()."""
    name = f"example_{path.stem}"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    # Examples guard execution behind __main__, so import is safe.
    spec.loader.exec_module(module)
    return module


class TestExamplesImport:
    def test_at_least_five_examples_ship(self):
        assert len(EXAMPLES) >= 5

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_imports_and_has_main(self, path):
        module = load_example(path)
        assert hasattr(module, "main"), f"{path.name} lacks main()"
        assert module.__doc__, f"{path.name} lacks a docstring"

    @pytest.mark.parametrize(
        "path",
        [p for p in EXAMPLES if p.stem in ARGPARSE_EXAMPLES],
        ids=lambda p: p.stem,
    )
    def test_help_exits_cleanly(self, path, capsys):
        module = load_example(path)
        with pytest.raises(SystemExit) as excinfo:
            module.main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "usage" in out.lower()
