"""Unit/integration tests for the fault injector (repro.faults.injector).

These drive the injector against a real engine/scheduler/ops stack on a
small cluster, with tightly scoped fault suites so each mechanism can
be observed in isolation.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.calibration.delta import delta_fault_suite, delta_memory_chain
from repro.cluster.topology import Cluster
from repro.core.periods import StudyWindow
from repro.core.timebase import DAY, HOUR
from repro.core.xid import EventClass
from repro.faults.config import (
    DefectiveEpisodeConfig,
    DuplicationConfig,
    EpisodeShape,
    FaultSuiteConfig,
    ImpactPolicy,
    KillScope,
    MemoryChainConfig,
    MemoryChainPeriodParams,
    NvlinkFaultConfig,
    SimpleFaultConfig,
    TargetPolicy,
    UtilizationCouplingConfig,
)
from repro.faults.injector import FaultInjector
from repro.gpu.memory import MemoryRecoveryConfig
from repro.gpu.nvlink import NvlinkConfig
from repro.ops.manager import OpsManager, OpsPolicy
from repro.ops.repair import RecoveryKind, RepairTimeConfig, RepairTimeModel
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.slurm.scheduler import Scheduler
from repro.syslog.records import LogBus


def empty_memory_chain() -> MemoryChainConfig:
    params = MemoryChainPeriodParams(
        uncorrectable_count=0.0,
        remap_failure_probability=0.0,
        recovery=MemoryRecoveryConfig(),
    )
    return MemoryChainConfig(pre_op=params, op=params)


def empty_nvlink() -> NvlinkFaultConfig:
    return NvlinkFaultConfig(pre_op_count=0.0, op_count=0.0)


def build_stack(suite: FaultSuiteConfig, window=None, seed=9):
    window = window or StudyWindow.scaled(pre_days=10, op_days=40)
    engine = Engine(horizon=window.end)
    cluster = Cluster.small(four_way=4, eight_way=0, cpu=0)
    rngs = RngRegistry(seed)
    log_bus = LogBus()
    scheduler = Scheduler(engine, cluster)
    ops = OpsManager(
        engine=engine,
        cluster=cluster,
        scheduler=scheduler,
        repair_model=RepairTimeModel(RepairTimeConfig(), rngs.stream("repair")),
        policy=OpsPolicy(),
        window=window,
        rng=rngs.stream("detect"),
        on_event=log_bus.emit,
    )
    injector = FaultInjector(
        engine=engine,
        cluster=cluster,
        scheduler=scheduler,
        ops=ops,
        log_bus=log_bus,
        suite=suite,
        window=window,
        rngs=rngs,
    )
    return engine, cluster, scheduler, ops, log_bus, injector


def single_fault_suite(cfg: SimpleFaultConfig, **kwargs) -> FaultSuiteConfig:
    return FaultSuiteConfig(
        simple_faults=(cfg,),
        memory_chain=empty_memory_chain(),
        nvlink=empty_nvlink(),
        duplication=DuplicationConfig(mean_extra_lines=1.0, max_spread_seconds=5.0),
        **kwargs,
    )


class TestSimpleFaultCounts:
    def test_logical_count_matches_calibration(self):
        cfg = SimpleFaultConfig(
            event_class=EventClass.MMU_ERROR,
            xid=31,
            pre_op_count=200,
            op_count=800,
            episode=EpisodeShape(mean_extra_errors=1.0, min_gap_seconds=60.0),
        )
        engine, *_, injector = build_stack(single_fault_suite(cfg))
        injector.arm()
        engine.run()
        window = StudyWindow.scaled(pre_days=10, op_days=40)
        pre = sum(
            1
            for e in injector.logical_events
            if e.time < window.operational.start
        )
        op = len(injector.logical_events) - pre
        assert pre == pytest.approx(200, rel=0.35)
        assert op == pytest.approx(800, rel=0.20)

    def test_fault_scale_thins_counts(self):
        cfg = SimpleFaultConfig(
            event_class=EventClass.MMU_ERROR,
            xid=31,
            pre_op_count=500,
            op_count=2000,
        )
        window = StudyWindow.scaled(pre_days=10, op_days=40)
        engine, cluster, scheduler, ops, bus, _ = build_stack(
            single_fault_suite(cfg), window
        )
        injector = FaultInjector(
            engine=engine,
            cluster=cluster,
            scheduler=scheduler,
            ops=ops,
            log_bus=bus,
            suite=single_fault_suite(cfg),
            window=window,
            rngs=RngRegistry(3),
            fault_scale=0.1,
        )
        injector.arm()
        engine.run()
        assert len(injector.logical_events) == pytest.approx(250, rel=0.3)

    def test_invalid_fault_scale(self):
        engine, cluster, scheduler, ops, bus, _ = build_stack(
            single_fault_suite(
                SimpleFaultConfig(
                    event_class=EventClass.MMU_ERROR, xid=31,
                    pre_op_count=1, op_count=1,
                )
            )
        )
        with pytest.raises(ValueError):
            FaultInjector(
                engine=engine,
                cluster=cluster,
                scheduler=scheduler,
                ops=ops,
                log_bus=bus,
                suite=single_fault_suite(
                    SimpleFaultConfig(
                        event_class=EventClass.MMU_ERROR, xid=31,
                        pre_op_count=1, op_count=1,
                    )
                ),
                window=StudyWindow.scaled(pre_days=1, op_days=1),
                rngs=RngRegistry(1),
                fault_scale=0.0,
            )


class TestEpisodes:
    def test_episode_repeats_share_episode_id(self):
        cfg = SimpleFaultConfig(
            event_class=EventClass.GSP_ERROR,
            xid=119,
            pre_op_count=0,
            op_count=300,
            episode=EpisodeShape(
                mean_extra_errors=9.0, mean_duration_hours=0.5, min_gap_seconds=60.0
            ),
        )
        engine, *_, injector = build_stack(single_fault_suite(cfg))
        injector.arm()
        engine.run()
        by_episode = {}
        for event in injector.logical_events:
            by_episode.setdefault(event.episode_id, []).append(event)
        sizes = [len(v) for v in by_episode.values()]
        assert np.mean(sizes) == pytest.approx(10.0, rel=0.35)
        # All events of an episode hit the same GPU.
        for events in by_episode.values():
            assert len({(e.node, e.gpu_index) for e in events}) == 1

    def test_repeats_respect_min_gap(self):
        cfg = SimpleFaultConfig(
            event_class=EventClass.GSP_ERROR,
            xid=119,
            pre_op_count=0,
            op_count=100,
            episode=EpisodeShape(
                mean_extra_errors=5.0, mean_duration_hours=0.2, min_gap_seconds=90.0
            ),
        )
        engine, *_, injector = build_stack(single_fault_suite(cfg))
        injector.arm()
        engine.run()
        by_episode = {}
        for event in injector.logical_events:
            by_episode.setdefault(event.episode_id, []).append(event.time)
        for times in by_episode.values():
            gaps = np.diff(sorted(times))
            if gaps.size:
                assert gaps.min() >= 89.9

    def test_paired_xid_split(self):
        cfg = SimpleFaultConfig(
            event_class=EventClass.GSP_ERROR,
            xid=119,
            pre_op_count=500,
            op_count=2000,
        )
        engine, *_, injector = build_stack(single_fault_suite(cfg))
        injector.arm()
        engine.run()
        codes = [e.xid for e in injector.logical_events]
        share_119 = codes.count(119) / len(codes)
        assert share_119 == pytest.approx(0.8, abs=0.05)
        assert set(codes) == {119, 120}


class TestPropagation:
    def test_pmu_triggers_correlated_mmu(self):
        pmu = SimpleFaultConfig(
            event_class=EventClass.PMU_SPI_ERROR,
            xid=122,
            pre_op_count=0,
            op_count=200,
            impact=ImpactPolicy(
                propagate_mmu_probability=1.0, propagate_delay_mean_s=60.0
            ),
        )
        mmu = SimpleFaultConfig(
            event_class=EventClass.MMU_ERROR,
            xid=31,
            pre_op_count=0,
            op_count=0,  # only propagated MMU errors occur
        )
        suite = FaultSuiteConfig(
            simple_faults=(pmu, mmu),
            memory_chain=empty_memory_chain(),
            nvlink=empty_nvlink(),
        )
        engine, *_, injector = build_stack(suite)
        injector.arm()
        engine.run()
        pmu_events = [
            e for e in injector.logical_events
            if e.event_class is EventClass.PMU_SPI_ERROR
        ]
        mmu_events = [
            e for e in injector.logical_events
            if e.event_class is EventClass.MMU_ERROR
        ]
        assert len(mmu_events) == pytest.approx(len(pmu_events), rel=0.15)
        # Propagated MMU errors land on the same GPU as some PMU error.
        pmu_gpus = {(e.node, e.gpu_index) for e in pmu_events}
        on_pmu_gpu = sum(
            1 for e in mmu_events if (e.node, e.gpu_index) in pmu_gpus
        )
        assert on_pmu_gpu / max(len(mmu_events), 1) > 0.95


class TestMemoryChain:
    def test_chain_event_composition(self):
        params_op = MemoryChainPeriodParams(
            uncorrectable_count=400.0,
            remap_failure_probability=0.25,
            recovery=MemoryRecoveryConfig(
                dbe_xid_probability=0.0,
                containment_success_probability=1.0,
                active_touch_probability=0.0,
            ),
        )
        params_pre = replace(params_op, uncorrectable_count=0.0)
        suite = FaultSuiteConfig(
            simple_faults=(),
            memory_chain=MemoryChainConfig(pre_op=params_pre, op=params_op),
            nvlink=empty_nvlink(),
        )
        engine, *_, injector = build_stack(suite)
        injector.arm()
        engine.run()
        counts = {}
        for event in injector.logical_events:
            counts[event.event_class] = counts.get(event.event_class, 0) + 1
        uncorrectable = counts.get(EventClass.UNCORRECTABLE_ECC, 0)
        rre = counts.get(EventClass.ROW_REMAP_EVENT, 0)
        rrf = counts.get(EventClass.ROW_REMAP_FAILURE, 0)
        assert uncorrectable == pytest.approx(400, rel=0.2)
        assert rre + rrf == uncorrectable
        assert rrf / uncorrectable == pytest.approx(0.25, abs=0.07)

    def test_rrf_repeat_offender_replaced(self):
        # With high remap-failure probability one unit will eventually
        # log two RRFs and be swapped by the SRE policy.
        params = MemoryChainPeriodParams(
            uncorrectable_count=600.0,
            remap_failure_probability=0.9,
            recovery=MemoryRecoveryConfig(active_touch_probability=0.0),
        )
        suite = FaultSuiteConfig(
            simple_faults=(),
            memory_chain=MemoryChainConfig(
                pre_op=replace(params, uncorrectable_count=0.0), op=params
            ),
            nvlink=empty_nvlink(),
        )
        engine, cluster, scheduler, ops, *_ , injector = build_stack(suite)
        injector.arm()
        engine.run()
        assert any(r.gpu_replaced for r in ops.downtime_records)


class TestDefectiveEpisode:
    def test_episode_volume_and_location(self):
        episode = DefectiveEpisodeConfig(
            start_day=2.0, end_day=4.0, node_ordinal=1, gpu_index=2
        )
        suite = FaultSuiteConfig(
            simple_faults=(),
            memory_chain=empty_memory_chain(),
            nvlink=empty_nvlink(),
            defective_episode=episode,
        )
        engine, *_, injector = build_stack(suite)
        injector.arm()
        engine.run()
        events = injector.logical_events
        assert len(events) == pytest.approx(episode.expected_logical_errors, rel=0.05)
        assert all(e.event_class is EventClass.UNCONTAINED_MEMORY_ERROR for e in events)
        assert len({(e.node, e.gpu_index) for e in events}) == 1
        assert events[0].gpu_index == 2

    def test_episode_gpu_swapped_at_discovery(self):
        episode = DefectiveEpisodeConfig(
            start_day=2.0, end_day=3.0, node_ordinal=0, gpu_index=1
        )
        suite = FaultSuiteConfig(
            simple_faults=(),
            memory_chain=empty_memory_chain(),
            nvlink=empty_nvlink(),
            defective_episode=episode,
        )
        engine, cluster, _, ops, *_unused, injector = build_stack(suite)
        injector.arm()
        engine.run()
        assert any(r.gpu_replaced for r in ops.downtime_records)
        node = cluster.gpu_nodes()[0]
        assert node.gpu(1).serial != f"{node.name}-u1-r0"


class TestUtilizationCoupling:
    def test_coupling_derives_pre_op_rate(self):
        coupling = UtilizationCouplingConfig(
            coupled_classes=(EventClass.GSP_ERROR,)
        )
        cfg = SimpleFaultConfig(
            event_class=EventClass.GSP_ERROR,
            xid=119,
            pre_op_count=0,  # ignored under coupling
            op_count=4000,
        )
        suite = single_fault_suite(cfg, utilization_coupling=coupling)
        engine, *_, injector = build_stack(suite)
        injector.arm()
        engine.run()
        window = StudyWindow.scaled(pre_days=10, op_days=40)
        pre = sum(
            1 for e in injector.logical_events
            if e.time < window.operational.start
        )
        op = len(injector.logical_events) - pre
        pre_rate = pre / window.pre_operational.duration_hours
        op_rate = op / window.operational.duration_hours
        # The utilization law implies a ~5.6x rate ratio.
        assert op_rate / pre_rate == pytest.approx(5.6, rel=0.30)
