"""Unit tests for availability analysis (repro.analysis.availability)."""

import pytest

from repro.analysis.availability import AvailabilityAnalysis
from repro.core.periods import PeriodName, StudyWindow
from repro.core.records import DowntimeRecord
from repro.core.timebase import DAY, HOUR
from repro.core.xid import EventClass


@pytest.fixture()
def window():
    return StudyWindow.scaled(pre_days=10, op_days=40)


OP0 = 10 * DAY


def episode(start, hours, node="gpua001", replaced=False):
    return DowntimeRecord(
        node=node,
        start=start,
        end=start + hours * HOUR,
        cause=EventClass.GSP_ERROR,
        gpu_replaced=replaced,
    )


class TestDistribution:
    def test_histogram_counts(self, window):
        episodes = [
            episode(OP0 + i * DAY, h)
            for i, h in enumerate([0.1, 0.3, 0.6, 0.9, 2.5, 30.0])
        ]
        dist = AvailabilityAnalysis(episodes, window, node_count=10).distribution(
            bin_edges_hours=(0.0, 0.5, 1.0, 3.0, 24.0)
        )
        # bins: [0,.5)=2, [.5,1)=2, [1,3)=1, [3,24)=0, overflow >=24: 1
        assert dist.counts == (2, 2, 1, 0, 1)
        assert dist.episodes == 6
        assert sum(dist.fractions()) == pytest.approx(1.0)

    def test_summary_statistics(self, window):
        episodes = [episode(OP0 + i * DAY, h) for i, h in enumerate([1.0, 2.0, 3.0])]
        dist = AvailabilityAnalysis(episodes, window, node_count=10).distribution()
        assert dist.mean_hours == pytest.approx(2.0)
        assert dist.p50_hours == pytest.approx(2.0)

    def test_empty_distribution(self, window):
        dist = AvailabilityAnalysis([], window, node_count=10).distribution()
        assert dist.episodes == 0
        assert dist.mean_hours is None
        assert all(c == 0 for c in dist.counts)
        assert all(f == 0.0 for f in dist.fractions())

    def test_pre_op_episodes_filtered(self, window):
        episodes = [episode(DAY, 1.0), episode(OP0 + DAY, 1.0)]
        analysis = AvailabilityAnalysis(episodes, window, node_count=10)
        assert len(analysis.episodes) == 1


class TestReport:
    def test_mttr_and_downtime(self, window):
        episodes = [episode(OP0 + i * DAY, 1.0) for i in range(10)]
        report = AvailabilityAnalysis(episodes, window, node_count=10).report(
            per_node_mtbe_hours=199.0
        )
        assert report.mttr_hours == pytest.approx(1.0)
        assert report.downtime_node_hours == pytest.approx(10.0)
        assert report.episodes == 10

    def test_availability_formula(self, window):
        episodes = [episode(OP0 + DAY, 0.88)]
        report = AvailabilityAnalysis(episodes, window, node_count=106).report(
            per_node_mtbe_hours=162.0
        )
        assert report.availability_formula == pytest.approx(
            162.0 / (162.0 + 0.88)
        )
        # Paper: 99.5% availability, ~7 minutes/day downtime.
        assert report.availability_formula == pytest.approx(0.995, abs=0.001)
        assert report.downtime_minutes_per_day == pytest.approx(7.0, abs=1.0)

    def test_direct_availability(self, window):
        # 96 node-hours of downtime over 10 nodes x 960 hours.
        episodes = [episode(OP0 + i * DAY, 9.6, node=f"gpua{i:03d}") for i in range(10)]
        report = AvailabilityAnalysis(episodes, window, node_count=10).report(None)
        assert report.availability_direct == pytest.approx(1 - 96 / 9600)
        assert report.availability_formula is None

    def test_replacements_counted(self, window):
        episodes = [
            episode(OP0 + DAY, 1.0),
            episode(OP0 + 2 * DAY, 12.0, replaced=True),
        ]
        report = AvailabilityAnalysis(episodes, window, node_count=10).report(None)
        assert report.replacements == 1

    def test_empty_report(self, window):
        report = AvailabilityAnalysis([], window, node_count=10).report(100.0)
        assert report.mttr_hours is None
        assert report.downtime_node_hours == 0.0
        assert report.availability_direct == 1.0
