"""Unit tests for downtime extraction from logs (repro.pipeline.downtime)."""

import pytest

from repro.core.xid import EventClass
from repro.pipeline.downtime import DowntimeExtractor, extract_downtime
from repro.syslog.reader import RawLine
from repro.syslog.records import LogRecord
from repro.syslog.writer import write_day_partitioned


def out_line(time, node="gpua001", cause="gsp_error", kind="reboot"):
    return RawLine(
        time=time,
        host=node,
        message=f"healthcheck: node {node} out of service cause={cause} kind={kind}",
    )


def return_line(time, node="gpua001", swap=False):
    suffix = " after gpu swap" if swap else ""
    return RawLine(
        time=time,
        host=node,
        message=f"healthcheck: node {node} returned to service{suffix}",
    )


class TestEpisodePairing:
    def test_basic_episode(self):
        extractor = DowntimeExtractor()
        extractor.feed(out_line(100.0))
        extractor.feed(return_line(3700.0))
        [record] = extractor.finish()
        assert record.node == "gpua001"
        assert record.duration == pytest.approx(3600.0)
        assert record.cause is EventClass.GSP_ERROR
        assert not record.gpu_replaced

    def test_swap_flag_parsed(self):
        extractor = DowntimeExtractor()
        extractor.feed(out_line(0.0))
        extractor.feed(return_line(100.0, swap=True))
        [record] = extractor.finish()
        assert record.gpu_replaced

    def test_interleaved_nodes(self):
        extractor = DowntimeExtractor()
        extractor.feed(out_line(0.0, node="gpua001"))
        extractor.feed(out_line(10.0, node="gpua002", cause="mmu_error"))
        extractor.feed(return_line(50.0, node="gpua002"))
        extractor.feed(return_line(100.0, node="gpua001"))
        records = extractor.finish()
        assert len(records) == 2
        by_node = {r.node: r for r in records}
        assert by_node["gpua002"].cause is EventClass.MMU_ERROR
        assert by_node["gpua001"].duration == pytest.approx(100.0)

    def test_unmatched_return_counted(self):
        extractor = DowntimeExtractor()
        extractor.feed(return_line(5.0))
        assert extractor.finish() == []
        assert extractor.stats.unmatched_returns == 1

    def test_dangling_outage_counted(self):
        extractor = DowntimeExtractor()
        extractor.feed(out_line(5.0))
        assert extractor.finish() == []
        assert extractor.stats.dangling_outages == 1

    def test_unknown_cause_tolerated(self):
        extractor = DowntimeExtractor()
        extractor.feed(out_line(0.0, cause="mystery_cause"))
        extractor.feed(return_line(10.0))
        [record] = extractor.finish()
        assert record.cause is EventClass.UNCONTAINED_MEMORY_ERROR

    def test_irrelevant_lines_ignored(self):
        extractor = DowntimeExtractor()
        extractor.feed(
            RawLine(time=0.0, host="gpua001", message="kernel: NVRM: Xid ...")
        )
        assert extractor.finish() == []


class TestDirectoryExtraction:
    def test_extract_downtime_over_files(self, tmp_path):
        records = [
            LogRecord(
                time=100.0,
                host="gpua001",
                message="healthcheck: node gpua001 out of service cause=gsp_error kind=reboot",
            ),
            LogRecord(
                time=90_000.0,
                host="gpua001",
                message="healthcheck: node gpua001 returned to service",
            ),
        ]
        write_day_partitioned(tmp_path, records)
        episodes = extract_downtime(tmp_path)
        assert len(episodes) == 1
        assert episodes[0].duration == pytest.approx(89_900.0)
