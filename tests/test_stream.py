"""Unit tests for the live fleet-health service (repro.stream)."""

import json
import random
import urllib.request
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.records import ExtractedError
from repro.core.xid import EventClass
from repro.pipeline.coalesce import (
    StreamingCoalescer,
    WindowMode,
    coalesce,
)
from repro.pipeline.extract import ErrorHit
from repro.stream import (
    AlertEngine,
    AlertRule,
    DirectoryFollower,
    FleetEstimators,
    FleetHealthServer,
    StreamService,
    json_route,
)
from repro.stream.follow import _split_complete_lines
from repro.syslog.quarantine import (
    FILE_DUPLICATE_DAY,
    FILE_LATE_DAY,
    Quarantine,
)


class TestSplitCompleteLines:
    def test_newline_terminated(self):
        lines, tail = _split_complete_lines(b"a\nbb\nccc")
        assert lines == [(b"a", 2), (b"bb", 3)]
        assert tail == b"ccc"

    def test_crlf_and_lone_cr(self):
        lines, tail = _split_complete_lines(b"a\r\nb\rc\n")
        assert [payload for payload, _ in lines] == [b"a", b"b", b"c"]
        assert sum(n for _, n in lines) == 7
        assert tail == b""

    def test_trailing_cr_held_until_final(self):
        lines, tail = _split_complete_lines(b"a\r")
        assert lines == []
        assert tail == b"a\r"
        lines, tail = _split_complete_lines(b"a\r", final=True)
        assert lines == [(b"a", 2)]
        assert tail == b""

    def test_consumed_bytes_cover_buffer(self):
        buf = b"one\r\ntwo\nthree\rfour"
        lines, tail = _split_complete_lines(buf)
        assert sum(n for _, n in lines) + len(tail) == len(buf)


def _write_day(path: Path, lines):
    path.write_text("".join(line + "\n" for line in lines), encoding="utf-8")


class TestDirectoryFollower:
    def test_incremental_appends_deliver_each_line_once(self, tmp_path):
        follower = DirectoryFollower(tmp_path)
        day = tmp_path / "syslog-2022-01-01.log"
        seen = []
        with open(day, "w") as fh:
            fh.write("alpha\nbet")
            fh.flush()
            follower.poll(seen.append)
            assert seen == ["alpha"]
            fh.write("a\ngamma\n")
            fh.flush()
            follower.poll(seen.append)
        assert seen == ["alpha", "beta", "gamma"]

    def test_rotation_finalizes_previous_day(self, tmp_path):
        follower = DirectoryFollower(tmp_path)
        (tmp_path / "syslog-2022-01-01.log").write_text("a\nunterminated")
        seen = []
        follower.poll(seen.append)
        assert seen == ["a"]  # tail waits for more bytes
        _write_day(tmp_path / "syslog-2022-01-02.log", ["b"])
        follower.poll(seen.append)
        assert seen == ["a", "unterminated", "b"]
        assert follower.stats.files_finalized == 1

    def test_final_drain_flushes_tail(self, tmp_path):
        follower = DirectoryFollower(tmp_path)
        (tmp_path / "syslog-2022-01-01.log").write_text("x\ny")
        seen = []
        follower.poll(seen.append, final=True)
        assert seen == ["x", "y"]

    def test_duplicate_day_single_incident(self, tmp_path):
        import gzip

        quarantine = Quarantine()
        follower = DirectoryFollower(tmp_path, quarantine)
        _write_day(tmp_path / "syslog-2022-01-01.log", ["plain"])
        with gzip.open(tmp_path / "syslog-2022-01-01.log.gz", "wt") as fh:
            fh.write("gzipped\n")
        seen = []
        follower.poll(seen.append, final=True)
        follower.poll(seen.append, final=True)
        assert seen == ["plain"]  # plain form wins
        assert quarantine.file_incidents[FILE_DUPLICATE_DAY] == 1

    def test_gz_first_then_plain_switches_to_plain(self, tmp_path):
        import gzip

        quarantine = Quarantine()
        follower = DirectoryFollower(tmp_path, quarantine)
        with gzip.open(tmp_path / "syslog-2022-01-01.log.gz", "wt") as fh:
            fh.write("gz form\n")
        seen = []
        follower.poll(seen.append)  # gz held: no successor day yet
        assert seen == []
        _write_day(tmp_path / "syslog-2022-01-01.log", ["plain form"])
        _write_day(tmp_path / "syslog-2022-01-02.log", ["next"])
        follower.poll(seen.append, final=True)
        assert seen == ["plain form", "next"]
        assert quarantine.file_incidents[FILE_DUPLICATE_DAY] == 1

    def test_late_day_skipped_with_incident(self, tmp_path):
        quarantine = Quarantine()
        follower = DirectoryFollower(tmp_path, quarantine)
        _write_day(tmp_path / "syslog-2022-01-05.log", ["now"])
        seen = []
        follower.poll(seen.append)
        _write_day(tmp_path / "syslog-2022-01-03.log", ["too late"])
        follower.poll(seen.append, final=True)
        assert "too late" not in seen
        assert quarantine.file_incidents[FILE_LATE_DAY] == 1
        assert follower.day_stems() == ["syslog-2022-01-05"]

    def test_state_restore_resumes_at_line_boundary(self, tmp_path):
        day = tmp_path / "syslog-2022-01-01.log"
        follower = DirectoryFollower(tmp_path)
        seen = []
        with open(day, "w") as fh:
            fh.write("one\ntwo\nthr")
            fh.flush()
            follower.poll(seen.append)
            resumed = DirectoryFollower.restore(tmp_path, follower.state())
            fh.write("ee\n")
            fh.flush()
        resumed.poll(seen.append, final=True)
        assert seen == ["one", "two", "three"]


def _hit(time, node="gpua001", gpu=0, cls=EventClass.MMU_ERROR, xid=31):
    return ErrorHit(
        time=time,
        node=node,
        gpu_index=gpu,
        pci_address="0000:07:00",
        event_class=cls,
        xid=xid,
    )


class TestStreamingCoalescer:
    def test_matches_batch_on_simple_sequence(self):
        hits = [_hit(0.0), _hit(10.0), _hit(45.0), _hit(100.0, node="gpua002")]
        streaming = StreamingCoalescer(30.0)
        for hit in hits:
            streaming.push(hit)
        streaming.drain()
        assert streaming.errors() == coalesce(hits, 30.0)

    def test_eviction_preserves_batch_order(self):
        # Two keys completing at the same first-occurrence time: batch
        # order depends on push/flush ranks, which eviction must keep.
        hits = [
            _hit(0.0, node="gpua001"),
            _hit(0.0, node="gpua002"),
            _hit(500.0, node="gpua001"),
            _hit(500.0, node="gpua002"),
        ]
        streaming = StreamingCoalescer(30.0)
        for hit in hits:
            streaming.push(hit)
            streaming.evict(hit.time)
        streaming.drain()
        assert streaming.errors() == coalesce(hits, 30.0)

    @pytest.mark.parametrize("mode", [WindowMode.TUMBLING, WindowMode.SLIDING])
    @pytest.mark.parametrize("seed", range(10))
    def test_property_streaming_equals_batch(self, seed, mode):
        rng = random.Random(seed)
        window = 30.0
        nodes = ["gpua001", "gpua002", "gpua003"]
        classes = [
            EventClass.MMU_ERROR,
            EventClass.DBE,
            EventClass.NVLINK_ERROR,
        ]
        time = 0.0
        hits = []
        for _ in range(200):
            # Quantized steps force equal-time ties and same-boundary
            # collisions — the adversarial cases for eviction ranks.
            time += rng.choice([0.0, window / 3, window / 3, window * 1.5])
            hits.append(
                _hit(
                    time,
                    node=rng.choice(nodes),
                    gpu=rng.choice([0, 1, None]),
                    cls=rng.choice(classes),
                )
            )
        streaming = StreamingCoalescer(window, mode)
        for i, hit in enumerate(hits):
            streaming.push(hit)
            streaming.evict(hit.time)
            if i % 37 == 0:  # checkpoint round-trips mid-stream
                streaming = StreamingCoalescer.from_state(streaming.to_state())
        streaming.drain()
        assert streaming.errors() == coalesce(hits, window, mode)

    def test_rejects_out_of_order_push(self):
        streaming = StreamingCoalescer(30.0)
        streaming.push(_hit(100.0))
        with pytest.raises(ValueError):
            streaming.push(_hit(50.0))

    def test_drain_is_idempotent(self):
        streaming = StreamingCoalescer(30.0)
        streaming.push(_hit(0.0))
        first = streaming.drain()
        assert len(first) == 1
        assert streaming.drain() == []


def _error(time, node="gpua001", gpu=0, cls=EventClass.MMU_ERROR, xid=31):
    return ExtractedError(
        time=time,
        node=node,
        gpu_index=gpu,
        event_class=cls,
        xid=xid,
        raw_line_count=1,
    )


class TestFleetEstimators:
    def test_rolling_window_evicts_by_log_time(self):
        est = FleetEstimators(horizons=(3600.0,))
        est.observe_error(_error(0.0))
        est.observe_error(_error(1800.0))
        est.advance(1800.0)
        assert est.rolling[0].summary()["count"] == 2
        est.advance(3700.0)
        rolling = est.rolling[0].summary()
        assert rolling["count"] == 1
        assert rolling["system_mtbe_hours"] == 1.0

    def test_top_nodes_and_units(self):
        est = FleetEstimators()
        for _ in range(3):
            est.observe_error(_error(0.0, node="gpua002", gpu=1))
        est.observe_error(_error(0.0, node="gpua001"))
        assert est.top_nodes(1) == [("gpua002", 3)]
        assert est.top_units(1) == [("gpua002", 1, 3)]

    def test_snapshot_shape(self):
        est = FleetEstimators()
        est.observe_error(_error(10.0))
        est.advance(3600.0)
        snap = est.snapshot()
        assert snap["errors_total"] == 1
        assert snap["per_class"] == {"mmu_error": 1}
        assert snap["first_error_time"] == 10.0
        assert len(snap["rolling"]) == 3


class TestAlertEngine:
    def test_xid79_fires_once_and_rearms(self):
        engine = AlertEngine()
        engine.observe_error(_error(0.0, cls=EventClass.FALLEN_OFF_BUS, xid=79))
        fired = engine.evaluate(0.0)
        assert [a.rule for a in fired] == ["xid79_fallen_off_bus"]
        assert fired[0].severity == "critical"
        assert fired[0].node == "gpua001"
        # Latched: no refire while the condition still holds.
        assert engine.evaluate(3600.0) == []
        # Past the 24h horizon the window drains and the rule re-arms.
        assert engine.evaluate(90000.0) == []
        engine.observe_error(
            _error(100000.0, cls=EventClass.FALLEN_OFF_BUS, xid=79)
        )
        assert [a.rule for a in engine.evaluate(100000.0)] == [
            "xid79_fallen_off_bus"
        ]

    def test_node_burst_threshold(self):
        engine = AlertEngine()
        for i in range(4):
            engine.observe_error(_error(float(i)))
        assert engine.evaluate(4.0) == []
        engine.observe_error(_error(5.0))
        fired = engine.evaluate(5.0)
        assert [a.rule for a in fired] == ["node_error_burst"]
        assert fired[0].count == 5

    def test_custom_rule_scoping(self):
        rule = AlertRule(
            name="any_two_fleet",
            description="two errors fleet-wide",
            severity="warning",
            scope="fleet",
            threshold=2,
            horizon_seconds=3600.0,
        )
        engine = AlertEngine([rule])
        engine.observe_error(_error(0.0, node="gpua001"))
        engine.observe_error(_error(1.0, node="gpua009"))
        fired = engine.evaluate(1.0)
        assert [a.rule for a in fired] == ["any_two_fleet"]
        assert fired[0].node is None

    def test_history_and_snapshot(self):
        engine = AlertEngine()
        engine.observe_error(_error(0.0, cls=EventClass.FALLEN_OFF_BUS, xid=79))
        engine.evaluate(0.0)
        snap = engine.snapshot()
        assert snap["active"] == 1
        assert len(snap["history"]) == 1
        assert {r["name"] for r in snap["rules"]} >= {"xid79_fallen_off_bus"}


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, resp.read().decode("utf-8")


class TestFleetHealthServer:
    def test_routes_and_404(self):
        server = FleetHealthServer(
            {"/ping": json_route(lambda: {"pong": True})}, port=0
        )
        server.start()
        try:
            status, body = _get(f"http://127.0.0.1:{server.port}/ping")
            assert status == 200
            assert json.loads(body) == {"pong": True}
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"http://127.0.0.1:{server.port}/nope")
            assert err.value.code == 404
        finally:
            server.stop()

    def test_request_id_header_and_head(self):
        server = FleetHealthServer(
            {"/ping": json_route(lambda: {"pong": True})}, port=0
        )
        server.start()
        try:
            url = f"http://127.0.0.1:{server.port}/ping"
            with urllib.request.urlopen(url, timeout=10) as resp:
                rid = resp.headers["X-Request-Id"]
                assert rid.startswith("req-")
            head = urllib.request.Request(url, method="HEAD")
            with urllib.request.urlopen(head, timeout=10) as resp:
                assert resp.status == 200
                body = resp.read()
                assert body == b""
                assert int(resp.headers["Content-Length"]) > 0
                assert resp.headers["X-Request-Id"] != rid
        finally:
            server.stop()


def _instrumented_server(routes, log_stream=None):
    """A socket-bound server wired to a live telemetry bundle."""
    from repro.obs import Telemetry
    from repro.stream.serve import RequestObservability

    telemetry = Telemetry.create(seed=1, log_stream=log_stream)
    obs = RequestObservability(
        registry=telemetry.metrics,
        tracer=telemetry.tracer,
        logger=telemetry.logger,
    )
    server = FleetHealthServer(routes, port=0, observability=obs)
    return server, telemetry


class TestRequestDispatch:
    """Socket-free tests through FleetHealthServer.dispatch."""

    def test_counts_latency_and_quantiles(self):
        server, telemetry = _instrumented_server(
            {"/ping": json_route(lambda: {"pong": True})}
        )
        try:
            for _ in range(3):
                status, content_type, body, rid, _hdrs = server.dispatch("/ping")
            assert status == 200
            assert rid == "req-00000003"
            reg = telemetry.metrics
            assert (
                reg.value(
                    "http_requests_total",
                    route="/ping", method="GET", status="200",
                )
                == 3
            )
            assert reg.value("http_request_duration_seconds", route="/ping") == 3
            digest = server.observability.quantile_snapshot()["/ping"]
            assert digest["count"] == 3
            assert digest["max"] > 0
        finally:
            server.stop()

    def test_unmatched_routes_share_one_label(self):
        from repro.stream.serve import UNMATCHED_ROUTE

        server, telemetry = _instrumented_server({})
        try:
            for path in ("/a", "/b?q=1", "/c"):
                status, _, body, rid, _hdrs = server.dispatch(path)
                assert status == 404
                assert json.loads(body)["request_id"] == rid
            assert (
                telemetry.metrics.value(
                    "http_requests_total",
                    route=UNMATCHED_ROUTE, method="GET", status="404",
                )
                == 3
            )
        finally:
            server.stop()

    def test_handler_exception_gives_generic_500(self):
        import io

        log = io.StringIO()

        def explode():
            raise ValueError("secret table name")

        server, telemetry = _instrumented_server(
            {"/boom": json_route(explode)}, log_stream=log
        )
        try:
            status, content_type, body, rid, _hdrs = server.dispatch("/boom")
            assert status == 500
            doc = json.loads(body)
            assert doc == {
                "error": "internal server error", "request_id": rid
            }
            assert "secret" not in body
            assert (
                telemetry.metrics.value(
                    "http_requests_errors_total", route="/boom"
                )
                == 1
            )
            # The real exception went to the structured log...
            record = json.loads(log.getvalue().splitlines()[0])
            assert record["event"] == "http_error"
            assert "secret table name" in record["exception"]
            assert record["request_id"] == rid
            # ...and the error request got a span (errors always sampled).
            spans = [
                s for s in telemetry.tracer.finished
                if s.name == "http-request"
            ]
            assert len(spans) == 1
            assert spans[0].attrs["status"] == 500
        finally:
            server.stop()

    def test_noop_path_still_serves(self):
        server = FleetHealthServer(
            {"/ping": json_route(lambda: {"pong": True})}, port=0
        )
        try:
            assert server.observability.active is False
            status, _, body, rid, _hdrs = server.dispatch("/ping")
            assert status == 200
            assert rid.startswith("req-")
            assert server.observability.quantile_snapshot() == {}
        finally:
            server.stop()


class _ExplodingWriter:
    """A wfile stand-in whose write raises like a gone client."""

    def __init__(self, exc_type):
        self.exc_type = exc_type

    def write(self, data):
        raise self.exc_type("client went away")

    def flush(self):
        """Match the file protocol; nothing to flush."""


class TestClientDisconnects:
    @pytest.mark.parametrize(
        "exc_type", [BrokenPipeError, ConnectionResetError]
    )
    def test_reply_swallows_disconnect(self, exc_type):
        server, telemetry = _instrumented_server(
            {"/ping": json_route(lambda: {"pong": True})}
        )
        try:
            handler = object.__new__(server.handler_class)
            handler.request_version = "HTTP/1.1"
            handler.requestline = "GET /ping HTTP/1.1"
            handler.close_connection = False
            handler.wfile = _ExplodingWriter(exc_type)
            handler._reply(200, "application/json", '{"pong": true}', "req-x")
            assert handler.close_connection is True
            assert (
                telemetry.metrics.value("http_client_disconnects_total") == 1
            )
            assert (
                telemetry.metrics.value("http_requests_errors_total") == 0
            )
        finally:
            server.stop()


@pytest.fixture(scope="module")
def stream_artifacts(tmp_path_factory):
    """A small finished artifact directory for service-level tests."""
    from repro import DeltaStudy, StudyConfig

    out = tmp_path_factory.mktemp("stream_cli") / "run"
    DeltaStudy(
        StudyConfig.small(
            seed=5, include_episode=True, job_scale=0.005, op_days=10
        )
    ).run(out)
    return out


class TestStreamService:
    def test_endpoints_while_running(self, stream_artifacts, tmp_path):
        service = StreamService(
            stream_artifacts,
            port=0,
            checkpoint_dir=tmp_path / "ckpt",
            poll_interval=0.05,
        )
        service.server.start()
        try:
            service.poll_once()
            base = f"http://127.0.0.1:{service.server.port}"
            status, body = _get(base + "/healthz")
            assert status == 200
            health = json.loads(body)
            assert health["status"] == "ok"
            assert health["lines_read"] > 0
            status, metrics = _get(base + "/metrics")
            assert "pipeline_lines_read_total" in metrics
            assert "stream_watermark_seconds" in metrics
            status, fleet = _get(base + "/v1/fleet")
            fleet = json.loads(fleet)
            assert fleet["report"]["schema"] == "repro-fleet-v1"
            assert fleet["stream"]["drained"] is False
            status, alerts = _get(base + "/v1/alerts")
            assert "rules" in json.loads(alerts)
        finally:
            service.server.stop()

    def test_slo_endpoint_and_request_instrumentation(
        self, stream_artifacts, tmp_path
    ):
        service = StreamService(
            stream_artifacts,
            port=0,
            checkpoint_dir=tmp_path / "ckpt",
            poll_interval=0.05,
        )
        try:
            service.poll_once()
            service.poll_once()  # second poll records freshness
            for _ in range(2):
                status, _, _, _, _hdrs = service.server.dispatch("/v1/fleet")
                assert status == 200
            status, _, body, _, _hdrs = service.server.dispatch("/v1/slo")
            assert status == 200
            doc = json.loads(body)
            assert doc["schema"] == "repro-slo-v1"
            by_name = {o["name"]: o for o in doc["objectives"]}
            assert by_name["fleet-availability"]["verdict"] == "pass"
            assert by_name["fleet-availability"]["good"] == 2
            assert by_name["ingest-freshness"]["events"] >= 1
            assert "/v1/fleet" in doc["request_latency"]
            # The new families reach /metrics (host domain included).
            status, _, metrics_body, _, _hdrs = service.server.dispatch("/metrics")
            assert "http_requests_total" in metrics_body
            assert "slo_compliance" in metrics_body
            assert "stream_poll_duration_seconds" in metrics_body
            # ...and health reports the live latency digests.
            health = service.health_snapshot()
            assert health["slo_alerting"] == 0
            assert "/v1/fleet" in health["request_latency"]
        finally:
            service.server.stop()

    def test_fleet_snapshot_memoized_until_lines_move(self, stream_artifacts):
        service = StreamService(stream_artifacts, port=None, once=True)
        service.poll_once()
        first = service.fleet_snapshot()
        assert service.fleet_snapshot() is first
        service.poll_once(final=True)
        assert service.fleet_snapshot() is not first

    def test_request_obs_disabled_is_noop(self, stream_artifacts):
        service = StreamService(
            stream_artifacts, port=0, once=True, request_obs=False
        )
        try:
            service.poll_once()
            status, _, _, _, _hdrs = service.server.dispatch("/v1/fleet")
            assert status == 200
            assert service.server.observability.active is False
            _, _, metrics_body, _, _hdrs = service.server.dispatch("/metrics")
            assert "http_requests_total" not in metrics_body
            assert "slo_compliance" not in metrics_body
        finally:
            service.server.stop()

    def test_sigterm_style_stop_returns_zero(self, stream_artifacts):
        import threading

        service = StreamService(
            stream_artifacts, port=None, poll_interval=0.05
        )
        threading.Timer(0.3, service.stop).start()
        assert service.run(install_signals=False) == 0

    def test_repeated_publish_does_not_double_count(self, stream_artifacts):
        service = StreamService(stream_artifacts, port=None, once=True)
        assert service.run(install_signals=False) == 0
        family = service.metrics.counter("pipeline_lines_read_total")
        assert family.labels().value == service.ingest.lines_read


class TestStreamCli:
    def test_once_exits_zero_and_writes_fleet(
        self, stream_artifacts, tmp_path, capsys
    ):
        fleet_out = tmp_path / "fleet.json"
        code = main(
            [
                "stream",
                "--follow",
                str(stream_artifacts),
                "--once",
                "--port",
                "-1",
                "--checkpoint",
                str(tmp_path / "ckpt"),
                "--fleet-out",
                str(fleet_out),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pipeline health:" in out
        fleet = json.loads(fleet_out.read_text())
        assert fleet["stream"]["drained"] is True
        assert fleet["report"]["errors_total"] > 0

    def test_missing_directory_is_config_error(self, tmp_path, capsys):
        code = main(
            ["stream", "--follow", str(tmp_path / "nope"), "--once"]
        )
        assert code == 2

    def test_resume_requires_checkpoint(self, tmp_path, capsys):
        code = main(
            ["stream", "--follow", str(tmp_path), "--once", "--resume"]
        )
        assert code == 2

    def test_help_documents_exit_codes_and_shutdown(self, capsys):
        with pytest.raises(SystemExit):
            main(["stream", "--help"])
        out = capsys.readouterr().out
        assert "exit codes:" in out
        assert "SIGTERM" in out
