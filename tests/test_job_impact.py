"""Unit tests for job-impact attribution (repro.analysis.job_impact)."""

import pytest

from repro.analysis.job_impact import (
    AttributionGranularity,
    JobImpactAnalysis,
)
from repro.core.periods import StudyWindow
from repro.core.records import ExtractedError
from repro.core.timebase import DAY, HOUR
from repro.core.xid import EventClass
from repro.slurm.types import Allocation, JobRecord, JobState, Partition


@pytest.fixture()
def window():
    return StudyWindow.scaled(pre_days=10, op_days=40)


OP0 = 10 * DAY  # start of the operational period


def job(
    job_id,
    start,
    end,
    state=JobState.COMPLETED,
    node="gpua001",
    gpus=(0,),
    gpu_count=None,
):
    return JobRecord(
        job_id=job_id,
        name=f"j{job_id}",
        user="u",
        partition=Partition.GPU_A100_X4,
        submit_time=start - 60,
        start_time=start,
        end_time=end,
        state=state,
        exit_code=0 if state is JobState.COMPLETED else 1,
        allocation=Allocation(nodes=(node,), gpus={node: tuple(gpus)}),
        gpu_count=gpu_count if gpu_count is not None else len(gpus),
    )


def error(time, node="gpua001", gpu=0, event=EventClass.MMU_ERROR, xid=31):
    return ExtractedError(
        time=time, node=node, gpu_index=gpu, event_class=event, xid=xid
    )


class TestEncounters:
    def test_job_encounters_error_on_its_gpu(self, window):
        jobs = [job(1, OP0 + HOUR, OP0 + 3 * HOUR)]
        errors = [error(OP0 + 2 * HOUR)]
        result = JobImpactAnalysis(errors, jobs, window).run()
        assert result.per_class[EventClass.MMU_ERROR].jobs_encountering == 1

    def test_error_on_other_gpu_not_encountered(self, window):
        jobs = [job(1, OP0 + HOUR, OP0 + 3 * HOUR, gpus=(0,))]
        errors = [error(OP0 + 2 * HOUR, gpu=3)]
        result = JobImpactAnalysis(errors, jobs, window).run()
        assert EventClass.MMU_ERROR not in result.per_class

    def test_node_granularity_widens_encounters(self, window):
        jobs = [job(1, OP0 + HOUR, OP0 + 3 * HOUR, gpus=(0,))]
        errors = [error(OP0 + 2 * HOUR, gpu=3)]
        result = JobImpactAnalysis(
            errors, jobs, window, granularity=AttributionGranularity.NODE
        ).run()
        assert result.per_class[EventClass.MMU_ERROR].jobs_encountering == 1

    def test_error_outside_job_window_not_encountered(self, window):
        jobs = [job(1, OP0 + HOUR, OP0 + 2 * HOUR)]
        errors = [error(OP0 + 3 * HOUR)]
        result = JobImpactAnalysis(errors, jobs, window).run()
        assert EventClass.MMU_ERROR not in result.per_class

    def test_pre_op_jobs_excluded(self, window):
        jobs = [job(1, HOUR, 2 * HOUR)]  # ends pre-op
        errors = [error(1.5 * HOUR)]
        result = JobImpactAnalysis(errors, jobs, window).run()
        assert result.total_jobs_analyzed == 0

    def test_cpu_jobs_ignored(self, window):
        cpu = JobRecord(
            job_id=1,
            name="c",
            user="u",
            partition=Partition.CPU,
            submit_time=OP0,
            start_time=OP0,
            end_time=OP0 + HOUR,
            state=JobState.COMPLETED,
            exit_code=0,
            allocation=Allocation(nodes=("cn001",)),
            gpu_count=0,
        )
        result = JobImpactAnalysis([], [cpu], window).run()
        assert result.total_jobs_analyzed == 0


class TestAttribution:
    def test_failure_within_window_attributed(self, window):
        end = OP0 + 3 * HOUR
        jobs = [job(1, OP0 + HOUR, end, state=JobState.FAILED)]
        errors = [error(end - 10.0)]
        result = JobImpactAnalysis(errors, jobs, window).run()
        impact = result.per_class[EventClass.MMU_ERROR]
        assert impact.gpu_failed_jobs == 1
        assert impact.failure_probability == 1.0
        assert result.total_gpu_failed_jobs == 1
        assert result.gpu_failed_job_ids == {1}

    def test_failure_outside_window_not_attributed(self, window):
        end = OP0 + 3 * HOUR
        jobs = [job(1, OP0 + HOUR, end, state=JobState.FAILED)]
        errors = [error(end - 120.0)]  # 2 minutes before end
        result = JobImpactAnalysis(errors, jobs, window).run()
        impact = result.per_class[EventClass.MMU_ERROR]
        assert impact.gpu_failed_jobs == 0
        assert impact.jobs_encountering == 1
        assert impact.failure_probability == 0.0

    def test_completed_job_never_attributed(self, window):
        end = OP0 + 3 * HOUR
        jobs = [job(1, OP0 + HOUR, end, state=JobState.COMPLETED)]
        errors = [error(end - 5.0)]
        result = JobImpactAnalysis(errors, jobs, window).run()
        assert result.per_class[EventClass.MMU_ERROR].gpu_failed_jobs == 0

    def test_node_fail_state_attributed(self, window):
        end = OP0 + 3 * HOUR
        jobs = [job(1, OP0 + HOUR, end, state=JobState.NODE_FAIL)]
        errors = [error(end - 5.0, event=EventClass.GSP_ERROR, xid=119)]
        result = JobImpactAnalysis(errors, jobs, window).run()
        assert result.per_class[EventClass.GSP_ERROR].failure_probability == 1.0

    def test_multiple_causes_all_credited(self, window):
        end = OP0 + 3 * HOUR
        jobs = [job(1, OP0 + HOUR, end, state=JobState.FAILED, gpus=(0, 1))]
        errors = [
            error(end - 5.0, gpu=0),
            error(end - 8.0, gpu=1, event=EventClass.NVLINK_ERROR, xid=74),
        ]
        result = JobImpactAnalysis(errors, jobs, window).run()
        assert result.per_class[EventClass.MMU_ERROR].gpu_failed_jobs == 1
        assert result.per_class[EventClass.NVLINK_ERROR].gpu_failed_jobs == 1
        assert result.total_gpu_failed_jobs == 1  # still one job

    def test_custom_attribution_window(self, window):
        end = OP0 + 3 * HOUR
        jobs = [job(1, OP0 + HOUR, end, state=JobState.FAILED)]
        errors = [error(end - 60.0)]
        narrow = JobImpactAnalysis(
            errors, jobs, window, attribution_window_seconds=20.0
        ).run()
        wide = JobImpactAnalysis(
            errors, jobs, window, attribution_window_seconds=120.0
        ).run()
        assert narrow.per_class[EventClass.MMU_ERROR].gpu_failed_jobs == 0
        assert wide.per_class[EventClass.MMU_ERROR].gpu_failed_jobs == 1


class TestAggregation:
    def test_probability_over_population(self, window):
        jobs = []
        errors = []
        for i in range(10):
            start = OP0 + i * DAY
            end = start + HOUR
            state = JobState.FAILED if i < 9 else JobState.COMPLETED
            jobs.append(job(i + 1, start, end, state=state))
            errors.append(error(end - 5.0))
        result = JobImpactAnalysis(errors, jobs, window).run()
        impact = result.per_class[EventClass.MMU_ERROR]
        assert impact.jobs_encountering == 10
        assert impact.gpu_failed_jobs == 9
        assert impact.failure_probability == pytest.approx(0.9)

    def test_multi_node_job_encounters_on_any_node(self, window):
        record = JobRecord(
            job_id=1,
            name="big",
            user="u",
            partition=Partition.GPU_A100_X4,
            submit_time=OP0,
            start_time=OP0,
            end_time=OP0 + HOUR,
            state=JobState.COMPLETED,
            exit_code=0,
            allocation=Allocation(
                nodes=("gpua001", "gpua002"),
                gpus={"gpua001": (0, 1, 2, 3), "gpua002": (0, 1, 2, 3)},
            ),
            gpu_count=8,
        )
        errors = [error(OP0 + HOUR / 2, node="gpua002", gpu=2)]
        result = JobImpactAnalysis(errors, [record], window).run()
        assert result.per_class[EventClass.MMU_ERROR].jobs_encountering == 1
