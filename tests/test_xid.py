"""Unit tests for the XID catalog (repro.core.xid)."""

import pytest

from repro.core import xid
from repro.core.xid import ErrorCategory, EventClass, RecoveryAction


class TestCatalogStructure:
    def test_eleven_event_classes(self):
        assert len(xid.CATALOG) == 11
        assert len(set(s.event_class for s in xid.CATALOG)) == 11

    def test_validate_catalog_passes(self):
        xid.validate_catalog()

    def test_all_analyzed_xids_are_table1_codes(self):
        assert xid.ANALYZED_XIDS == (31, 48, 63, 64, 74, 79, 94, 95, 119, 120, 122, 123)

    def test_table1_order_matches_catalog(self):
        assert list(xid.table1_order()) == [s.event_class for s in xid.CATALOG]


class TestClassification:
    @pytest.mark.parametrize(
        "code,expected",
        [
            (31, EventClass.MMU_ERROR),
            (48, EventClass.DBE),
            (63, EventClass.ROW_REMAP_EVENT),
            (64, EventClass.ROW_REMAP_FAILURE),
            (74, EventClass.NVLINK_ERROR),
            (79, EventClass.FALLEN_OFF_BUS),
            (94, EventClass.CONTAINED_MEMORY_ERROR),
            (95, EventClass.UNCONTAINED_MEMORY_ERROR),
            (119, EventClass.GSP_ERROR),
            (120, EventClass.GSP_ERROR),
            (122, EventClass.PMU_SPI_ERROR),
            (123, EventClass.PMU_SPI_ERROR),
        ],
    )
    def test_classify_known_codes(self, code, expected):
        assert xid.classify_xid(code) is expected

    @pytest.mark.parametrize("code", [13, 43])
    def test_excluded_codes_not_classified(self, code):
        assert xid.is_excluded(code)
        assert xid.classify_xid(code) is None

    @pytest.mark.parametrize("code", [0, 1, 32, 999])
    def test_unknown_codes(self, code):
        assert not xid.is_excluded(code)
        assert xid.classify_xid(code) is None
        assert xid.spec_for_xid(code) is None


class TestCategories:
    def test_hardware_classes(self):
        assert set(xid.hardware_classes()) == {
            EventClass.MMU_ERROR,
            EventClass.FALLEN_OFF_BUS,
            EventClass.GSP_ERROR,
            EventClass.PMU_SPI_ERROR,
        }

    def test_memory_classes(self):
        assert set(xid.memory_classes()) == {
            EventClass.DBE,
            EventClass.UNCORRECTABLE_ECC,
            EventClass.ROW_REMAP_EVENT,
            EventClass.ROW_REMAP_FAILURE,
            EventClass.CONTAINED_MEMORY_ERROR,
            EventClass.UNCONTAINED_MEMORY_ERROR,
        }

    def test_interconnect_classes(self):
        assert xid.interconnect_classes() == (EventClass.NVLINK_ERROR,)

    def test_every_class_has_exactly_one_category(self):
        all_classes = (
            set(xid.hardware_classes())
            | set(xid.memory_classes())
            | set(xid.interconnect_classes())
        )
        assert all_classes == set(EventClass)


class TestSpecs:
    def test_gsp_is_node_scoped(self):
        assert xid.spec_for(EventClass.GSP_ERROR).node_scoped

    def test_mmu_is_gpu_scoped(self):
        assert not xid.spec_for(EventClass.MMU_ERROR).node_scoped

    def test_primary_xid_for_paired_classes(self):
        assert xid.primary_xid(EventClass.GSP_ERROR) == 119
        assert xid.primary_xid(EventClass.PMU_SPI_ERROR) == 122

    def test_primary_xid_for_aggregate_ecc_is_none(self):
        assert xid.primary_xid(EventClass.UNCORRECTABLE_ECC) is None

    def test_dbe_triggers_row_remap(self):
        assert (
            xid.spec_for(EventClass.DBE).recovery_action
            is RecoveryAction.ROW_REMAP
        )


class TestValidation:
    def test_duplicate_codes_rejected(self):
        spec = xid.spec_for(EventClass.MMU_ERROR)
        with pytest.raises(ValueError, match="multiple specs"):
            xid.validate_catalog([spec, spec])

    def test_excluded_code_rejected(self):
        from dataclasses import replace

        bad = replace(xid.spec_for(EventClass.MMU_ERROR), xid_codes=(13,))
        with pytest.raises(ValueError, match="excluded"):
            xid.validate_catalog([bad])

    def test_classes_in_category_preserves_order(self):
        memory = xid.classes_in_category(ErrorCategory.MEMORY)
        table_order = [
            ec for ec in xid.table1_order() if ec in set(memory)
        ]
        assert list(memory) == table_order
