"""Unit tests for MTBE statistics (repro.analysis.mtbe)."""

import pytest

from repro.analysis.mtbe import MtbeAnalysis
from repro.core.exceptions import AnalysisError
from repro.core.periods import PeriodName, StudyWindow
from repro.core.records import ExtractedError
from repro.core.xid import ErrorCategory, EventClass


def error(time, event=EventClass.MMU_ERROR, node="gpua001", gpu=0, xid=31):
    return ExtractedError(
        time=time, node=node, gpu_index=gpu, event_class=event, xid=xid
    )


@pytest.fixture()
def window():
    # 10 pre-op days (240 h), 40 op days (960 h).
    return StudyWindow.scaled(pre_days=10, op_days=40)


class TestCounts:
    def test_counts_split_by_period(self, window):
        errors = [error(100.0), error(11 * 86400.0), error(12 * 86400.0)]
        analysis = MtbeAnalysis(errors, window, node_count=10)
        assert analysis.count(PeriodName.PRE_OPERATIONAL, EventClass.MMU_ERROR) == 1
        assert analysis.count(PeriodName.OPERATIONAL, EventClass.MMU_ERROR) == 2

    def test_counts_split_by_class(self, window):
        errors = [
            error(100.0),
            error(200.0, event=EventClass.NVLINK_ERROR, xid=74),
        ]
        analysis = MtbeAnalysis(errors, window, node_count=10)
        assert analysis.count(PeriodName.PRE_OPERATIONAL, EventClass.NVLINK_ERROR) == 1

    def test_zero_count_stat_has_none_mtbe(self, window):
        analysis = MtbeAnalysis([], window, node_count=10)
        stat = analysis.class_stat(PeriodName.OPERATIONAL, EventClass.DBE)
        assert stat.count == 0
        assert stat.system_mtbe_hours is None
        assert stat.per_node_mtbe_hours is None


class TestMtbeMath:
    def test_system_mtbe_is_period_hours_over_count(self, window):
        errors = [error(11 * 86400.0 + i) for i in range(10)]
        analysis = MtbeAnalysis(errors, window, node_count=106)
        stat = analysis.class_stat(PeriodName.OPERATIONAL, EventClass.MMU_ERROR)
        assert stat.system_mtbe_hours == pytest.approx(960 / 10)
        assert stat.per_node_mtbe_hours == pytest.approx(96 * 106)

    def test_aggregate_over_classes(self, window):
        errors = [
            error(11 * 86400.0),
            error(12 * 86400.0, event=EventClass.GSP_ERROR, xid=119),
        ]
        analysis = MtbeAnalysis(errors, window, node_count=10)
        stat = analysis.aggregate(
            PeriodName.OPERATIONAL,
            [EventClass.MMU_ERROR, EventClass.GSP_ERROR],
        )
        assert stat.count == 2
        assert stat.system_mtbe_hours == pytest.approx(480)

    def test_invalid_node_count(self, window):
        with pytest.raises(AnalysisError):
            MtbeAnalysis([], window, node_count=0)


class TestCategories:
    def test_category_aggregation(self, window):
        errors = [
            error(11 * 86400.0, event=EventClass.ROW_REMAP_EVENT, xid=63),
            error(12 * 86400.0, event=EventClass.CONTAINED_MEMORY_ERROR, xid=94),
            error(13 * 86400.0),
        ]
        analysis = MtbeAnalysis(errors, window, node_count=10)
        memory = analysis.category(PeriodName.OPERATIONAL, ErrorCategory.MEMORY)
        hardware = analysis.category(PeriodName.OPERATIONAL, ErrorCategory.HARDWARE)
        assert memory.count == 2
        assert hardware.count == 1

    def test_non_memory_includes_interconnect(self, window):
        errors = [
            error(11 * 86400.0, event=EventClass.NVLINK_ERROR, xid=74),
            error(12 * 86400.0),
        ]
        analysis = MtbeAnalysis(errors, window, node_count=10)
        assert analysis.non_memory(PeriodName.OPERATIONAL).count == 2

    def test_memory_vs_hardware_ratio(self, window):
        errors = [error(11 * 86400.0, event=EventClass.ROW_REMAP_EVENT, xid=63)] + [
            error(11 * 86400.0 + i * 3600, gpu=i % 4) for i in range(10)
        ]
        analysis = MtbeAnalysis(errors, window, node_count=10)
        assert analysis.memory_vs_hardware_ratio() == pytest.approx(10.0)

    def test_ratio_none_without_memory_errors(self, window):
        analysis = MtbeAnalysis([error(11 * 86400.0)], window, node_count=10)
        assert analysis.memory_vs_hardware_ratio() is None


class TestOutlierRule:
    def _episode_errors(self, n=500):
        # One GPU produces a flood of uncontained errors pre-op.
        return [
            error(
                1000.0 + i * 40.0,
                event=EventClass.UNCONTAINED_MEMORY_ERROR,
                node="gpua002",
                gpu=1,
                xid=95,
            )
            for i in range(n)
        ]

    def test_outlier_detected(self, window):
        background = [
            error(
                2000.0 + i * 3600.0,
                event=EventClass.UNCONTAINED_MEMORY_ERROR,
                node=f"gpua00{3 + i % 3}",
                gpu=0,
                xid=95,
            )
            for i in range(5)
        ]
        analysis = MtbeAnalysis(
            self._episode_errors() + background, window, node_count=10
        )
        assert len(analysis.outliers) == 1
        outlier = analysis.outliers[0]
        assert outlier.node == "gpua002"
        assert outlier.count == 500
        assert outlier.share > 0.9

    def test_exclusion_changes_count(self, window):
        analysis = MtbeAnalysis(self._episode_errors(), window, node_count=10)
        with_outlier = analysis.count(
            PeriodName.PRE_OPERATIONAL, EventClass.UNCONTAINED_MEMORY_ERROR
        )
        without = analysis.count(
            PeriodName.PRE_OPERATIONAL,
            EventClass.UNCONTAINED_MEMORY_ERROR,
            exclude_outliers=True,
        )
        assert with_outlier == 500
        assert without == 0

    def test_small_floods_not_flagged(self, window):
        analysis = MtbeAnalysis(self._episode_errors(n=50), window, node_count=10)
        assert not analysis.outliers  # below the min-count threshold

    def test_overall_excludes_outliers_by_default(self, window):
        analysis = MtbeAnalysis(self._episode_errors(), window, node_count=10)
        overall = analysis.overall(PeriodName.PRE_OPERATIONAL)
        assert overall.count == 0
        included = analysis.overall(
            PeriodName.PRE_OPERATIONAL, exclude_outliers=False
        )
        assert included.count == 500


class TestDegradation:
    def test_degradation_fraction(self, window):
        pre = [error(i * 3600.0, gpu=i % 4) for i in range(24)]  # 240h/24 = 10h
        op = [
            error(11 * 86400.0 + i * 1800.0, gpu=i % 4) for i in range(192)
        ]  # 960h/192 = 5h
        analysis = MtbeAnalysis(pre + op, window, node_count=10)
        assert analysis.degradation_fraction() == pytest.approx(0.5, abs=0.01)

    def test_degradation_none_without_errors(self, window):
        analysis = MtbeAnalysis([], window, node_count=10)
        assert analysis.degradation_fraction() is None

    def test_table1_has_all_classes(self, window):
        analysis = MtbeAnalysis([error(100.0)], window, node_count=10)
        table = analysis.table1()
        assert len(table) == 11
        assert all(
            set(row) == {PeriodName.PRE_OPERATIONAL, PeriodName.OPERATIONAL}
            for row in table.values()
        )
