"""Tests for the experiment report builders (repro.reporting.experiments)
and the EXPERIMENTS.md generator (repro.reporting.experiments_md)."""

import pytest

from repro.analysis.job_impact import ClassImpact, JobImpactResult
from repro.analysis.mtbe import MtbeAnalysis
from repro.calibration import paper
from repro.core.periods import PeriodName, StudyWindow
from repro.core.records import DowntimeRecord, ExtractedError
from repro.core.timebase import DAY, HOUR
from repro.core.xid import EventClass
from repro.reporting.experiments import (
    report_figure2,
    report_nvlink,
    report_table1,
    report_table2,
)
from repro.reporting.experiments_md import build_experiments_markdown


def synthetic_errors_matching_paper(window: StudyWindow):
    """An error stream whose counts equal Table I exactly.

    Events are laid out deterministically (spaced evenly within each
    period, round-robining over a fleet of nodes/GPUs so no unit trips
    the outlier rule except the dedicated episode unit)."""
    errors = []

    def lay_out(event_class, xid, count, period, episode_unit=False):
        if count == 0:
            return
        span = period.duration
        step = span / count
        for i in range(count):
            if episode_unit:
                node, gpu = "gpua017", 2
            else:
                node, gpu = f"gpua{(i % 50) + 1:03d}", i % 4
            errors.append(
                ExtractedError(
                    time=period.start + i * step + 1.0,
                    node=node,
                    gpu_index=gpu,
                    event_class=event_class,
                    xid=xid,
                )
            )

    for row in paper.TABLE1:
        xid = 31 if row.event_class is EventClass.MMU_ERROR else 0
        episode = row.event_class is EventClass.UNCONTAINED_MEMORY_ERROR
        lay_out(
            row.event_class,
            xid,
            row.pre_op_count,
            window.pre_operational,
            episode_unit=episode and row.pre_op_count > 1000,
        )
        lay_out(row.event_class, xid, row.op_count, window.operational)
    return errors


@pytest.fixture(scope="module")
def paper_exact_mtbe():
    window = StudyWindow.delta_default()
    errors = synthetic_errors_matching_paper(window)
    return MtbeAnalysis(errors, window, node_count=106), window, errors


class TestReportTable1:
    def test_paper_exact_counts_all_ok(self, paper_exact_mtbe):
        mtbe, _, _ = paper_exact_mtbe
        report = report_table1(mtbe)
        failures = [c.name for c in report.failures]
        assert report.all_ok, failures

    def test_mtbe_values_close_to_paper(self, paper_exact_mtbe):
        mtbe, _, _ = paper_exact_mtbe
        stat = mtbe.class_stat(PeriodName.OPERATIONAL, EventClass.MMU_ERROR)
        assert stat.per_node_mtbe_hours == pytest.approx(257, rel=0.06)

    def test_headline_composites_from_exact_counts(self, paper_exact_mtbe):
        mtbe, _, _ = paper_exact_mtbe
        # Footnote-5 exclusion reproduces the 199 h figure.
        pre = mtbe.overall(PeriodName.PRE_OPERATIONAL)
        assert pre.per_node_mtbe_hours == pytest.approx(199, rel=0.05)
        op = mtbe.overall(PeriodName.OPERATIONAL)
        assert op.per_node_mtbe_hours == pytest.approx(154, rel=0.05)
        assert mtbe.memory_vs_hardware_ratio() == pytest.approx(160, rel=0.10)
        assert mtbe.degradation_fraction() == pytest.approx(0.23, abs=0.04)


class TestReportTable2:
    def _impact(self, prob: float, encounters: int = 100):
        failed = int(round(prob * encounters))
        return JobImpactResult(
            per_class={
                row.event_class: ClassImpact(
                    event_class=row.event_class,
                    jobs_encountering=encounters,
                    gpu_failed_jobs=int(round(row.failure_probability * encounters)),
                )
                for row in paper.TABLE2
            },
            total_gpu_failed_jobs=failed,
            total_jobs_analyzed=1000,
        )

    def test_exact_probabilities_all_ok(self):
        report = report_table2(self._impact(0.9))
        assert report.all_ok, [c.render() for c in report.failures]

    def test_missing_class_fails(self):
        impact = JobImpactResult(
            per_class={}, total_gpu_failed_jobs=0, total_jobs_analyzed=0
        )
        report = report_table2(impact)
        assert not report.all_ok
        assert len(report.failures) == len(paper.TABLE2)


class TestReportFigure2:
    def test_exact_availability_numbers(self):
        window = StudyWindow.delta_default()
        op0 = window.operational.start
        episodes = [
            DowntimeRecord(
                node="gpua001",
                start=op0 + i * 3 * HOUR,
                end=op0 + i * 3 * HOUR + 0.88 * HOUR,
                cause=EventClass.GSP_ERROR,
            )
            for i in range(200)
        ]
        report = report_figure2(episodes, window, 106, per_node_mtbe_hours=162.0)
        assert all(
            c.ok for c in report.comparisons if "MTTR" in c.name or "avail" in c.name
        )


class TestExperimentsMarkdown:
    def test_structure(self, small_run):
        artifacts, result = small_run
        markdown = build_experiments_markdown(
            errors=result.errors,
            jobs=result.jobs,
            downtime=result.downtime,
            workload_jobs=artifacts.job_records,
            window=artifacts.window,
            node_count=artifacts.node_count,
            run_description="test run",
            extra_sections=["## Extra\n\ncustom section\n"],
        )
        assert markdown.startswith("# EXPERIMENTS")
        for heading in (
            "## Run configuration",
            "## Summary",
            "## E1 —",
            "## E2 —",
            "## E5 —",
            "## E9 —",
            "## Extra",
        ):
            assert heading in markdown
        assert "comparisons within tolerance" in markdown
        assert "| metric | paper | measured |" in markdown

    def test_episode_section_numbers(self, small_run):
        artifacts, result = small_run
        markdown = build_experiments_markdown(
            errors=result.errors,
            jobs=result.jobs,
            downtime=result.downtime,
            workload_jobs=artifacts.job_records,
            window=artifacts.window,
            node_count=artifacts.node_count,
            run_description="test run",
        )
        # The small run's episode produces ~7,300 coalesced errors.
        assert "| coalesced uncontained errors (pre-op) | 38,900 | 7," in markdown
