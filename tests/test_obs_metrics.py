"""Unit tests for the metrics registry (repro.obs.metrics)."""

import json
import math

import pytest

from repro.obs.metrics import DEFAULT_BUCKETS, NOOP, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("events_total")
        assert reg.value("events_total") == 0.0
        c.inc()
        c.inc(2.5)
        assert reg.value("events_total") == 3.5

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("events_total")
        with pytest.raises(ValueError, match=">= 0"):
            c.inc(-1)

    def test_labeled_children_are_independent(self):
        reg = MetricsRegistry()
        c = reg.counter("faults_total", labels=("xid",))
        c.labels(xid="63").inc(3)
        c.labels(xid="79").inc(1)
        assert reg.value("faults_total", xid="63") == 3
        assert reg.value("faults_total", xid="79") == 1
        assert reg.value("faults_total", xid="31") == 0

    def test_label_child_is_cached(self):
        reg = MetricsRegistry()
        c = reg.counter("faults_total", labels=("xid",))
        assert c.labels(xid="63") is c.labels(xid="63")


class TestLabelSemantics:
    def test_wrong_label_set_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", labels=("a", "b"))
        with pytest.raises(ValueError, match="expected labels"):
            c.labels(a="1")
        with pytest.raises(ValueError, match="expected labels"):
            c.labels(a="1", b="2", c="3")

    def test_unlabeled_convenience_on_labeled_family_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", labels=("a",))
        with pytest.raises(ValueError, match="declares labels"):
            c.inc()

    def test_label_values_coerced_to_str(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", labels=("xid",))
        c.labels(xid=63).inc()
        assert reg.value("x_total", xid="63") == 1


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert reg.value("depth") == 13


class TestHistogram:
    def test_bucketing_is_cumulative_with_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 0.7, 5.0, 50.0, 5000.0):
            h.observe(v)
        child = h.labels()
        cum = child.cumulative()
        assert cum == [(1.0, 2), (10.0, 3), (100.0, 4), (math.inf, 5)]
        assert child.count == 5
        assert child.sum == pytest.approx(5056.2)

    def test_boundary_value_falls_in_lower_bucket(self):
        # Prometheus buckets are "le" (<=) buckets.
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 10.0))
        h.observe(1.0)
        assert h.labels().bucket_counts == [1, 0, 0]

    def test_default_buckets_used_when_unspecified(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        h.observe(3.0)
        assert h.labels().bounds == DEFAULT_BUCKETS

    def test_value_of_histogram_is_observation_count(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0,))
        h.observe(0.2)
        h.observe(9.0)
        assert reg.value("lat") == 2


class TestRegistration:
    def test_same_name_same_shape_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", labels=("k",))
        b = reg.counter("x_total", labels=("k",))
        assert a is b

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x_total")

    def test_label_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labels=("a",))
        with pytest.raises(ValueError, match="already registered"):
            reg.counter("x_total", labels=("b",))

    def test_bad_domain_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="domain"):
            reg.counter("x_total", domain="cloud")


class TestNoopPath:
    def test_disabled_registry_hands_out_shared_noop(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("a_total") is NOOP
        assert reg.gauge("b") is NOOP
        assert reg.histogram("c") is NOOP

    def test_noop_accepts_every_operation(self):
        NOOP.labels(anything="x").inc()
        NOOP.inc(5)
        NOOP.dec()
        NOOP.set(3)
        NOOP.observe(1.5)

    def test_disabled_registry_exports_empty(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("a_total").inc()
        assert reg.render_prometheus() == ""
        assert list(reg.samples()) == []
        assert json.loads(reg.to_json())["metrics"] == []


class TestPrometheusExport:
    def test_text_format(self):
        reg = MetricsRegistry()
        c = reg.counter("faults_total", "injected faults", labels=("xid",))
        c.labels(xid="63").inc(3)
        g = reg.gauge("depth", "heap depth")
        g.set(7)
        text = reg.render_prometheus()
        assert "# HELP faults_total injected faults" in text
        assert "# TYPE faults_total counter" in text
        assert 'faults_total{xid="63"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 7" in text
        assert text.endswith("\n")

    def test_histogram_series(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(20.0)
        text = reg.render_prometheus()
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="10"} 1' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_sum 20.5" in text
        assert "lat_count 2" in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", labels=("msg",))
        c.labels(msg='say "hi"\nback\\slash').inc()
        text = reg.render_prometheus()
        assert r'msg="say \"hi\"\nback\\slash"' in text

    def test_host_domain_excluded_by_default(self):
        reg = MetricsRegistry()
        reg.counter("sim_total").inc()
        reg.gauge("wall_seconds", domain="host").set(1.25)
        text = reg.render_prometheus()
        assert "sim_total" in text
        assert "wall_seconds" not in text
        assert "wall_seconds" in reg.render_prometheus(include_host=True)

    def test_untouched_family_emits_nothing(self):
        reg = MetricsRegistry()
        reg.counter("never_total")
        assert reg.render_prometheus() == ""

    def test_sorted_deterministic_output(self):
        def build(order):
            reg = MetricsRegistry()
            for name in order:
                reg.counter(name, labels=("k",))
            reg.counter("b_total", labels=("k",)).labels(k="2").inc()
            reg.counter("b_total", labels=("k",)).labels(k="1").inc()
            reg.counter("a_total", labels=("k",)).labels(k="z").inc()
            return reg.render_prometheus()

        assert build(["a_total", "b_total"]) == build(["b_total", "a_total"])


def _unescape_label(value):
    """Invert Prometheus label escaping (\\\\, \\", \\n)."""
    out = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, ch + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


class TestPrometheusConformance:
    """Exposition-format conformance, verified through the parser.

    ``load_metric_rows`` (the ``repro obs`` reader) re-parses what
    ``render_prometheus`` wrote, closing the loop: whatever the
    renderer escapes or buckets must survive a round trip.
    """

    def _rows(self, reg):
        from repro.obs.report import _parse_prometheus

        return _parse_prometheus(reg.render_prometheus(include_host=True))

    def test_histogram_inf_bucket_equals_count(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0, 10.0), labels=("route",))
        for v in (0.05, 0.5, 5.0, 50.0, 0.01):
            h.labels(route="/a").observe(v)
        rows = {(name, labels): value for name, labels, value in self._rows(reg)}
        inf_bucket = rows[("lat_bucket", "le=+Inf,route=/a")]
        assert inf_bucket == rows[("lat_count", "route=/a")] == 5

    def test_bucket_counts_are_cumulative_and_monotone(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0, 10.0))
        observations = (0.05, 0.5, 0.5, 5.0, 50.0)
        for v in observations:
            h.observe(v)
        buckets = [
            (labels, value)
            for name, labels, value in self._rows(reg)
            if name == "lat_bucket"
        ]
        counts = [value for _, value in buckets]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        # The per-bucket increments re-sum to _count.
        increments = [counts[0]] + [
            b - a for a, b in zip(counts, counts[1:])
        ]
        assert sum(increments) == len(observations)

    def test_sum_series_present_and_exact(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0,))
        h.observe(0.25)
        h.observe(4.0)
        rows = {name: value for name, _, value in self._rows(reg)}
        assert rows["lat_sum"] == pytest.approx(4.25)

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        nasty = 'say "hi"\nback\\slash and a tab\t!'
        reg.counter("x_total", labels=("msg",)).labels(msg=nasty).inc()
        rows = self._rows(reg)
        assert len(rows) == 1
        _, labels, value = rows[0]
        assert labels.startswith("msg=")
        assert _unescape_label(labels[len("msg="):]) == nasty
        assert value == 1.0

    def test_every_series_parses(self):
        # No line the renderer emits may be dropped by the parser.
        reg = MetricsRegistry()
        reg.counter("a_total", "help", labels=("k",)).labels(k="v").inc(2)
        reg.gauge("b", domain="host").set(1.5)
        reg.histogram("c", buckets=(1.0,), labels=("r",)).labels(
            r="/x"
        ).observe(0.5)
        text = reg.render_prometheus(include_host=True)
        payload_lines = [
            line
            for line in text.splitlines()
            if line and not line.startswith("#")
        ]
        assert len(self._rows(reg)) == len(payload_lines)


class TestJsonExport:
    def test_snapshot_round_trips_through_json(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "help a", labels=("k",)).labels(k="x").inc(2)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        doc = json.loads(reg.to_json(include_host=True))
        assert doc["schema"] == "repro-metrics-v1"
        by_name = {m["name"]: m for m in doc["metrics"]}
        assert by_name["a_total"]["series"] == [
            {"labels": {"k": "x"}, "value": 2.0}
        ]
        hist = by_name["h"]["series"][0]
        assert hist["count"] == 1
        assert hist["buckets"] == [["1", 1], ["+Inf", 1]]

    def test_samples_stream_matches_values(self):
        reg = MetricsRegistry()
        reg.counter("a_total", labels=("k",)).labels(k="x").inc(4)
        samples = list(reg.samples())
        assert len(samples) == 1
        s = samples[0]
        assert (s.name, s.labels, s.value) == ("a_total", {"k": "x"}, 4.0)
