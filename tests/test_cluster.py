"""Unit tests for the cluster layer (gpu, node, topology, inventory)."""

import pytest

from repro.cluster.gpu import (
    A100_SPARE_ROWS,
    PCI_ADDRESSES,
    GpuHealth,
    GpuState,
)
from repro.cluster.inventory import Inventory
from repro.cluster.node import Node, NodeKind, NodeState
from repro.cluster.topology import (
    DELTA_A100_GPUS,
    DELTA_A100_NODES,
    Cluster,
    ClusterShape,
)
from repro.core.exceptions import TopologyError


class TestGpuState:
    def _gpu(self) -> GpuState:
        return GpuState(node="gpua001", index=2, serial="gpua001-u2-r0")

    def test_pci_address_by_index(self):
        assert self._gpu().pci_address == PCI_ADDRESSES[2]

    def test_name(self):
        assert self._gpu().name == "gpua001/gpu2"

    def test_spare_row_consumption(self):
        gpu = self._gpu()
        assert gpu.can_remap()
        gpu.consume_spare_row()
        assert gpu.spare_rows_left == A100_SPARE_ROWS - 1
        assert gpu.remapped_rows == 1

    def test_exhausted_pool_cannot_remap(self):
        gpu = self._gpu()
        gpu.spare_rows_left = 0
        assert not gpu.can_remap()
        with pytest.raises(RuntimeError, match="exhausted"):
            gpu.consume_spare_row()

    def test_offline_page_idempotent(self):
        gpu = self._gpu()
        assert gpu.offline_page(42)
        assert not gpu.offline_page(42)
        assert gpu.offlined_pages == {42}

    def test_reset_clears_health_keeps_remaps(self):
        gpu = self._gpu()
        gpu.consume_spare_row()
        gpu.health = GpuHealth.FAILED
        gpu.reset()
        assert gpu.health is GpuHealth.HEALTHY
        assert gpu.remapped_rows == 1  # remaps survive resets (InfoROM)

    def test_replace_restores_everything(self):
        gpu = self._gpu()
        gpu.consume_spare_row()
        gpu.offline_page(1)
        gpu.health = GpuHealth.FAILED
        gpu.replace("gpua001-u2-r1")
        assert gpu.serial == "gpua001-u2-r1"
        assert gpu.spare_rows_left == A100_SPARE_ROWS
        assert gpu.remapped_rows == 0
        assert gpu.offlined_pages == set()
        assert gpu.health is GpuHealth.HEALTHY


class TestNode:
    def test_gpu_lookup(self, small_cluster):
        node = small_cluster.gpu_nodes()[0]
        assert node.gpu(0).index == 0
        with pytest.raises(TopologyError, match="no GPU index"):
            node.gpu(99)

    def test_gpu_by_pci(self, small_cluster):
        node = small_cluster.gpu_nodes()[0]
        gpu = node.gpu(1)
        assert node.gpu_by_pci(gpu.pci_address) is gpu
        assert node.gpu_by_pci("0000:FF:00") is None

    def test_schedulable_states(self):
        node = Node(name="cn001", kind=NodeKind.CPU)
        assert node.schedulable
        node.state = NodeState.DRAINING
        assert not node.schedulable
        node.state = NodeState.DOWN
        assert not node.schedulable
        node.state = NodeState.ALLOCATED
        assert node.schedulable

    def test_free_gpu_indices(self, small_cluster):
        node = small_cluster.gpu_nodes()[0]
        node.gpu(1).busy = True
        assert node.free_gpu_indices() == [0, 2, 3]
        node.gpu(1).busy = False


class TestClusterShape:
    def test_delta_counts(self):
        shape = ClusterShape()
        assert shape.gpu_node_count == DELTA_A100_NODES == 106
        assert shape.gpu_count == DELTA_A100_GPUS == 448

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            ClusterShape(four_way_nodes=-1)

    def test_no_gpu_nodes_rejected(self):
        with pytest.raises(ValueError, match="GPU node"):
            ClusterShape(four_way_nodes=0, eight_way_nodes=0)


class TestCluster:
    def test_delta_construction(self):
        cluster = Cluster.delta()
        cluster.validate()
        assert len(cluster.gpu_nodes()) == 106
        assert len(cluster.cpu_nodes()) == 132
        assert len(cluster.gpus()) == 448

    def test_node_names(self):
        cluster = Cluster.small(four_way=2, eight_way=1, cpu=1)
        names = [n.name for n in cluster.nodes()]
        assert "gpua001" in names
        assert "gpuc001" in names
        assert "cn001" in names

    def test_node_flavours(self):
        cluster = Cluster.small(four_way=2, eight_way=1, cpu=1)
        assert cluster.node("gpua001").gpu_count == 4
        assert cluster.node("gpuc001").gpu_count == 8
        assert cluster.node("cn001").gpu_count == 0

    def test_unknown_node_raises(self, small_cluster):
        with pytest.raises(TopologyError, match="unknown node"):
            small_cluster.node("gpua999")

    def test_gpu_by_name(self, small_cluster):
        gpu = small_cluster.gpu_by_name("gpua002/gpu3")
        assert gpu.node == "gpua002"
        assert gpu.index == 3

    def test_gpu_by_name_malformed(self, small_cluster):
        with pytest.raises(TopologyError, match="malformed"):
            small_cluster.gpu_by_name("not-a-gpu-name")

    def test_nvlink_complete_within_node(self, small_cluster):
        # 4-way: each GPU has 3 peers; 8-way: 7 peers.
        assert small_cluster.nvlink_peers("gpua001", 0) == [1, 2, 3]
        assert len(small_cluster.nvlink_peers("gpuc001", 0)) == 7

    def test_nvlink_no_cross_node_edges(self, small_cluster):
        graph = small_cluster.nvlink
        for a, b in graph.edges():
            assert a.split("/")[0] == b.split("/")[0]

    def test_nvlink_link_lookup(self, small_cluster):
        assert small_cluster.nvlink_link("gpua001", 0, 3) is not None

    def test_validate_passes_on_small(self, small_cluster):
        small_cluster.validate()


class TestInventory:
    def test_roundtrip(self, small_cluster, tmp_path):
        inventory = Inventory.from_cluster(small_cluster)
        path = tmp_path / "inventory.json"
        inventory.save(path)
        loaded = Inventory.load(path)
        assert len(loaded) == len(inventory)
        assert loaded.entries() == inventory.entries()

    def test_resolve(self, small_cluster):
        inventory = Inventory.from_cluster(small_cluster)
        gpu = small_cluster.node("gpua001").gpu(2)
        assert inventory.resolve("gpua001", gpu.pci_address) == 2

    def test_resolve_unknown_returns_none(self, small_cluster):
        inventory = Inventory.from_cluster(small_cluster)
        assert inventory.resolve("gpua001", "0000:FF:00") is None
        assert inventory.resolve("nonexistent", PCI_ADDRESSES[0]) is None

    def test_covers_every_gpu(self, small_cluster):
        inventory = Inventory.from_cluster(small_cluster)
        assert len(inventory) == len(small_cluster.gpus())
