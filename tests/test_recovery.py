"""Tests for the gang-job recovery engine (repro.recovery).

Covers the three layers separately:

* scheduler gang semantics — all-or-nothing multi-node placement;
* the recovery state machine — detection, drain, reschedule, restore,
  watermark discipline, backoff reproducibility;
* study integration — same-seed byte-identical artifacts with recovery
  armed, and non-recovery runs untouched by the feature.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.cluster.topology import Cluster
from repro.core.timebase import DAY, HOUR
from repro.core.xid import EventClass
from repro.recovery import (
    GANG_JOB_ID_BASE,
    CheckpointPlan,
    DetectionModel,
    GangRecoveryManager,
    GangState,
    RECOVERY_PRESETS,
    RecoveryPolicy,
)
from repro.sim.engine import Engine
from repro.slurm.scheduler import Scheduler
from repro.slurm.types import JobRequest, JobState, Partition
from repro.study import DeltaStudy, StudyConfig
from repro.syslog.records import LogBus
from repro.workload.spec import GangJobSpec


def make_env(four_way=4, eight_way=0, cpu=1, horizon=200 * DAY):
    engine = Engine(horizon=horizon)
    cluster = Cluster.small(four_way=four_way, eight_way=eight_way, cpu=cpu)
    scheduler = Scheduler(engine, cluster)
    return engine, cluster, scheduler


def gang_request(job_id=1, gang_nodes=2, gpus=8, duration=10 * HOUR, submit=0.0):
    return JobRequest(
        job_id=job_id,
        name=f"gang{job_id}",
        user="mlops",
        partition=Partition.GPU_A100_X4,
        submit_time=submit,
        gpu_count=gpus,
        duration=duration,
        is_ml=True,
        gang_nodes=gang_nodes,
    )


class TestGangRequestValidation:
    def test_gang_gpus_must_divide_evenly(self):
        with pytest.raises(ValueError):
            gang_request(gang_nodes=3, gpus=8)

    def test_gang_requires_gpu_partition(self):
        with pytest.raises(ValueError):
            JobRequest(
                job_id=1, name="g", user="u", partition=Partition.CPU,
                submit_time=0.0, gpu_count=0, duration=HOUR, gang_nodes=2,
            )

    def test_gang_properties(self):
        request = gang_request(gang_nodes=2, gpus=8)
        assert request.is_gang
        assert request.gpus_per_gang_node == 4

    def test_spec_validation(self):
        with pytest.raises(Exception):
            GangJobSpec(gang_nodes=0)
        with pytest.raises(Exception):
            GangJobSpec(work_days=0.0)
        assert GangJobSpec(gang_nodes=2, gpus_per_node=4).gpu_count == 8


class TestGangPlacement:
    def test_gang_seizes_whole_nodes(self):
        engine, cluster, scheduler = make_env()
        scheduler.submit(gang_request(gang_nodes=2, gpus=8))
        assert scheduler.running_count == 1
        occupied = [
            n.name for n in cluster.gpu_nodes()
            if scheduler.jobs_on_node(n.name)
        ]
        assert len(occupied) == 2
        # Every GPU on the member nodes is busy — exclusive use.
        for node in cluster.gpu_nodes():
            if node.name in occupied:
                assert all(g.busy for g in node.gpus)

    def test_all_or_nothing_queues_when_short_one_node(self):
        engine, cluster, scheduler = make_env(four_way=2)
        scheduler.submit(gang_request(job_id=1, gang_nodes=1, gpus=4))
        # Only one idle node left: a 2-node gang must wait, not start
        # partially.
        scheduler.submit(gang_request(job_id=2, gang_nodes=2, gpus=8))
        assert scheduler.running_count == 1
        assert scheduler.queued_count == 1
        assert not scheduler.can_place(gang_request(job_id=3, gang_nodes=2))
        engine.run()
        records = {r.job_id: r for r in scheduler.records}
        assert records[2].state is JobState.COMPLETED
        assert len(records[2].allocation.nodes) == 2

    def test_gang_avoids_drained_nodes(self):
        engine, cluster, scheduler = make_env(four_way=2)
        scheduler.drain_node(cluster.gpu_nodes()[0].name)
        assert not scheduler.can_place(gang_request(gang_nodes=2))
        assert scheduler.can_place(gang_request(gang_nodes=1, gpus=4))


def quick_policy(**overrides):
    """A small, fast recovery policy for state-machine tests."""
    defaults = dict(
        gang=GangJobSpec(count=1, gang_nodes=2, gpus_per_node=4,
                         work_days=0.5, submit_day=0.0),
        detection=DetectionModel(mean_seconds=60.0, floor_seconds=10.0),
        checkpoint=CheckpointPlan(mode="fixed", interval_hours=1.0,
                                  write_minutes=2.0, restore_minutes=5.0),
        spare_nodes=1,
        drain_seconds=30.0,
        max_retries=2,
        backoff_base_seconds=60.0,
        backoff_factor=2.0,
        cordon_minutes=45.0,
        min_gang_nodes=1,
    )
    defaults.update(overrides)
    return RecoveryPolicy(**defaults)


def arm_manager(policy, four_way=4, seed=3):
    engine, cluster, scheduler = make_env(four_way=four_way)
    log_bus = LogBus()
    manager = GangRecoveryManager(
        engine=engine,
        cluster=cluster,
        scheduler=scheduler,
        log_bus=log_bus,
        policy=policy,
        rng=np.random.default_rng(seed),
    )
    manager.arm()
    return engine, cluster, scheduler, log_bus, manager


def gang_lines(log_bus):
    return [
        r.message for r in log_bus.sorted_records() if "gangd:" in r.message
    ]


class TestStateMachine:
    def test_unfailed_gang_completes(self):
        engine, _, scheduler, log_bus, manager = arm_manager(quick_policy())
        engine.run()
        summary = manager.summary()
        assert summary.completed == 1
        assert summary.incidents == 0
        assert summary.per_gang[0]["progress"] == pytest.approx(1.0)
        assert any("completed all work" in m for m in gang_lines(log_bus))

    def test_whole_gang_fails_exactly_once_per_incident(self):
        engine, cluster, scheduler, log_bus, manager = arm_manager(
            quick_policy()
        )
        # Kill the gang once, two hours in, on its second member node.
        def kill():
            job_id = GANG_JOB_ID_BASE + 1000  # gang 1, segment 0
            scheduler.kill_job(
                job_id, EventClass.DBE, node_failure=True,
                node=cluster.gpu_nodes()[1].name,
            )
        engine.schedule(2 * HOUR, kill, label="test:kill")
        engine.run()
        summary = manager.summary()
        assert summary.incidents == 1
        assert summary.completed == 1
        lines = gang_lines(log_bus)
        # One failure line, one detection, one cordon, one restore.
        assert sum("failed, losing" in m for m in lines) == 1
        assert sum("failure detected" in m for m in lines) == 1
        assert sum("cordoned" in m for m in lines) == 1
        assert sum("restoring from checkpoint" in m for m in lines) == 1
        assert sum("recovered in" in m for m in lines) == 1
        # Exactly one segment ended in failure, one completed.
        failed = [r for r in scheduler.records if r.job_id >= GANG_JOB_ID_BASE
                  and r.state is not JobState.COMPLETED]
        assert len(failed) == 1

    def test_restore_never_passes_watermark(self):
        policy = quick_policy()
        engine, cluster, scheduler, log_bus, manager = arm_manager(policy)
        watermarks = []

        def probe():
            gang = manager._gangs[1]
            watermarks.append(gang.watermark)

        for hour in range(1, 14):
            engine.schedule(hour * HOUR, probe, label="test:probe")

        def kill():
            scheduler.kill_job(
                GANG_JOB_ID_BASE + 1000, EventClass.DBE, node_failure=True,
                node=cluster.gpu_nodes()[0].name,
            )
        engine.schedule(2.5 * HOUR, kill, label="test:kill")
        engine.run()
        gang = manager._gangs[1]
        # The watermark only ever moves forward, and the gang finished.
        assert watermarks == sorted(watermarks)
        assert gang.state is GangState.COMPLETED
        assert gang.watermark == pytest.approx(gang.total_work)
        # Work was actually lost (the kill landed past a tick boundary).
        assert gang.lost_work > 0

    def test_spare_promotion_on_failure(self):
        engine, cluster, scheduler, log_bus, manager = arm_manager(
            quick_policy()
        )

        def kill():
            scheduler.kill_job(
                GANG_JOB_ID_BASE + 1000, EventClass.DBE, node_failure=True,
                node=cluster.gpu_nodes()[0].name,
            )
        engine.schedule(HOUR, kill, label="test:kill")
        engine.run()
        summary = manager.summary()
        assert summary.spare_promotions == 1
        lines = gang_lines(log_bus)
        assert any("promoted spare" in m for m in lines)
        # The healthy ex-failed node refills the pool at cordon expiry.
        assert sum("reserved" in m for m in lines) == 2

    def test_backoff_schedule_is_reproducible(self):
        policy = quick_policy(max_retries=3, backoff_base_seconds=60.0,
                              backoff_factor=2.0)
        assert policy.backoff_delays() == (60.0, 120.0, 240.0)
        # Identical policies always yield the identical schedule.
        assert policy.backoff_delays() == quick_policy(
            max_retries=3, backoff_base_seconds=60.0, backoff_factor=2.0
        ).backoff_delays()

    def test_degradation_when_capacity_gone(self):
        # 2 four-way nodes, no spares: after the failed node is
        # cordoned, a 2-node gang can never fit again — it must degrade
        # to 1 node and still finish.
        policy = quick_policy(spare_nodes=0, max_retries=1,
                              cordon_minutes=10_000.0)
        engine, cluster, scheduler, log_bus, manager = arm_manager(
            policy, four_way=2
        )

        def kill():
            scheduler.kill_job(
                GANG_JOB_ID_BASE + 1000, EventClass.DBE, node_failure=True,
                node=cluster.gpu_nodes()[0].name,
            )
        engine.schedule(HOUR, kill, label="test:kill")
        engine.run()
        summary = manager.summary()
        assert summary.degradations == 1
        assert summary.completed == 1
        assert any("degrading to 1 nodes" in m for m in gang_lines(log_bus))


class TestPresets:
    def test_preset_names(self):
        assert sorted(RECOVERY_PRESETS) == [
            "a100", "fast-detect", "fixed-2h", "no-spare", "undetected-hang",
        ]

    def test_presets_are_valid_policies(self):
        for name, policy in RECOVERY_PRESETS.items():
            assert policy.backoff_delays(), name
            assert policy.checkpoint.interval_seconds_for(
                policy.gang.gang_nodes
            ) > 0, name


class TestStudyIntegration:
    def _config(self, seed=42):
        cfg = StudyConfig.small(
            seed=seed, pre_days=2.0, op_days=8.0, job_scale=0.05,
            include_episode=False,
        )
        return dataclasses.replace(cfg, recovery=RECOVERY_PRESETS["a100"])

    def test_same_seed_runs_are_byte_identical(self):
        first = DeltaStudy(self._config()).run(None)
        second = DeltaStudy(self._config()).run(None)
        a = json.dumps(first.result_payload(), sort_keys=True)
        b = json.dumps(second.result_payload(), sort_keys=True)
        assert a == b
        assert "recovery" in first.result_payload()

    def test_non_recovery_payload_has_no_recovery_key(self):
        cfg = StudyConfig.small(
            seed=42, pre_days=2.0, op_days=8.0, job_scale=0.05,
            include_episode=False,
        )
        artifacts = DeltaStudy(cfg).run(None)
        assert artifacts.recovery is None
        assert "recovery" not in artifacts.result_payload()
