"""Unit tests for the SRE ops automaton (repro.ops.manager)."""

from typing import Callable, Dict, List

import numpy as np
import pytest

from repro.cluster.node import NodeState
from repro.cluster.topology import Cluster
from repro.core.periods import StudyWindow
from repro.core.timebase import DAY, HOUR
from repro.core.xid import EventClass
from repro.ops.manager import OpsManager, OpsPolicy
from repro.ops.repair import RecoveryKind, RepairTimeConfig, RepairTimeModel
from repro.sim.engine import Engine


class FakeScheduler:
    """Minimal SchedulerControl double with scriptable occupancy."""

    def __init__(self) -> None:
        self.drained: List[str] = []
        self.returned: List[str] = []
        self.jobs: Dict[str, int] = {}
        self._callbacks: Dict[str, List[Callable[[], None]]] = {}

    def drain_node(self, node: str) -> None:
        self.drained.append(node)

    def jobs_running_on(self, node: str) -> int:
        return self.jobs.get(node, 0)

    def notify_when_empty(self, node: str, callback) -> None:
        if self.jobs_running_on(node) == 0:
            callback()
        else:
            self._callbacks.setdefault(node, []).append(callback)

    def node_returned(self, node: str) -> None:
        self.returned.append(node)

    def finish_jobs(self, node: str) -> None:
        self.jobs[node] = 0
        for callback in self._callbacks.pop(node, []):
            callback()


def build_ops(
    window=None,
    policy=None,
    repair_config=None,
    horizon=30 * DAY,
):
    window = window or StudyWindow.scaled(pre_days=10, op_days=20)
    engine = Engine(horizon=horizon)
    cluster = Cluster.small(four_way=2, eight_way=0, cpu=0)
    scheduler = FakeScheduler()
    events: List[str] = []
    ops = OpsManager(
        engine=engine,
        cluster=cluster,
        scheduler=scheduler,
        repair_model=RepairTimeModel(
            repair_config or RepairTimeConfig(replacement_probability=0.0),
            np.random.default_rng(1),
        ),
        policy=policy or OpsPolicy(detection_latency_mean_s=60.0),
        window=window,
        rng=np.random.default_rng(2),
        on_event=lambda t, n, m: events.append(m),
    )
    return engine, cluster, scheduler, ops, events


class TestRecoveryLifecycle:
    def test_full_cycle_produces_downtime_record(self):
        engine, cluster, scheduler, ops, events = build_ops()
        accepted = ops.request_recovery(
            "gpua001", EventClass.GSP_ERROR, RecoveryKind.REBOOT, gpu_index=0
        )
        assert accepted
        engine.run()
        assert len(ops.downtime_records) == 1
        record = ops.downtime_records[0]
        assert record.node == "gpua001"
        assert record.cause is EventClass.GSP_ERROR
        assert record.duration > 0
        assert cluster.node("gpua001").state is NodeState.IDLE
        assert scheduler.drained == ["gpua001"]
        assert scheduler.returned == ["gpua001"]

    def test_log_lines_emitted(self):
        engine, _, _, ops, events = build_ops()
        ops.request_recovery("gpua001", EventClass.GSP_ERROR, RecoveryKind.REBOOT)
        engine.run()
        assert any("drain node gpua001" in m for m in events)
        assert any("out of service" in m for m in events)
        assert any("returned to service" in m for m in events)

    def test_duplicate_requests_coalesced(self):
        engine, _, _, ops, _ = build_ops()
        assert ops.request_recovery(
            "gpua001", EventClass.GSP_ERROR, RecoveryKind.REBOOT
        )
        assert not ops.request_recovery(
            "gpua001", EventClass.MMU_ERROR, RecoveryKind.RESET
        )
        engine.run()
        assert len(ops.downtime_records) == 1

    def test_waits_for_running_jobs_before_downtime(self):
        engine, cluster, scheduler, ops, _ = build_ops()
        scheduler.jobs["gpua001"] = 2
        ops.request_recovery("gpua001", EventClass.MMU_ERROR, RecoveryKind.RESET)
        engine.run(until=4 * HOUR)
        # Drained but not yet down: jobs still running.
        assert cluster.node("gpua001").state is NodeState.DRAINING
        assert not ops.downtime_records
        scheduler.finish_jobs("gpua001")
        engine.run()
        assert len(ops.downtime_records) == 1

    def test_is_recovering(self):
        engine, _, _, ops, _ = build_ops()
        ops.request_recovery("gpua001", EventClass.GSP_ERROR, RecoveryKind.REBOOT)
        assert ops.is_recovering("gpua001")
        engine.run()
        assert not ops.is_recovering("gpua001")

    def test_replacement_swaps_serial(self):
        engine, cluster, _, ops, events = build_ops()
        before = cluster.node("gpua001").gpu(1).serial
        ops.request_recovery(
            "gpua001",
            EventClass.ROW_REMAP_FAILURE,
            RecoveryKind.REPLACE,
            gpu_index=1,
        )
        engine.run()
        after = cluster.node("gpua001").gpu(1).serial
        assert after != before
        assert ops.downtime_records[0].gpu_replaced
        assert any("after gpu swap" in m for m in events)


class TestMonitoringPolicy:
    def test_pre_op_uncontained_unmonitored(self):
        engine, _, _, ops, _ = build_ops()
        # Default policy: uncontained errors not monitored pre-op.
        accepted = ops.request_recovery(
            "gpua001", EventClass.UNCONTAINED_MEMORY_ERROR, RecoveryKind.RESET
        )
        assert not accepted
        engine.run()
        assert not ops.downtime_records

    def test_pre_op_uncontained_forced(self):
        engine, _, _, ops, _ = build_ops()
        accepted = ops.request_recovery(
            "gpua001",
            EventClass.UNCONTAINED_MEMORY_ERROR,
            RecoveryKind.REPLACE,
            force=True,
        )
        assert accepted
        engine.run()
        assert len(ops.downtime_records) == 1

    def test_operational_uncontained_monitored(self):
        window = StudyWindow.scaled(pre_days=1, op_days=29)
        engine, _, _, ops, _ = build_ops(window=window)
        engine.run(until=2 * DAY)  # into the operational period
        accepted = ops.request_recovery(
            "gpua001", EventClass.UNCONTAINED_MEMORY_ERROR, RecoveryKind.RESET
        )
        assert accepted

    def test_monitor_flag_enables_pre_op_coverage(self):
        engine, _, _, ops, _ = build_ops(
            policy=OpsPolicy(monitor_uncontained_pre_op=True)
        )
        accepted = ops.request_recovery(
            "gpua001", EventClass.UNCONTAINED_MEMORY_ERROR, RecoveryKind.RESET
        )
        assert accepted


class TestRrfEscalation:
    def test_repeat_rrf_triggers_replacement(self):
        engine, cluster, _, ops, _ = build_ops(
            policy=OpsPolicy(replace_after_rrf=2, detection_latency_mean_s=10.0)
        )
        before = cluster.node("gpua001").gpu(0).serial
        ops.record_rrf("gpua001", 0)
        assert not ops.is_recovering("gpua001")
        ops.record_rrf("gpua001", 0)
        assert ops.is_recovering("gpua001")
        engine.run()
        assert cluster.node("gpua001").gpu(0).serial != before

    def test_rrf_counts_are_per_serial(self):
        engine, cluster, _, ops, _ = build_ops(
            policy=OpsPolicy(replace_after_rrf=2, detection_latency_mean_s=10.0)
        )
        ops.record_rrf("gpua001", 0)
        ops.record_rrf("gpua001", 1)
        assert not ops.is_recovering("gpua001")


class TestPolicyValidation:
    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            OpsPolicy(detection_latency_mean_s=-1.0)

    def test_zero_rrf_threshold_rejected(self):
        with pytest.raises(ValueError):
            OpsPolicy(replace_after_rrf=0)

    def test_total_downtime_hours(self):
        engine, _, _, ops, _ = build_ops()
        ops.request_recovery("gpua001", EventClass.GSP_ERROR, RecoveryKind.REBOOT)
        ops.request_recovery("gpua002", EventClass.GSP_ERROR, RecoveryKind.REBOOT)
        engine.run()
        total = sum(r.duration_hours for r in ops.downtime_records)
        assert ops.total_downtime_hours == pytest.approx(total)
