"""Unit tests for study periods (repro.core.periods)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.periods import Period, PeriodName, StudyWindow
from repro.core.timebase import DAY, HOUR


class TestPeriod:
    def test_duration_properties(self):
        period = Period(PeriodName.OPERATIONAL, 0.0, 48 * HOUR)
        assert period.duration == 48 * HOUR
        assert period.duration_hours == 48.0
        assert period.duration_days == 2.0

    def test_empty_period_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Period(PeriodName.OPERATIONAL, 10.0, 10.0)

    def test_contains_half_open(self):
        period = Period(PeriodName.OPERATIONAL, 100.0, 200.0)
        assert period.contains(100.0)
        assert period.contains(199.999)
        assert not period.contains(200.0)
        assert not period.contains(99.999)

    def test_clip_full_overlap(self):
        period = Period(PeriodName.OPERATIONAL, 100.0, 200.0)
        assert period.clip(0.0, 300.0) == 100.0

    def test_clip_partial_overlap(self):
        period = Period(PeriodName.OPERATIONAL, 100.0, 200.0)
        assert period.clip(150.0, 250.0) == 50.0

    def test_clip_no_overlap(self):
        period = Period(PeriodName.OPERATIONAL, 100.0, 200.0)
        assert period.clip(300.0, 400.0) == 0.0

    @given(
        st.floats(min_value=0, max_value=1000),
        st.floats(min_value=0, max_value=1000),
    )
    def test_clip_never_negative(self, a, b):
        period = Period(PeriodName.OPERATIONAL, 100.0, 200.0)
        assert period.clip(min(a, b), max(a, b)) >= 0.0


class TestDeltaWindow:
    def test_total_days_matches_paper(self):
        window = StudyWindow.delta_default()
        # Paper: 1170-day measurement period.
        assert window.total_days == pytest.approx(1169, abs=2)

    def test_pre_op_is_january_to_october_2022(self):
        window = StudyWindow.delta_default()
        assert window.pre_operational.start == 0.0
        assert window.pre_operational.duration_days == pytest.approx(273, abs=1)

    def test_operational_is_895_days(self):
        window = StudyWindow.delta_default()
        # Paper Section IV: "895 days operational period".
        assert window.operational.duration_days == pytest.approx(895, abs=2)

    def test_period_of_boundaries(self):
        window = StudyWindow.delta_default()
        boundary = window.operational.start
        assert window.period_of(boundary - 1) is PeriodName.PRE_OPERATIONAL
        assert window.period_of(boundary) is PeriodName.OPERATIONAL
        assert window.period_of(window.end + 100) is PeriodName.OPERATIONAL

    def test_iteration_order(self):
        window = StudyWindow.delta_default()
        names = [p.name for p in window]
        assert names == [PeriodName.PRE_OPERATIONAL, PeriodName.OPERATIONAL]

    def test_as_tuple(self):
        window = StudyWindow.delta_default()
        pre, op = window.as_tuple()
        assert pre.name is PeriodName.PRE_OPERATIONAL
        assert op.name is PeriodName.OPERATIONAL


class TestScaledWindow:
    def test_scaled_durations(self):
        window = StudyWindow.scaled(pre_days=10, op_days=30)
        assert window.pre_operational.duration_days == pytest.approx(10)
        assert window.operational.duration_days == pytest.approx(30)
        assert window.total_days == pytest.approx(40)

    def test_contiguity_enforced(self):
        pre = Period(PeriodName.PRE_OPERATIONAL, 0.0, 10 * DAY)
        op = Period(PeriodName.OPERATIONAL, 11 * DAY, 20 * DAY)
        with pytest.raises(ValueError, match="contiguous"):
            StudyWindow(pre_operational=pre, operational=op)

    def test_period_lookup(self):
        window = StudyWindow.scaled(pre_days=5, op_days=5)
        assert (
            window.period(PeriodName.PRE_OPERATIONAL) is window.pre_operational
        )
        assert window.period(PeriodName.OPERATIONAL) is window.operational
