"""Integration tests for the design-choice ablations (DESIGN.md A1–A5).

Each test runs paired configurations differing in exactly one
mechanism and checks the direction (and rough size) of the effect —
the same comparisons the ablation benchmarks print.
"""

from dataclasses import replace

import pytest

from repro import DeltaStudy, StudyConfig
from repro.analysis import JobImpactAnalysis
from repro.calibration.delta import delta_fault_suite
from repro.core.periods import PeriodName
from repro.core.xid import EventClass
from repro.faults.config import UtilizationCouplingConfig
from repro.gpu.memory import MemoryRecoveryConfig
from repro.pipeline.coalesce import WindowMode, coalesce
from repro.pipeline.extract import XidExtractor
from repro.pipeline.run import run_pipeline


def run_small(tmp_path, name, **config_kwargs):
    out = tmp_path / name
    config = StudyConfig.small(seed=77, **config_kwargs)
    artifacts = DeltaStudy(config).run(out)
    return artifacts, run_pipeline(out)


class TestCoalescingWindowAblation:
    """A1: error counts are highly sensitive to the coalescing Δt."""

    @pytest.fixture(scope="class")
    def hits(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("a1")
        config = StudyConfig.small(seed=5, include_episode=True, job_scale=0.005)
        DeltaStudy(config).run(out)
        from repro.cluster.inventory import Inventory

        extractor = XidExtractor(Inventory.load(out / "inventory.json"))
        return list(extractor.extract_directory(out / "syslog"))

    def test_no_coalescing_overcounts_massively(self, hits):
        raw = coalesce(hits, window_seconds=0.0)
        standard = coalesce(hits, window_seconds=30.0)
        # Duplicate bursts mean the uncoalesced count is far larger.
        assert len(raw) > 2.5 * len(standard)

    def test_counts_monotone_in_window(self, hits):
        counts = [
            len(coalesce(hits, window_seconds=w)) for w in (0.0, 10.0, 30.0, 120.0, 600.0)
        ]
        assert counts == sorted(counts, reverse=True)

    def test_sliding_window_collapses_episode(self, hits):
        episode_hits = [
            h for h in hits
            if h.event_class is EventClass.UNCONTAINED_MEMORY_ERROR
        ]
        tumbling = coalesce(episode_hits, window_seconds=30.0)
        sliding = coalesce(
            episode_hits, window_seconds=30.0, mode=WindowMode.SLIDING
        )
        # The persistent episode keeps gaps at/below Δt most of the
        # time, so sliding merges essentially everything.
        assert len(sliding) < 0.2 * len(tumbling)


class TestAttributionWindowAblation:
    """A2: Table II is stable in the window but degrades when huge."""

    @pytest.fixture(scope="class")
    def run(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("a2")
        config = StudyConfig.small(seed=21, job_scale=0.04)
        artifacts = DeltaStudy(config).run(out)
        return artifacts, run_pipeline(out)

    def test_failed_jobs_monotone_in_window(self, run):
        artifacts, result = run
        totals = []
        for seconds in (5.0, 20.0, 120.0):
            impact = JobImpactAnalysis(
                result.errors,
                result.jobs,
                artifacts.window,
                attribution_window_seconds=seconds,
            ).run()
            totals.append(impact.total_gpu_failed_jobs)
        assert totals == sorted(totals)

    def test_tiny_window_misses_kills(self, run):
        artifacts, result = run
        # Kill delays are uniform in (0.5, 12) s; a 1-second window
        # must miss most of them.
        narrow = JobImpactAnalysis(
            result.errors, result.jobs, artifacts.window,
            attribution_window_seconds=1.0,
        ).run()
        standard = JobImpactAnalysis(
            result.errors, result.jobs, artifacts.window
        ).run()
        assert narrow.total_gpu_failed_jobs < 0.5 * standard.total_gpu_failed_jobs


class TestCrcAblation:
    """A3: disabling NVLink CRC retry raises job-failure probability."""

    def _nvlink_probability(self, tmp_path, crc_enabled: bool):
        suite = delta_fault_suite(include_episode=False)
        link_model = replace(
            suite.nvlink.link_model, crc_retry_enabled=crc_enabled
        )
        nvlink = replace(suite.nvlink, link_model=link_model)
        suite = replace(suite, nvlink=nvlink)
        config = StudyConfig.small(seed=13, job_scale=0.05)
        config = replace(config, fault_suite=suite)
        out = tmp_path / f"crc_{crc_enabled}"
        artifacts = DeltaStudy(config).run(out)
        result = run_pipeline(out)
        impact = JobImpactAnalysis(
            result.errors, result.jobs, artifacts.window
        ).run()
        nv = impact.per_class.get(EventClass.NVLINK_ERROR)
        return nv.failure_probability if nv else None, (
            nv.jobs_encountering if nv else 0
        )

    def test_crc_off_is_deadlier(self, tmp_path):
        p_on, n_on = self._nvlink_probability(tmp_path, True)
        p_off, n_off = self._nvlink_probability(tmp_path, False)
        assert n_on >= 10 and n_off >= 10
        assert p_off > p_on


class TestRecoveryAblation:
    """A4: without remapping/containment every uncorrectable error
    forces a reset (the Kepler-era behaviour)."""

    def _memory_outcomes(self, tmp_path, enabled: bool):
        suite = delta_fault_suite(include_episode=False)
        def patch(params):
            recovery = MemoryRecoveryConfig(
                remapping_enabled=enabled,
                containment_enabled=enabled,
                page_offlining_enabled=enabled,
                dbe_xid_probability=params.recovery.dbe_xid_probability,
                containment_success_probability=(
                    params.recovery.containment_success_probability
                ),
                active_touch_probability=params.recovery.active_touch_probability,
            )
            return replace(params, recovery=recovery)

        chain = replace(
            suite.memory_chain,
            pre_op=patch(suite.memory_chain.pre_op),
            op=patch(suite.memory_chain.op),
        )
        suite = replace(suite, memory_chain=chain)
        config = replace(
            StudyConfig.small(seed=31, job_scale=0.01), fault_suite=suite
        )
        out = tmp_path / f"recovery_{enabled}"
        artifacts = DeltaStudy(config).run(out)
        counts = {}
        for event in artifacts.logical_events:
            counts[event.event_class] = counts.get(event.event_class, 0) + 1
        memory_downtime = [
            r
            for r in artifacts.downtime_records
            if r.cause
            in (
                EventClass.UNCORRECTABLE_ECC,
                EventClass.ROW_REMAP_FAILURE,
                EventClass.UNCONTAINED_MEMORY_ERROR,
            )
        ]
        return counts, memory_downtime

    def test_ablated_recovery_forces_resets(self, tmp_path):
        with_counts, with_downtime = self._memory_outcomes(tmp_path, True)
        without_counts, without_downtime = self._memory_outcomes(tmp_path, False)
        # No RREs once remapping is off.
        assert without_counts.get(EventClass.ROW_REMAP_EVENT, 0) == 0
        assert with_counts.get(EventClass.ROW_REMAP_EVENT, 0) > 0
        # Memory-caused node recoveries multiply.
        assert len(without_downtime) > 2 * max(len(with_downtime), 1)


class TestCouplingAblation:
    """A5: the MTBE degradation emerges from the utilization coupling."""

    def test_coupled_gsp_rates_follow_utilization_law(self, tmp_path):
        coupling = UtilizationCouplingConfig()
        suite = delta_fault_suite(
            include_episode=False, utilization_coupling=coupling
        )
        config = replace(
            StudyConfig.small(seed=55, job_scale=0.005), fault_suite=suite
        )
        artifacts = DeltaStudy(config).run(None)
        window = artifacts.window
        gsp = [
            e for e in artifacts.logical_events
            if e.event_class is EventClass.GSP_ERROR
        ]
        pre = sum(1 for e in gsp if e.time < window.operational.start)
        op = len(gsp) - pre
        pre_rate = pre / window.pre_operational.duration_hours
        op_rate = op / window.operational.duration_hours
        assert op_rate / max(pre_rate, 1e-9) == pytest.approx(5.6, rel=0.4)
