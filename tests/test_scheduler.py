"""Unit tests for the Slurm-like scheduler (repro.slurm.scheduler)."""

import pytest

from repro.cluster.topology import Cluster
from repro.core.timebase import HOUR
from repro.core.xid import EventClass
from repro.sim.engine import Engine
from repro.slurm.scheduler import CPU_SLOTS_PER_NODE, Scheduler
from repro.slurm.types import JobRequest, JobState, Partition


def make_env(four_way=2, eight_way=1, cpu=1, horizon=100 * HOUR):
    engine = Engine(horizon=horizon)
    cluster = Cluster.small(four_way=four_way, eight_way=eight_way, cpu=cpu)
    scheduler = Scheduler(engine, cluster)
    return engine, cluster, scheduler


def gpu_job(job_id, gpus=1, duration=HOUR, submit=0.0, fail=False):
    return JobRequest(
        job_id=job_id,
        name=f"job{job_id}",
        user="u0001",
        partition=Partition.GPU_A100_X4,
        submit_time=submit,
        gpu_count=gpus,
        duration=duration,
        intrinsic_failure=fail,
    )


def cpu_job(job_id, duration=HOUR, submit=0.0, fail=False):
    return JobRequest(
        job_id=job_id,
        name=f"cpu{job_id}",
        user="u0002",
        partition=Partition.CPU,
        submit_time=submit,
        gpu_count=0,
        duration=duration,
        intrinsic_failure=fail,
    )


class TestPlacement:
    def test_single_gpu_job_runs_and_completes(self):
        engine, cluster, scheduler = make_env()
        scheduler.submit(gpu_job(1))
        assert scheduler.running_count == 1
        engine.run()
        assert len(scheduler.records) == 1
        record = scheduler.records[0]
        assert record.state is JobState.COMPLETED
        assert record.exit_code == 0
        assert record.gpu_count == 1
        assert record.elapsed == pytest.approx(HOUR)

    def test_gpu_marked_busy_then_released(self):
        engine, cluster, scheduler = make_env()
        scheduler.submit(gpu_job(1, gpus=4))
        busy = [g for g in cluster.gpus() if g.busy]
        assert len(busy) == 4
        engine.run()
        assert not any(g.busy for g in cluster.gpus())

    def test_intrinsic_failure_recorded(self):
        engine, _, scheduler = make_env()
        scheduler.submit(gpu_job(1, fail=True))
        engine.run()
        record = scheduler.records[0]
        assert record.state is JobState.FAILED
        assert record.exit_code == 1

    def test_five_to_eight_gpu_jobs_prefer_eight_way(self):
        engine, cluster, scheduler = make_env()
        scheduler.submit(gpu_job(1, gpus=6))
        jobs = scheduler.jobs_on_node("gpuc001")
        assert jobs  # landed on the 8-way node

    def test_multi_node_job_takes_whole_nodes(self):
        engine, cluster, scheduler = make_env(four_way=4, eight_way=0)
        scheduler.submit(gpu_job(1, gpus=12))
        record_nodes = set()
        for node in cluster.gpu_nodes():
            if scheduler.jobs_on_node(node.name):
                record_nodes.add(node.name)
        assert len(record_nodes) == 3  # 12 GPUs over 4-way nodes

    def test_queueing_when_full(self):
        engine, _, scheduler = make_env(four_way=1, eight_way=0)
        scheduler.submit(gpu_job(1, gpus=4, duration=2 * HOUR))
        scheduler.submit(gpu_job(2, gpus=4, duration=HOUR))
        assert scheduler.running_count == 1
        assert scheduler.queued_count == 1
        engine.run()
        assert len(scheduler.records) == 2
        second = next(r for r in scheduler.records if r.job_id == 2)
        assert second.start_time == pytest.approx(2 * HOUR)

    def test_small_job_backfills_past_blocked_big_job(self):
        engine, _, scheduler = make_env(four_way=1, eight_way=0)
        scheduler.submit(gpu_job(1, gpus=3, duration=5 * HOUR))
        scheduler.submit(gpu_job(2, gpus=4, duration=HOUR))  # cannot fit
        scheduler.submit(gpu_job(3, gpus=1, duration=HOUR))  # fits now
        assert scheduler.running_count == 2
        assert scheduler.queued_count == 1

    def test_allocation_records_gpu_indices(self):
        engine, _, scheduler = make_env()
        scheduler.submit(gpu_job(1, gpus=2))
        engine.run()
        allocation = scheduler.records[0].allocation
        node = allocation.nodes[0]
        assert len(allocation.gpus_on(node)) == 2


class TestCpuJobs:
    def test_cpu_job_completes(self):
        engine, _, scheduler = make_env()
        scheduler.submit(cpu_job(1))
        engine.run()
        assert scheduler.records[0].state is JobState.COMPLETED
        assert scheduler.records[0].gpu_count == 0

    def test_cpu_slots_limit(self):
        engine, _, scheduler = make_env(cpu=1)
        for i in range(CPU_SLOTS_PER_NODE + 3):
            scheduler.submit(cpu_job(i + 1, duration=10 * HOUR))
        assert scheduler.running_count == CPU_SLOTS_PER_NODE
        assert scheduler.queued_count == 3


class TestKills:
    def test_kill_running_job(self):
        engine, _, scheduler = make_env()
        scheduler.submit(gpu_job(1, duration=10 * HOUR))
        engine.schedule(
            HOUR, lambda: scheduler.kill_job(1, EventClass.GSP_ERROR, True)
        )
        engine.run()
        record = scheduler.records[0]
        assert record.state is JobState.NODE_FAIL
        assert record.exit_code == 137
        assert record.killed_by is EventClass.GSP_ERROR
        assert record.elapsed == pytest.approx(HOUR)

    def test_kill_finished_job_is_noop(self):
        engine, _, scheduler = make_env()
        scheduler.submit(gpu_job(1, duration=HOUR))
        engine.run()
        assert not scheduler.kill_job(1, EventClass.GSP_ERROR)
        assert scheduler.records[0].state is JobState.COMPLETED

    def test_kill_releases_resources_for_queue(self):
        engine, _, scheduler = make_env(four_way=1, eight_way=0)
        scheduler.submit(gpu_job(1, gpus=4, duration=10 * HOUR))
        scheduler.submit(gpu_job(2, gpus=4, duration=HOUR))
        engine.schedule(
            HOUR, lambda: scheduler.kill_job(1, EventClass.FALLEN_OFF_BUS, True)
        )
        engine.run()
        second = next(r for r in scheduler.records if r.job_id == 2)
        assert second.state is JobState.COMPLETED
        assert second.start_time == pytest.approx(HOUR)


class TestFaultQueries:
    def test_jobs_using_gpu(self):
        engine, _, scheduler = make_env()
        scheduler.submit(gpu_job(1, gpus=2))
        node = [n for n in ("gpua001", "gpua002", "gpuc001") if scheduler.jobs_on_node(n)][0]
        assert scheduler.jobs_using_gpu(node, 0) == [1]
        assert scheduler.jobs_using_gpu(node, 3) == []

    def test_job_gpu_count(self):
        engine, _, scheduler = make_env()
        scheduler.submit(gpu_job(1, gpus=3))
        assert scheduler.job_gpu_count(1) == 3
        assert scheduler.job_gpu_count(999) == 0

    def test_gpu_busy_fraction(self):
        engine, cluster, scheduler = make_env(four_way=2, eight_way=0, cpu=0)
        assert scheduler.gpu_busy_fraction() == 0.0
        scheduler.submit(gpu_job(1, gpus=4))
        assert scheduler.gpu_busy_fraction() == pytest.approx(0.5)

    def test_nodes_with_multi_gpu_jobs(self):
        engine, _, scheduler = make_env()
        scheduler.submit(gpu_job(1, gpus=1))
        scheduler.submit(gpu_job(2, gpus=2))
        nodes = scheduler.nodes_with_multi_gpu_jobs()
        assert len(nodes) == 1


class TestDrainProtocol:
    def test_drained_node_receives_no_work(self):
        engine, _, scheduler = make_env(four_way=1, eight_way=0, cpu=0)
        scheduler.drain_node("gpua001")
        scheduler.submit(gpu_job(1))
        assert scheduler.running_count == 0
        assert scheduler.queued_count == 1
        scheduler.node_returned("gpua001")
        assert scheduler.running_count == 1

    def test_notify_when_empty_immediate(self):
        engine, _, scheduler = make_env()
        fired = []
        scheduler.notify_when_empty("gpua001", lambda: fired.append(1))
        assert fired == [1]

    def test_notify_when_empty_deferred(self):
        engine, _, scheduler = make_env()
        scheduler.submit(gpu_job(1, duration=HOUR))
        node = next(
            name
            for name in ("gpua001", "gpua002", "gpuc001")
            if scheduler.jobs_on_node(name)
        )
        fired = []
        scheduler.notify_when_empty(node, lambda: fired.append(1))
        assert fired == []
        engine.run()
        assert fired == [1]

    def test_jobs_running_on(self):
        engine, _, scheduler = make_env()
        scheduler.submit(gpu_job(1))
        total = sum(
            scheduler.jobs_running_on(n) for n in ("gpua001", "gpua002", "gpuc001")
        )
        assert total == 1
