"""Unit tests for checkpoint-interval economics (repro.analysis.checkpoint)."""

import json
import math

import pytest

from repro.analysis.checkpoint import (
    DEFAULT_GRID_STEPS,
    GoodputModel,
    calibrated_model,
    daly_interval_hours,
    default_interval_grid,
    gang_mtbf_hours,
    sweep,
    young_interval_hours,
)
from repro.core.exceptions import AnalysisError


class TestClosedForms:
    def test_young_formula(self):
        # T = sqrt(2 w M): w = 6 min = 0.1 h, M = 80 h -> 4 h.
        assert young_interval_hours(6.0, 80.0) == pytest.approx(4.0)

    def test_young_rejects_non_positive(self):
        with pytest.raises(AnalysisError):
            young_interval_hours(0.0, 80.0)
        with pytest.raises(AnalysisError):
            young_interval_hours(6.0, 0.0)

    def test_daly_close_to_young_when_write_small(self):
        young = young_interval_hours(4.0, 154.0)
        daly = daly_interval_hours(4.0, 154.0)
        assert daly == pytest.approx(young, rel=0.05)
        assert daly < young  # the refinement shaves the interval

    def test_daly_pathological_regime(self):
        # Write cost beyond 2*MTBF: prescription collapses to the MTBF.
        assert daly_interval_hours(300.0, 1.0) == pytest.approx(1.0)

    def test_gang_mtbf_scales_inversely_with_size(self):
        assert gang_mtbf_hours(154.0, 1) == pytest.approx(154.0)
        assert gang_mtbf_hours(154.0, 4) == pytest.approx(38.5)
        with pytest.raises(AnalysisError):
            gang_mtbf_hours(154.0, 0)


class TestGoodputModel:
    def test_rejects_nan_and_negative(self):
        with pytest.raises(AnalysisError):
            GoodputModel(mtbf_hours=float("nan"))
        with pytest.raises(AnalysisError):
            GoodputModel(mtbf_hours=77.0, write_minutes=-1.0)
        with pytest.raises(AnalysisError):
            GoodputModel(mtbf_hours=0.0)

    def test_ettr_is_interval_independent(self):
        model = GoodputModel(
            mtbf_hours=77.0, detect_minutes=2.0, resched_minutes=5.0,
            restore_minutes=10.0,
        )
        assert model.ettr_minutes == pytest.approx(17.0)

    def test_goodput_bounded_and_finite(self):
        model = GoodputModel(mtbf_hours=77.0)
        for interval in (0.1, 1.0, 10.0, 100.0):
            g = model.goodput(interval)
            assert 0.0 <= g <= 1.0
            assert math.isfinite(g)

    def test_goodput_rejects_non_positive_interval(self):
        with pytest.raises(AnalysisError):
            GoodputModel(mtbf_hours=77.0).goodput(0.0)

    def test_goodput_peaks_near_young(self):
        # The analytic curve's argmax sits at the Young point to first
        # order: goodput at Young beats both a much shorter and a much
        # longer interval.
        model = GoodputModel(mtbf_hours=77.0, write_minutes=4.0)
        young = model.young_hours()
        at_young = model.goodput(young)
        assert at_young > model.goodput(young / 4.0)
        assert at_young > model.goodput(young * 4.0)


class TestSweep:
    def test_default_grid_is_half_octave_centred_on_young(self):
        model = GoodputModel(mtbf_hours=77.0)
        grid = default_interval_grid(model)
        assert len(grid) == len(DEFAULT_GRID_STEPS)
        assert model.young_hours() in grid
        ratios = [b / a for a, b in zip(grid, grid[1:])]
        assert all(r == pytest.approx(math.sqrt(2.0)) for r in ratios)

    def test_calibrated_optimum_within_one_step_of_young(self):
        # The acceptance contract of `repro recover-sweep`: on the
        # calibrated A100 model the swept optimum brackets Young/Daly.
        report = sweep(calibrated_model(gang_nodes=2))
        assert report.optimal_within_one_step_of_young()
        assert report.optimal_row.interval_hours == pytest.approx(
            report.optimal_interval_hours
        )

    def test_optimum_holds_across_gang_sizes(self):
        for gang_nodes in (1, 2, 4, 8):
            report = sweep(calibrated_model(gang_nodes=gang_nodes))
            assert report.optimal_within_one_step_of_young(), gang_nodes

    def test_explicit_grid_is_sorted_into_rows(self):
        report = sweep(GoodputModel(mtbf_hours=77.0), [4.0, 1.0, 2.0])
        assert [r.interval_hours for r in report.rows] == [1.0, 2.0, 4.0]

    def test_empty_grid_rejected(self):
        with pytest.raises(AnalysisError):
            sweep(GoodputModel(mtbf_hours=77.0), [])

    def test_json_roundtrip_and_markdown(self):
        report = sweep(calibrated_model(gang_nodes=2))
        doc = json.loads(report.to_json())
        assert doc["optimal_matches_young"] is True
        assert len(doc["rows"]) == len(report.rows)
        markdown = report.render_markdown()
        assert "Young optimum" in markdown
        assert "within one sweep step" in markdown


class TestCalibratedModel:
    def test_uses_paper_headline_mtbe_by_default(self):
        from repro.calibration.paper import HEADLINE

        model = calibrated_model(gang_nodes=2)
        assert model.mtbf_hours == pytest.approx(
            HEADLINE.op_per_node_mtbe_hours / 2.0
        )

    def test_explicit_mtbe_override(self):
        model = calibrated_model(gang_nodes=4, per_node_mtbe_hours=100.0)
        assert model.mtbf_hours == pytest.approx(25.0)
