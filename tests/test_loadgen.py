"""Unit tests for the load harness (repro.loadgen).

The harness is exercised against a real in-process
:class:`~repro.stream.serve.FleetHealthServer` with stub routes, so
tests stay fast while still covering sockets, keep-alive, and the HTTP
status paths.
"""

import json

import pytest

from repro.cli import main
from repro.core.exceptions import ReproError
from repro.loadgen import (
    LoadConfig,
    build_report,
    check_service,
    jain_fairness,
    run_load,
)
from repro.loadgen.harness import TRANSPORT_ERROR, _build_schedule
from repro.stream import FleetHealthServer, json_route


@pytest.fixture()
def stub_service():
    """A fake fleet-health service: healthz, data routes, slo."""
    server = FleetHealthServer(
        {
            "/healthz": json_route(lambda: {"status": "ok"}),
            "/v1/fleet": json_route(lambda: {"report": {"x": 1}}),
            "/v1/alerts": json_route(lambda: {"rules": []}),
            "/v1/slo": json_route(
                lambda: {
                    "schema": "repro-slo-v1",
                    "objectives": [
                        {
                            "name": "fleet-availability",
                            "verdict": "pass",
                            "compliance": 1.0,
                            "error_budget_spent": 0.0,
                            "alerting": False,
                        }
                    ],
                    "alerts": [],
                }
            ),
        },
        port=0,
    )
    server.start()
    yield f"http://127.0.0.1:{server.port}"
    server.stop()


def _config(url, **overrides):
    defaults = dict(
        url=url, pollers=4, duration_seconds=0.4, seed=3,
        timeout_seconds=5.0,
    )
    defaults.update(overrides)
    return LoadConfig(**defaults)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="mode"):
            LoadConfig(mode="burst")
        with pytest.raises(ValueError, match="pollers"):
            LoadConfig(pollers=0)
        with pytest.raises(ValueError, match="duration"):
            LoadConfig(duration_seconds=0)
        with pytest.raises(ValueError, match="rate"):
            LoadConfig(mode="open", rate=0)
        with pytest.raises(ValueError, match="routes"):
            LoadConfig(routes=())

    def test_host_port_parsing(self):
        assert LoadConfig(url="http://10.1.2.3:9999").host_port == (
            "10.1.2.3", 9999,
        )
        assert LoadConfig(url="http://example.org").host_port == (
            "example.org", 80,
        )


class TestSchedule:
    def test_deterministic_for_seed(self):
        config = LoadConfig(mode="open", rate=500.0, duration_seconds=1.0, seed=9)
        assert _build_schedule(config) == _build_schedule(config)
        other = LoadConfig(mode="open", rate=500.0, duration_seconds=1.0, seed=10)
        assert _build_schedule(other) != _build_schedule(config)

    def test_arrivals_inside_duration_and_sorted(self):
        config = LoadConfig(mode="open", rate=200.0, duration_seconds=2.0, seed=1)
        schedule = _build_schedule(config)
        offsets = [offset for offset, _ in schedule]
        assert offsets == sorted(offsets)
        assert all(0.0 < offset < 2.0 for offset in offsets)
        assert {route for _, route in schedule} <= set(config.routes)


class TestFairness:
    def test_uniform_is_one(self):
        assert jain_fairness([10, 10, 10]) == pytest.approx(1.0)

    def test_starvation_approaches_reciprocal(self):
        assert jain_fairness([40, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([0, 0]) == 1.0


class TestClosedLoop:
    def test_drives_and_reports(self, stub_service):
        result = run_load(_config(stub_service))
        assert result.requests > 0
        assert result.errors == 0
        assert len(result.per_poller_requests) == 4
        assert sum(result.per_poller_requests) == result.requests
        report = build_report(result)
        assert report["schema"] == "repro-loadgen-v1"
        assert report["totals"]["errors"] == 0
        assert report["rates"]["offered_per_sec"] is None
        assert report["rates"]["achieved_per_sec"] > 0
        assert set(report["routes"]) == {"/v1/fleet", "/v1/alerts"}
        for stats in report["routes"].values():
            assert stats["latency_ms"]["p50"] <= stats["latency_ms"]["max"]
        assert 0.0 < report["fairness"]["jain_index"] <= 1.0
        assert report["slo"]["verdicts"]["fleet-availability"]["verdict"] == "pass"
        json.dumps(report)  # schema must be JSON-clean

    def test_http_500s_count_as_errors(self, stub_service):
        def explode():
            raise RuntimeError("nope")

        server = FleetHealthServer({"/bad": json_route(explode)}, port=0)
        server.start()
        try:
            config = _config(
                f"http://127.0.0.1:{server.port}",
                routes=("/bad",),
                duration_seconds=0.3,
                pollers=2,
            )
            result = run_load(config, fetch_slo=False)
            assert result.errors == result.requests > 0
            report = build_report(result)
            assert report["totals"]["error_rate"] == 1.0
            assert report["slo"] is None
        finally:
            server.stop()


class TestOpenLoop:
    def test_executes_schedule(self, stub_service):
        config = _config(
            stub_service, mode="open", rate=100.0, duration_seconds=0.5
        )
        result = run_load(config)
        assert result.offered == len(_build_schedule(config))
        assert result.requests == result.offered
        report = build_report(result)
        assert report["rates"]["offered_per_sec"] == pytest.approx(
            result.offered / 0.5
        )


class TestFailurePaths:
    def test_check_service_raises_on_dead_port(self):
        config = _config("http://127.0.0.1:9", timeout_seconds=0.5)
        with pytest.raises(ReproError, match="cannot reach"):
            check_service(config)

    def test_check_service_ok(self, stub_service):
        health = check_service(_config(stub_service))
        assert health["status"] == "ok"

    def test_transport_failures_counted(self):
        config = _config(
            "http://127.0.0.1:9",
            pollers=1,
            duration_seconds=0.1,
            timeout_seconds=0.2,
        )
        result = run_load(config, fetch_slo=False)
        assert result.requests > 0
        assert result.statuses.get(TRANSPORT_ERROR) == result.requests
        assert result.errors == result.requests


class TestCli:
    def test_unreachable_service_exits_3(self, capsys):
        code = main(
            ["loadgen", "--url", "http://127.0.0.1:9", "--timeout", "0.5"]
        )
        assert code == 3
        assert "cannot reach" in capsys.readouterr().err

    def test_bad_config_exits_2(self, capsys):
        code = main(["loadgen", "--pollers", "0"])
        assert code == 2

    def test_end_to_end_with_report_file(self, stub_service, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(
            [
                "loadgen",
                "--url", stub_service,
                "--pollers", "2",
                "--duration", "0.3",
                "--seed", "11",
                "--out", str(out),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "loadgen report" in printed
        assert "fleet-availability" in printed
        report = json.loads(out.read_text())
        assert report["schema"] == "repro-loadgen-v1"
        assert report["config"]["seed"] == 11
        assert report["totals"]["requests"] > 0
