"""Unit + property tests for error coalescing (repro.pipeline.coalesce)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.xid import EventClass
from repro.pipeline.coalesce import (
    ErrorCoalescer,
    WindowMode,
    coalesce,
    iter_coalesced,
)
from repro.pipeline.extract import ErrorHit


def hit(time, node="gpua001", gpu=0, event=EventClass.MMU_ERROR, xid=31):
    return ErrorHit(
        time=time,
        node=node,
        gpu_index=gpu,
        pci_address="0000:07:00",
        event_class=event,
        xid=xid,
    )


class TestTumblingWindow:
    def test_duplicates_within_window_merge(self):
        errors = coalesce([hit(0.0), hit(5.0), hit(29.9)], window_seconds=30.0)
        assert len(errors) == 1
        assert errors[0].raw_line_count == 3
        assert errors[0].time == 0.0
        assert errors[0].last_time == pytest.approx(29.9)

    def test_hit_after_window_opens_new_error(self):
        errors = coalesce([hit(0.0), hit(30.0)], window_seconds=30.0)
        assert len(errors) == 2

    def test_window_anchored_at_first_hit(self):
        # 0, 25, 50: tumbling merges (0,25), then 50 opens a new error.
        errors = coalesce([hit(0.0), hit(25.0), hit(50.0)], window_seconds=30.0)
        assert len(errors) == 2
        assert errors[0].raw_line_count == 2

    def test_persistent_stream_counts_one_per_window(self):
        # A hit every 10 s for 10 minutes: tumbling yields 1 per 30 s.
        hits = [hit(t) for t in range(0, 600, 10)]
        errors = coalesce(hits, window_seconds=30.0)
        assert len(errors) == 20


class TestSlidingWindow:
    def test_persistent_stream_collapses_to_one(self):
        hits = [hit(float(t)) for t in range(0, 600, 10)]
        errors = coalesce(hits, window_seconds=30.0, mode=WindowMode.SLIDING)
        assert len(errors) == 1
        assert errors[0].raw_line_count == 60

    def test_gap_larger_than_window_splits(self):
        errors = coalesce(
            [hit(0.0), hit(20.0), hit(100.0)],
            window_seconds=30.0,
            mode=WindowMode.SLIDING,
        )
        assert len(errors) == 2


class TestIdentity:
    def test_different_gpus_not_merged(self):
        errors = coalesce([hit(0.0, gpu=0), hit(1.0, gpu=1)])
        assert len(errors) == 2

    def test_different_nodes_not_merged(self):
        errors = coalesce([hit(0.0, node="gpua001"), hit(1.0, node="gpua002")])
        assert len(errors) == 2

    def test_different_classes_not_merged(self):
        errors = coalesce(
            [
                hit(0.0, event=EventClass.MMU_ERROR, xid=31),
                hit(1.0, event=EventClass.NVLINK_ERROR, xid=74),
            ]
        )
        assert len(errors) == 2

    def test_unresolved_gpu_falls_back_to_pci(self):
        a = ErrorHit(0.0, "gpua001", None, "0000:07:00", EventClass.MMU_ERROR, 31)
        b = ErrorHit(1.0, "gpua001", None, "0000:46:00", EventClass.MMU_ERROR, 31)
        c = ErrorHit(2.0, "gpua001", None, "0000:07:00", EventClass.MMU_ERROR, 31)
        errors = coalesce([a, b, c])
        assert len(errors) == 2  # two PCI addresses → two errors


class TestStreamingApi:
    def test_push_returns_completed_groups(self):
        coalescer = ErrorCoalescer(window_seconds=30.0)
        assert coalescer.push(hit(0.0)) is None
        assert coalescer.push(hit(10.0)) is None
        done = coalescer.push(hit(40.0))
        assert done is not None and done.raw_line_count == 2
        remaining = coalescer.flush()
        assert len(remaining) == 1

    def test_out_of_order_input_rejected(self):
        coalescer = ErrorCoalescer()
        coalescer.push(hit(10.0))
        with pytest.raises(ValueError, match="out of order"):
            coalescer.push(hit(5.0))

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            ErrorCoalescer(window_seconds=-1.0)

    def test_iter_coalesced_matches_one_shot(self):
        hits = [hit(float(t)) for t in (0, 5, 40, 41, 100)]
        streamed = sorted(iter_coalesced(hits), key=lambda e: e.time)
        batch = coalesce(hits)
        assert [(e.time, e.raw_line_count) for e in streamed] == [
            (e.time, e.raw_line_count) for e in batch
        ]


class TestZeroWindow:
    def test_zero_window_counts_every_hit(self):
        hits = [hit(float(t)) for t in (0, 0.5, 1, 1.5)]
        errors = coalesce(hits, window_seconds=0.0)
        assert len(errors) == 4


@st.composite
def hit_streams(draw):
    times = draw(
        st.lists(
            st.floats(min_value=0, max_value=5000, allow_nan=False),
            min_size=1,
            max_size=60,
        )
    )
    gpus = draw(
        st.lists(st.integers(min_value=0, max_value=2), min_size=len(times), max_size=len(times))
    )
    return sorted(
        (hit(t, gpu=g) for t, g in zip(times, gpus)), key=lambda h: h.time
    )


class TestProperties:
    @given(hit_streams())
    @settings(max_examples=80)
    def test_raw_lines_conserved(self, hits):
        errors = coalesce(hits, window_seconds=30.0)
        assert sum(e.raw_line_count for e in errors) == len(hits)

    @given(hit_streams())
    @settings(max_examples=80)
    def test_more_coalescing_with_larger_window(self, hits):
        small = coalesce(hits, window_seconds=5.0)
        large = coalesce(hits, window_seconds=300.0)
        assert len(large) <= len(small)

    @given(hit_streams())
    @settings(max_examples=80)
    def test_output_sorted_and_within_input_range(self, hits):
        errors = coalesce(hits, window_seconds=30.0)
        times = [e.time for e in errors]
        assert times == sorted(times)
        if hits:
            assert times[0] >= hits[0].time

    @given(hit_streams())
    @settings(max_examples=50)
    def test_sliding_never_more_groups_than_tumbling(self, hits):
        tumbling = coalesce(hits, window_seconds=30.0, mode=WindowMode.TUMBLING)
        sliding = coalesce(hits, window_seconds=30.0, mode=WindowMode.SLIDING)
        assert len(sliding) <= len(tumbling)
