"""Unit tests for the NVLink fault model (repro.gpu.nvlink)."""

import numpy as np
import pytest

from repro.cluster.topology import Cluster
from repro.gpu.nvlink import NvlinkConfig, NvlinkFaultModel


def make_model(cluster, seed=5, **overrides) -> NvlinkFaultModel:
    config = NvlinkConfig(**overrides)
    return NvlinkFaultModel(cluster, config, np.random.default_rng(seed))


class TestManifestation:
    def test_affected_gpus_valid_indices(self, small_cluster):
        model = make_model(small_cluster)
        for _ in range(200):
            m = model.manifest("gpua001")
            assert all(0 <= i < 4 for i in m.affected_gpus)
            assert len(set(m.affected_gpus)) == len(m.affected_gpus)
            assert m.affected_gpus == tuple(sorted(m.affected_gpus))

    def test_single_gpu_when_multi_prob_zero(self, small_cluster):
        model = make_model(small_cluster, multi_gpu_probability=0.0)
        for _ in range(100):
            assert len(model.manifest("gpua001").affected_gpus) == 1

    def test_at_least_two_when_multi_prob_one(self, small_cluster):
        model = make_model(small_cluster, multi_gpu_probability=1.0)
        for _ in range(100):
            assert len(model.manifest("gpua001").affected_gpus) >= 2

    def test_multi_fraction_statistical(self, small_cluster):
        model = make_model(small_cluster, multi_gpu_probability=0.42)
        manifestations = [model.manifest("gpua001") for _ in range(4000)]
        fraction = NvlinkFaultModel.multi_gpu_fraction(manifestations)
        assert fraction == pytest.approx(0.42, abs=0.03)

    def test_eight_way_node_allows_wider_spread(self, small_cluster):
        model = make_model(
            small_cluster,
            multi_gpu_probability=1.0,
            extra_spread_probability=1.0,
        )
        sizes = {len(model.manifest("gpuc001").affected_gpus) for _ in range(50)}
        assert max(sizes) == 8  # full switch-plane spread

    def test_four_way_spread_capped_at_node_size(self, small_cluster):
        model = make_model(
            small_cluster,
            multi_gpu_probability=1.0,
            extra_spread_probability=1.0,
        )
        for _ in range(50):
            assert len(model.manifest("gpua001").affected_gpus) <= 4


class TestCrcMasking:
    def test_masking_disabled_with_crc_off(self, small_cluster):
        model = make_model(
            small_cluster, crc_retry_enabled=False, retry_success_probability=1.0
        )
        for _ in range(100):
            assert not model.manifest("gpua001").masked_by_retry

    def test_masking_rate_matches_config(self, small_cluster):
        model = make_model(small_cluster, retry_success_probability=0.5)
        masked = sum(
            model.manifest("gpua001").masked_by_retry for _ in range(4000)
        )
        assert masked / 4000 == pytest.approx(0.5, abs=0.04)


class TestHelpers:
    def test_multi_gpu_fraction_empty_is_nan(self):
        assert np.isnan(NvlinkFaultModel.multi_gpu_fraction([]))

    @pytest.mark.parametrize(
        "field",
        [
            "retry_success_probability",
            "multi_gpu_probability",
            "extra_spread_probability",
        ],
    )
    def test_config_validation(self, field):
        with pytest.raises(ValueError, match=field):
            NvlinkConfig(**{field: -0.1})
