"""Unit tests for the A100 memory-recovery chain (repro.gpu.memory)."""

import numpy as np
import pytest

from repro.cluster.gpu import GpuState
from repro.core.xid import EventClass
from repro.gpu.memory import (
    MemoryRecoveryConfig,
    MemoryRecoveryModel,
    MemoryErrorOutcome,
)


def make_gpu(busy: bool = False) -> GpuState:
    gpu = GpuState(node="gpua001", index=0, serial="s0")
    gpu.busy = busy
    return gpu


def make_model(**overrides) -> MemoryRecoveryModel:
    config = MemoryRecoveryConfig(**overrides)
    return MemoryRecoveryModel(config, np.random.default_rng(3))


class TestHappyPath:
    def test_uncorrectable_always_logged_first(self):
        outcome = make_model().process_uncorrectable(
            make_gpu(), touches_active_process=False
        )
        assert outcome.logged_events[0] is EventClass.UNCORRECTABLE_ECC

    def test_successful_remap_logs_rre(self):
        gpu = make_gpu()
        outcome = make_model(dbe_xid_probability=0.0).process_uncorrectable(
            gpu, touches_active_process=False
        )
        assert outcome.remapped
        assert EventClass.ROW_REMAP_EVENT in outcome.logged_events
        assert EventClass.ROW_REMAP_FAILURE not in outcome.logged_events
        assert gpu.remapped_rows == 1
        assert not outcome.needs_reset

    def test_page_offlined_on_successful_remap(self):
        outcome = make_model().process_uncorrectable(
            make_gpu(), touches_active_process=False
        )
        assert outcome.page_offlined


class TestRemapFailure:
    def test_forced_failure_logs_rrf(self):
        outcome = make_model().process_uncorrectable(
            make_gpu(), force_remap_failure=True, touches_active_process=False
        )
        assert outcome.remap_failed
        assert EventClass.ROW_REMAP_FAILURE in outcome.logged_events
        assert outcome.needs_reset

    def test_exhausted_pool_fails_remap(self):
        gpu = make_gpu()
        gpu.spare_rows_left = 0
        outcome = make_model().process_uncorrectable(
            gpu, touches_active_process=False
        )
        assert outcome.remap_failed

    def test_remap_failure_consumes_no_row(self):
        gpu = make_gpu()
        before = gpu.spare_rows_left
        make_model().process_uncorrectable(
            gpu, force_remap_failure=True, touches_active_process=False
        )
        assert gpu.spare_rows_left == before


class TestContainment:
    def test_contained_error_terminates_processes(self):
        outcome = make_model(
            containment_success_probability=1.0
        ).process_uncorrectable(make_gpu(busy=True), touches_active_process=True)
        assert outcome.processes_terminated
        assert EventClass.CONTAINED_MEMORY_ERROR in outcome.logged_events
        assert not outcome.uncontained

    def test_failed_containment_is_uncontained(self):
        outcome = make_model(
            containment_success_probability=0.0
        ).process_uncorrectable(make_gpu(busy=True), touches_active_process=True)
        assert outcome.uncontained
        assert EventClass.UNCONTAINED_MEMORY_ERROR in outcome.logged_events
        assert outcome.needs_reset

    def test_forced_containment_failure(self):
        outcome = make_model(
            containment_success_probability=1.0
        ).process_uncorrectable(
            make_gpu(busy=True),
            touches_active_process=True,
            force_containment_failure=True,
        )
        assert outcome.uncontained

    def test_untouched_error_needs_no_containment(self):
        outcome = make_model().process_uncorrectable(
            make_gpu(busy=True), touches_active_process=False
        )
        assert not outcome.processes_terminated
        assert not outcome.uncontained
        assert EventClass.CONTAINED_MEMORY_ERROR not in outcome.logged_events

    def test_idle_gpu_never_touches_active_process_by_default(self):
        model = make_model(active_touch_probability=1.0)
        outcome = model.process_uncorrectable(make_gpu(busy=False))
        assert not outcome.processes_terminated
        assert not outcome.uncontained


class TestDbeLogging:
    def test_dbe_logged_with_probability_one(self):
        outcome = make_model(dbe_xid_probability=1.0).process_uncorrectable(
            make_gpu(), touches_active_process=False
        )
        assert EventClass.DBE in outcome.logged_events

    def test_dbe_never_logged_with_probability_zero(self):
        model = make_model(dbe_xid_probability=0.0)
        for _ in range(20):
            outcome = model.process_uncorrectable(
                make_gpu(), touches_active_process=False
            )
            assert EventClass.DBE not in outcome.logged_events


class TestAblations:
    def test_remapping_disabled_always_needs_reset(self):
        outcome = make_model(remapping_enabled=False).process_uncorrectable(
            make_gpu(), touches_active_process=False
        )
        assert not outcome.remapped
        assert not outcome.remap_failed
        assert outcome.needs_reset
        assert EventClass.ROW_REMAP_EVENT not in outcome.logged_events

    def test_containment_disabled_touch_needs_reset(self):
        outcome = make_model(containment_enabled=False).process_uncorrectable(
            make_gpu(busy=True), touches_active_process=True
        )
        assert outcome.uncontained
        assert outcome.needs_reset

    def test_page_offlining_disabled(self):
        outcome = make_model(page_offlining_enabled=False).process_uncorrectable(
            make_gpu(), touches_active_process=False
        )
        assert not outcome.page_offlined


class TestConfigValidation:
    @pytest.mark.parametrize(
        "field",
        [
            "dbe_xid_probability",
            "containment_success_probability",
            "active_touch_probability",
        ],
    )
    def test_probabilities_validated(self, field):
        with pytest.raises(ValueError, match=field):
            MemoryRecoveryConfig(**{field: 1.5})

    def test_outcome_is_frozen(self):
        outcome = MemoryErrorOutcome(logged_events=())
        with pytest.raises(AttributeError):
            outcome.remapped = True  # type: ignore[misc]
