"""Unit tests for the discrete-event engine (repro.sim.engine)."""

import pytest

from repro.core.exceptions import SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = Engine(horizon=100.0)
        order = []
        engine.schedule(30.0, lambda: order.append("b"))
        engine.schedule(10.0, lambda: order.append("a"))
        engine.schedule(50.0, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_priority_then_fifo(self):
        engine = Engine(horizon=100.0)
        order = []
        engine.schedule(10.0, lambda: order.append("late"), priority=5)
        engine.schedule(10.0, lambda: order.append("early"), priority=-5)
        engine.schedule(10.0, lambda: order.append("late2"), priority=5)
        engine.run()
        assert order == ["early", "late", "late2"]

    def test_now_tracks_event_times(self):
        engine = Engine(horizon=100.0)
        seen = []
        engine.schedule(42.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [42.5]

    def test_schedule_in_past_rejected(self):
        engine = Engine(horizon=100.0)
        engine.schedule(50.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError, match="before current time"):
            engine.schedule(10.0, lambda: None)

    def test_schedule_after(self):
        engine = Engine(horizon=100.0)
        times = []
        engine.schedule(
            10.0, lambda: engine.schedule_after(5.0, lambda: times.append(engine.now))
        )
        engine.run()
        assert times == [15.0]

    def test_negative_delay_rejected(self):
        engine = Engine(horizon=100.0)
        with pytest.raises(SimulationError, match="negative delay"):
            engine.schedule_after(-1.0, lambda: None)

    def test_events_beyond_horizon_not_executed(self):
        engine = Engine(horizon=100.0)
        ran = []
        engine.schedule(99.9, lambda: ran.append("in"))
        engine.schedule(100.0, lambda: ran.append("out"))
        engine.run()
        assert ran == ["in"]

    def test_nested_scheduling_from_callback(self):
        engine = Engine(horizon=100.0)
        order = []

        def first():
            order.append("first")
            engine.schedule(engine.now + 1.0, lambda: order.append("second"))

        engine.schedule(10.0, first)
        engine.run()
        assert order == ["first", "second"]


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        engine = Engine(horizon=100.0)
        ran = []
        handle = engine.schedule(10.0, lambda: ran.append(1))
        handle.cancel()
        engine.run()
        assert ran == []
        assert handle.cancelled

    def test_cancel_after_fire_is_noop(self):
        engine = Engine(horizon=100.0)
        ran = []
        handle = engine.schedule(10.0, lambda: ran.append(1))
        engine.run()
        handle.cancel()
        assert ran == [1]

    def test_drain_cancelled_removes_tombstones(self):
        engine = Engine(horizon=100.0)
        handles = [engine.schedule(50.0, lambda: None) for _ in range(10)]
        for handle in handles[:7]:
            handle.cancel()
        removed = engine.drain_cancelled()
        assert removed == 7
        assert engine.pending_events == 3


class TestRunControl:
    def test_run_until_partial(self):
        engine = Engine(horizon=100.0)
        ran = []
        engine.schedule(10.0, lambda: ran.append("a"))
        engine.schedule(60.0, lambda: ran.append("b"))
        engine.run(until=50.0)
        assert ran == ["a"]
        assert engine.now == 50.0
        engine.run()
        assert ran == ["a", "b"]

    def test_clock_advances_to_stop_when_heap_empty(self):
        engine = Engine(horizon=100.0)
        engine.run()
        assert engine.now == 100.0

    def test_executed_events_counter(self):
        engine = Engine(horizon=100.0)
        for i in range(5):
            engine.schedule(float(i + 1), lambda: None)
        engine.run()
        assert engine.executed_events == 5

    def test_reentrant_run_rejected(self):
        engine = Engine(horizon=100.0)

        def reenter():
            engine.run()

        engine.schedule(1.0, reenter)
        with pytest.raises(SimulationError, match="already running"):
            engine.run()

    def test_nonpositive_horizon_rejected(self):
        with pytest.raises(SimulationError, match="positive"):
            Engine(horizon=0.0)

    def test_handle_exposes_time(self):
        engine = Engine(horizon=100.0)
        handle = engine.schedule(33.0, lambda: None)
        assert handle.time == 33.0


class TestScheduleBatch:
    def test_batch_matches_individual_scheduling(self):
        """A batch executes in exactly the order k schedule() calls would."""
        entries = [(30.0, "b"), (10.0, "a"), (10.0, "a2"), (50.0, "c")]
        individual = Engine(horizon=100.0)
        seen_individual = []
        for time, tag in entries:
            individual.schedule(
                time, lambda t=tag: seen_individual.append(t)
            )
        individual.run()

        batched = Engine(horizon=100.0)
        seen_batched = []
        batched.schedule_batch(
            (time, lambda t=tag: seen_batched.append(t))
            for time, tag in entries
        )
        batched.run()
        assert seen_batched == seen_individual == ["a", "a2", "b", "c"]

    def test_large_batch_heapifies_and_keeps_order(self):
        """The O(n+k) heapify path preserves time/seq execution order."""
        engine = Engine(horizon=10_000.0)
        fired = []
        # Small pre-existing heap, then a batch large enough to trip
        # the heapify branch (k >= max(64, heap // 4)).
        engine.schedule(5000.0, lambda: fired.append(-1))
        count = engine.schedule_batch(
            (float(1 + (i * 7919) % 4000), lambda i=i: fired.append(i))
            for i in range(500)
        )
        assert count == 500
        engine.run()
        assert fired[-1] == -1
        assert len(fired) == 501
        times = sorted(
            (float(1 + (i * 7919) % 4000), i) for i in range(500)
        )
        assert fired[:-1] == [i for _, i in times]

    def test_batch_interleaves_with_singles_deterministically(self):
        engine = Engine(horizon=100.0)
        fired = []
        engine.schedule(10.0, lambda: fired.append("single"))
        engine.schedule_batch([(10.0, lambda: fired.append("batch"))])
        engine.run()
        # Same time, same priority: FIFO by shared sequence counter.
        assert fired == ["single", "batch"]

    def test_batch_in_past_rejected(self):
        engine = Engine(horizon=100.0)
        engine.schedule(50.0, lambda: None)
        engine.run(until=60.0)
        with pytest.raises(SimulationError, match="before current"):
            engine.schedule_batch([(10.0, lambda: None)])

    def test_empty_batch_is_noop(self):
        engine = Engine(horizon=100.0)
        assert engine.schedule_batch([]) == 0
        assert engine.pending_events == 0


class TestAutoCompactionAtScale:
    """Tombstone storms on large heaps must not thrash O(n) heapify.

    The trigger fires only on heaps >= the size floor and only when
    pending tombstones reach ratio x heap size, so every compaction
    pass removes at least ratio of what it scans: total scan work is
    bounded by cancellations / ratio regardless of heap size.
    """

    def test_storm_scan_work_is_amortized(self):
        ratio, minimum = 0.25, 1024
        engine = Engine(
            horizon=1e9, auto_compact_ratio=ratio, auto_compact_min=minimum
        )
        handles = [
            engine.schedule(1e6 + i, lambda: None) for i in range(120_000)
        ]
        cancelled = 0
        for i, handle in enumerate(handles):
            if i % 5 != 0:  # cancel 80% in one long storm
                handle.cancel()
                cancelled += 1
        assert engine.compactions > 0
        # Each pass scans <= pending/ratio entries, so the total scan
        # work is linear in cancellations, not in heap size x storms.
        assert engine.compaction_scanned <= cancelled / ratio + 120_000
        # And the heap actually shrank: survivors plus bounded slack.
        assert engine.pending_events < 120_000 - cancelled / 2

    def test_small_heap_never_auto_compacts(self):
        """Heaps below the minimum keep the historical no-compact path."""
        engine = Engine(horizon=1e6, auto_compact_min=4096)
        handles = [
            engine.schedule(1000.0 + i, lambda: None) for i in range(500)
        ]
        for handle in handles:
            handle.cancel()
        assert engine.compactions == 0
        assert engine.compaction_scanned == 0

    def test_compaction_bursts_stay_rare_under_repeated_storms(self):
        """Repeated cancel waves trigger O(log-ish) few compactions."""
        ratio, minimum = 0.5, 256
        engine = Engine(
            horizon=1e9, auto_compact_ratio=ratio, auto_compact_min=minimum
        )
        total_cancelled = 0
        for wave in range(50):
            handles = [
                engine.schedule(1e6 + wave * 10_000 + i, lambda: None)
                for i in range(2_000)
            ]
            for handle in handles[: 1_800]:
                handle.cancel()
            total_cancelled += 1_800
        assert engine.compaction_scanned <= total_cancelled / ratio + 100_000
        # Live events survive every pass.
        live = engine.live_pending_events
        assert live == 50 * 200
