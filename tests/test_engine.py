"""Unit tests for the discrete-event engine (repro.sim.engine)."""

import pytest

from repro.core.exceptions import SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = Engine(horizon=100.0)
        order = []
        engine.schedule(30.0, lambda: order.append("b"))
        engine.schedule(10.0, lambda: order.append("a"))
        engine.schedule(50.0, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_priority_then_fifo(self):
        engine = Engine(horizon=100.0)
        order = []
        engine.schedule(10.0, lambda: order.append("late"), priority=5)
        engine.schedule(10.0, lambda: order.append("early"), priority=-5)
        engine.schedule(10.0, lambda: order.append("late2"), priority=5)
        engine.run()
        assert order == ["early", "late", "late2"]

    def test_now_tracks_event_times(self):
        engine = Engine(horizon=100.0)
        seen = []
        engine.schedule(42.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [42.5]

    def test_schedule_in_past_rejected(self):
        engine = Engine(horizon=100.0)
        engine.schedule(50.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError, match="before current time"):
            engine.schedule(10.0, lambda: None)

    def test_schedule_after(self):
        engine = Engine(horizon=100.0)
        times = []
        engine.schedule(
            10.0, lambda: engine.schedule_after(5.0, lambda: times.append(engine.now))
        )
        engine.run()
        assert times == [15.0]

    def test_negative_delay_rejected(self):
        engine = Engine(horizon=100.0)
        with pytest.raises(SimulationError, match="negative delay"):
            engine.schedule_after(-1.0, lambda: None)

    def test_events_beyond_horizon_not_executed(self):
        engine = Engine(horizon=100.0)
        ran = []
        engine.schedule(99.9, lambda: ran.append("in"))
        engine.schedule(100.0, lambda: ran.append("out"))
        engine.run()
        assert ran == ["in"]

    def test_nested_scheduling_from_callback(self):
        engine = Engine(horizon=100.0)
        order = []

        def first():
            order.append("first")
            engine.schedule(engine.now + 1.0, lambda: order.append("second"))

        engine.schedule(10.0, first)
        engine.run()
        assert order == ["first", "second"]


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        engine = Engine(horizon=100.0)
        ran = []
        handle = engine.schedule(10.0, lambda: ran.append(1))
        handle.cancel()
        engine.run()
        assert ran == []
        assert handle.cancelled

    def test_cancel_after_fire_is_noop(self):
        engine = Engine(horizon=100.0)
        ran = []
        handle = engine.schedule(10.0, lambda: ran.append(1))
        engine.run()
        handle.cancel()
        assert ran == [1]

    def test_drain_cancelled_removes_tombstones(self):
        engine = Engine(horizon=100.0)
        handles = [engine.schedule(50.0, lambda: None) for _ in range(10)]
        for handle in handles[:7]:
            handle.cancel()
        removed = engine.drain_cancelled()
        assert removed == 7
        assert engine.pending_events == 3


class TestRunControl:
    def test_run_until_partial(self):
        engine = Engine(horizon=100.0)
        ran = []
        engine.schedule(10.0, lambda: ran.append("a"))
        engine.schedule(60.0, lambda: ran.append("b"))
        engine.run(until=50.0)
        assert ran == ["a"]
        assert engine.now == 50.0
        engine.run()
        assert ran == ["a", "b"]

    def test_clock_advances_to_stop_when_heap_empty(self):
        engine = Engine(horizon=100.0)
        engine.run()
        assert engine.now == 100.0

    def test_executed_events_counter(self):
        engine = Engine(horizon=100.0)
        for i in range(5):
            engine.schedule(float(i + 1), lambda: None)
        engine.run()
        assert engine.executed_events == 5

    def test_reentrant_run_rejected(self):
        engine = Engine(horizon=100.0)

        def reenter():
            engine.run()

        engine.schedule(1.0, reenter)
        with pytest.raises(SimulationError, match="already running"):
            engine.run()

    def test_nonpositive_horizon_rejected(self):
        with pytest.raises(SimulationError, match="positive"):
            Engine(horizon=0.0)

    def test_handle_exposes_time(self):
        engine = Engine(horizon=100.0)
        handle = engine.schedule(33.0, lambda: None)
        assert handle.time == 33.0
