"""Tests for the log-corruption chaos layer and the hardened,
resumable Stage-II pipeline (quarantine, health report, checkpoints)."""

import gzip
import shutil

import pytest

from repro import DeltaStudy, StudyConfig
from repro.core.exceptions import LogFormatError, PipelineInterrupted
from repro.core.timebase import DAY
from repro.pipeline import CHECKPOINT_DIRNAME, run_pipeline
from repro.pipeline.health import PipelineHealthReport, day_coverage
from repro.syslog.chaos import ChaosConfig, ChaosInjector, corrupt_artifacts
from repro.syslog.quarantine import (
    FILE_DUPLICATE_DAY,
    FILE_TRUNCATED_GZIP,
    REASON_BAD_TIMESTAMP,
    REASON_CLOCK_STEP,
    REASON_ENCODING,
    REASON_MALFORMED,
    REASON_MISSING_HOST,
    REASON_TORN_WRITE,
    Quarantine,
)
from repro.syslog.reader import (
    RawLine,
    dedupe_day_files,
    iter_file_lines,
    iter_parsed_lines,
    list_day_files,
    parse_line,
    repair_monotonic,
)
from repro.syslog.records import LogRecord
from repro.syslog.writer import write_day_partitioned


def _small_corrupted_run(tmp_path, seed=41, chaos_seed=3, rate_scale=20.0):
    config = StudyConfig.small(
        seed=seed, job_scale=0.005, op_days=25, include_episode=True
    )
    artifacts = DeltaStudy(config).run(tmp_path)
    chaos = ChaosConfig.calibrated(seed=chaos_seed).scaled(rate_scale)
    report = corrupt_artifacts(tmp_path, chaos)
    return artifacts, report


class TestParseLineAdversarial:
    """Satellite: adversarial line shapes must parse or quarantine,
    never misparse."""

    def test_double_space_separator(self):
        parsed = parse_line(
            "2022-01-01T00:00:10.000000  gpua001  kernel: NVRM: ok"
        )
        assert parsed.host == "gpua001"
        assert parsed.message == "kernel: NVRM: ok"

    def test_crlf_line_ending(self):
        parsed = parse_line(
            "2022-01-01T00:00:10.000000 gpua001 kernel: hi\r\n"
        )
        assert parsed.message == "kernel: hi"

    def test_missing_hostname_rejected_not_misparsed(self):
        with pytest.raises(LogFormatError) as err:
            parse_line(
                "2022-01-01T00:00:10.000000 kernel: NVRM: Xid "
                "(PCI:0000:07:00): 79, GPU has fallen off the bus."
            )
        assert err.value.reason == REASON_MISSING_HOST

    def test_torn_write_detected(self):
        torn = (
            "2022-01-01T00:00:10.000000 gpua001 kernel: NV"
            "2022-01-01T00:00:11.000000 gpua002 kernel: NVRM: other"
        )
        with pytest.raises(LogFormatError) as err:
            parse_line(torn)
        assert err.value.reason == REASON_TORN_WRITE

    def test_truncated_prefix_reasons(self):
        with pytest.raises(LogFormatError) as err:
            parse_line("2022-01-01T00:0")
        assert err.value.reason == REASON_MALFORMED
        with pytest.raises(LogFormatError) as err:
            parse_line("2022-01-01Tzz:00:10.000000 gpua001 kernel: hi")
        assert err.value.reason == REASON_BAD_TIMESTAMP

    def test_garbage_bytes_in_message_still_parse(self):
        parsed = parse_line(
            "2022-01-01T00:00:10.000000 gpua001 kernel: a��b"
        )
        assert "�" in parsed.message


class TestDayFileListing:
    """Satellite: mixed .log/.log.gz ordering and duplicate days."""

    def _write_days(self, tmp_path, compress_flags):
        for i, compress in enumerate(compress_flags):
            write_day_partitioned(
                tmp_path,
                [
                    LogRecord(
                        time=i * DAY + 1.0, host="gpua001", message="kernel: x"
                    )
                ],
                compress=compress,
            )

    def test_mixed_forms_stay_chronological(self, tmp_path):
        self._write_days(tmp_path, [False, True, False, True])
        files = list_day_files(tmp_path)
        stems = [f.name.split(".")[0] for f in files]
        assert stems == sorted(stems)
        assert [f.name.endswith(".gz") for f in files] == [
            False,
            True,
            False,
            True,
        ]

    def test_duplicate_day_deduped_plain_preferred(self, tmp_path):
        self._write_days(tmp_path, [False])
        plain = list_day_files(tmp_path)[0]
        gz = plain.with_name(plain.name + ".gz")
        gz.write_bytes(gzip.compress(plain.read_bytes()))

        assert len(list_day_files(tmp_path)) == 2
        deduped = list_day_files(tmp_path, dedupe=True)
        assert deduped == [plain]
        unique, dupes = dedupe_day_files(list_day_files(tmp_path))
        assert unique == [plain] and dupes == [gz]

    def test_duplicate_day_not_double_counted(self, tmp_path):
        self._write_days(tmp_path, [False])
        plain = list_day_files(tmp_path)[0]
        gz = plain.with_name(plain.name + ".gz")
        gz.write_bytes(gzip.compress(plain.read_bytes()))
        quarantine = Quarantine()
        parsed = list(iter_parsed_lines(tmp_path, quarantine))
        assert len(parsed) == 1
        assert quarantine.file_incidents[FILE_DUPLICATE_DAY] == 1


class TestTolerantReader:
    def _day_file(self, tmp_path, lines, compress=False):
        name = "syslog-2022-01-01.log" + (".gz" if compress else "")
        path = tmp_path / name
        data = ("\n".join(lines) + "\n").encode("utf-8")
        path.write_bytes(gzip.compress(data) if compress else data)
        return path

    def test_malformed_lines_skipped_and_counted(self, tmp_path):
        self._day_file(
            tmp_path,
            [
                "2022-01-01T00:00:01.000000 gpua001 kernel: one",
                "garbage",
                "2022-01-01T00:00:02.000000 gpua001 kernel: two",
            ],
        )
        quarantine = Quarantine()
        parsed = list(iter_parsed_lines(tmp_path, quarantine))
        assert [p.message for p in parsed] == ["kernel: one", "kernel: two"]
        assert quarantine.total_rejected == 1
        assert quarantine.rejected[REASON_MALFORMED] == 1

    def test_malformed_lines_silently_skipped_without_quarantine(
        self, tmp_path
    ):
        self._day_file(tmp_path, ["garbage", "more garbage"])
        assert list(iter_parsed_lines(tmp_path)) == []

    def test_non_utf8_bytes_replaced_and_counted(self, tmp_path):
        path = tmp_path / "syslog-2022-01-01.log"
        path.write_bytes(
            b"2022-01-01T00:00:01.000000 gpua001 kernel: a\xf9\xfab\n"
        )
        quarantine = Quarantine()
        parsed = list(iter_parsed_lines(tmp_path, quarantine))
        assert len(parsed) == 1
        assert "�" in parsed[0].message
        assert quarantine.repaired[REASON_ENCODING] == 1

    def test_truncated_gzip_yields_partial_day(self, tmp_path):
        lines = [
            f"2022-01-01T00:00:{i:02d}.000000 gpua001 kernel: line {i}"
            for i in range(200)
        ]
        path = self._day_file(tmp_path, lines, compress=True)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])

        quarantine = Quarantine()
        got = list(iter_file_lines(path, quarantine))
        assert 0 < len(got) < 200
        assert quarantine.file_incidents[FILE_TRUNCATED_GZIP] == 1

    def test_corrupt_gzip_header_isolated_to_file(self, tmp_path):
        bad = tmp_path / "syslog-2022-01-01.log.gz"
        bad.write_bytes(b"this is not gzip data")
        self._day_file(
            tmp_path.joinpath(),  # same dir
            ["2022-01-02T00:00:01.000000 gpua001 kernel: ok"],
        )
        # Rename the good file to day 2 so both are listed.
        good = tmp_path / "syslog-2022-01-01.log"
        good.rename(tmp_path / "syslog-2022-01-02.log")
        quarantine = Quarantine()
        parsed = list(iter_parsed_lines(tmp_path, quarantine))
        assert [p.message for p in parsed] == ["kernel: ok"]
        assert sum(quarantine.file_incidents.values()) == 1

    def test_repair_monotonic_clamps_and_counts(self):
        lines = [
            RawLine(time=10.0, host="a", message="m: 1"),
            RawLine(time=5.0, host="a", message="m: 2"),
            RawLine(time=7.0, host="a", message="m: 3"),
            RawLine(time=11.0, host="a", message="m: 4"),
        ]
        quarantine = Quarantine()
        repaired = list(repair_monotonic(lines, quarantine))
        assert [r.time for r in repaired] == [10.0, 10.0, 10.0, 11.0]
        assert quarantine.repaired[REASON_CLOCK_STEP] == 2


class TestChaosInjector:
    def _write_run(self, out, seed=11):
        config = StudyConfig.small(seed=seed, job_scale=0.002, op_days=10)
        DeltaStudy(config).run(out)

    def test_same_seed_same_bytes(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        self._write_run(a)
        self._write_run(b)
        config = ChaosConfig.calibrated(seed=7).scaled(50.0)
        report_a = ChaosInjector(config).corrupt(a / "syslog")
        report_b = ChaosInjector(config).corrupt(b / "syslog")
        assert report_a == report_b
        files_a = sorted(p.name for p in (a / "syslog").iterdir())
        files_b = sorted(p.name for p in (b / "syslog").iterdir())
        assert files_a == files_b
        for name in files_a:
            assert (a / "syslog" / name).read_bytes() == (
                b / "syslog" / name
            ).read_bytes()

    def test_different_seed_differs(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        self._write_run(a)
        self._write_run(b)
        ChaosInjector(ChaosConfig(seed=1).scaled(50.0)).corrupt(a / "syslog")
        ChaosInjector(ChaosConfig(seed=2).scaled(50.0)).corrupt(b / "syslog")
        names_a = sorted(p.name for p in (a / "syslog").iterdir())
        blobs_a = [(a / "syslog" / n).read_bytes() for n in names_a]
        names_b = sorted(p.name for p in (b / "syslog").iterdir())
        blobs_b = [(b / "syslog" / n).read_bytes() for n in names_b]
        assert (names_a, blobs_a) != (names_b, blobs_b)

    def test_report_counts_injections(self, tmp_path):
        _, report = _small_corrupted_run(tmp_path)
        assert report.truncated_lines > 0
        assert report.torn_writes > 0
        assert report.garbage_lines > 0
        assert report.clock_stepped_lines > 0
        assert report.gzip_truncated_files == 1
        assert report.dropped_day_files == 1
        assert report.duplicated_day_files == 1
        assert report.total_injected > 0

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            ChaosConfig(line_truncation_rate=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(gzip_truncate_fraction=0.0)

    def test_empty_directory_is_noop(self, tmp_path):
        report = ChaosInjector(ChaosConfig()).corrupt(tmp_path)
        assert report.total_injected == 0


class TestHardenedPipeline:
    def test_corrupted_run_completes_with_health(self, tmp_path):
        artifacts, report = _small_corrupted_run(tmp_path)
        result = run_pipeline(tmp_path)
        health = result.health
        assert health is not None and not health.is_clean
        # Every injected corruption type leaves a typed signal.
        assert (
            health.quarantined.get(REASON_MALFORMED, 0)
            + health.quarantined.get(REASON_BAD_TIMESTAMP, 0)
            + health.quarantined.get(REASON_MISSING_HOST, 0)
            > 0
        )
        assert health.quarantined.get(REASON_TORN_WRITE, 0) > 0
        assert health.repaired.get(REASON_ENCODING, 0) > 0
        assert health.repaired.get(REASON_CLOCK_STEP, 0) > 0
        assert health.file_incidents.get(FILE_TRUNCATED_GZIP, 0) >= 1
        assert health.file_incidents.get(FILE_DUPLICATE_DAY, 0) >= 1
        assert health.days_missing >= 1
        assert 0.8 < health.completeness < 1.0
        # Statistics survive corruption at these (20x calibrated) rates.
        assert len(result.errors) == pytest.approx(
            len(artifacts.logical_events), rel=0.05
        )

    def test_clean_run_health_is_clean(self, small_run):
        _, result = small_run
        assert result.health is not None
        assert result.health.is_clean
        assert result.health.completeness == 1.0

    def test_render_health(self, tmp_path):
        _small_corrupted_run(tmp_path)
        text = run_pipeline(tmp_path).health.render()
        assert "quarantined lines" in text
        assert "completeness" in text


class TestCheckpointResume:
    def test_interrupt_and_resume_identical(self, tmp_path):
        _small_corrupted_run(tmp_path)
        baseline = run_pipeline(tmp_path)
        with pytest.raises(PipelineInterrupted):
            run_pipeline(tmp_path, checkpoint=True, interrupt_after_files=4)
        assert (tmp_path / CHECKPOINT_DIRNAME / "manifest.json").exists()
        resumed = run_pipeline(tmp_path, resume=True)
        assert resumed.health.resumed_files == 4
        assert resumed.errors == baseline.errors
        assert resumed.downtime == baseline.downtime
        assert resumed.raw_hits == baseline.raw_hits
        assert resumed.extraction_stats == baseline.extraction_stats
        assert resumed.health.quarantined == baseline.health.quarantined
        assert resumed.health.repaired == baseline.health.repaired
        assert resumed.health.lines_read == baseline.health.lines_read

    def test_full_checkpoint_then_resume_all_replayed(self, tmp_path):
        _small_corrupted_run(tmp_path)
        first = run_pipeline(tmp_path, checkpoint=True)
        resumed = run_pipeline(tmp_path, resume=True)
        assert resumed.health.resumed_files == len(
            list_day_files(tmp_path / "syslog", dedupe=True)
        )
        assert resumed.errors == first.errors

    def test_modified_file_invalidates_its_checkpoint(self, tmp_path):
        _small_corrupted_run(tmp_path)
        run_pipeline(tmp_path, checkpoint=True)
        # Append a new error-free line to one day file.
        target = next(
            p
            for p in list_day_files(tmp_path / "syslog", dedupe=True)
            if not p.name.endswith(".gz")
        )
        with open(target, "a", encoding="utf-8") as handle:
            stem = target.name.split(".")[0].split("syslog-")[1]
            handle.write(f"{stem}T23:59:59.000000 gpua001 kernel: benign\n")
        resumed = run_pipeline(tmp_path, resume=True)
        assert (
            resumed.health.resumed_files
            == len(list_day_files(tmp_path / "syslog", dedupe=True)) - 1
        )

    def test_resume_without_checkpoint_runs_fresh(self, tmp_path):
        config = StudyConfig.small(seed=12, job_scale=0.002, op_days=8)
        DeltaStudy(config).run(tmp_path)
        result = run_pipeline(tmp_path, resume=True)
        assert result.health.resumed_files == 0


class TestDayCoverage:
    def test_gap_detected(self):
        present, missing = day_coverage(
            ["syslog-2022-01-01", "syslog-2022-01-02", "syslog-2022-01-05"]
        )
        assert present == 3
        assert missing == 2

    def test_empty(self):
        assert day_coverage([]) == (0, 0)

    def test_report_build_fractions(self):
        report = PipelineHealthReport(
            lines_read=100,
            parsed_lines=90,
            quarantined={"malformed": 10},
            days_present=9,
            days_missing=1,
        )
        assert report.line_retention == pytest.approx(0.9)
        assert report.day_coverage_fraction == pytest.approx(0.9)
        assert report.completeness == pytest.approx(0.81)


class TestChaosCli:
    def test_chaos_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        config = StudyConfig.small(seed=13, job_scale=0.002, op_days=8)
        DeltaStudy(config).run(tmp_path)
        code = main(
            ["chaos", str(tmp_path), "--chaos-seed", "1", "--rate-scale", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos injection report" in out
        code = main(["pipeline", str(tmp_path), "--checkpoint"])
        assert code == 0
        out = capsys.readouterr().out
        assert "pipeline health" in out
        code = main(["pipeline", str(tmp_path), "--resume"])
        assert code == 0
        assert "resumed from checkpoint" in capsys.readouterr().out
