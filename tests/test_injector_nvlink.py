"""Focused tests: NVLink behaviour inside the fault injector."""

import pytest

from repro.core.periods import StudyWindow
from repro.core.xid import EventClass
from repro.faults.config import (
    DuplicationConfig,
    EpisodeShape,
    FaultSuiteConfig,
    NvlinkFaultConfig,
)
from repro.gpu.nvlink import NvlinkConfig

from tests.test_injector import build_stack, empty_memory_chain


def nvlink_suite(**link_overrides) -> FaultSuiteConfig:
    link = NvlinkConfig(**link_overrides)
    return FaultSuiteConfig(
        simple_faults=(),
        memory_chain=empty_memory_chain(),
        nvlink=NvlinkFaultConfig(
            pre_op_count=300.0,
            op_count=1200.0,
            episode=EpisodeShape(mean_extra_errors=0.0),
            link_model=link,
        ),
        duplication=DuplicationConfig(mean_extra_lines=0.5, max_spread_seconds=4.0),
    )


class TestNvlinkGroundTruth:
    def test_affected_gpus_recorded_per_event(self):
        engine, *_, injector = build_stack(nvlink_suite())
        injector.arm()
        engine.run()
        events = injector.logical_events
        assert events
        for event in events:
            assert event.event_class is EventClass.NVLINK_ERROR
            assert event.xid == 74
            assert event.gpu_index in event.affected_gpus

    def test_multi_gpu_fraction_tracks_config(self):
        engine, *_, injector = build_stack(nvlink_suite(multi_gpu_probability=0.42))
        injector.arm()
        engine.run()
        by_episode = {}
        for event in injector.logical_events:
            by_episode.setdefault(event.episode_id, set()).add(event.gpu_index)
        sizes = [len(gpus) for gpus in by_episode.values()]
        multi = sum(1 for s in sizes if s >= 2)
        assert multi / len(sizes) == pytest.approx(0.42, abs=0.06)

    def test_single_gpu_only_when_multi_prob_zero(self):
        engine, *_, injector = build_stack(nvlink_suite(multi_gpu_probability=0.0))
        injector.arm()
        engine.run()
        by_episode = {}
        for event in injector.logical_events:
            by_episode.setdefault(event.episode_id, set()).add(event.gpu_index)
        assert all(len(gpus) == 1 for gpus in by_episode.values())

    def test_logical_count_accounts_for_manifest_size(self):
        """Calibration divides by the expected manifestation size, so the
        total per-GPU error count should land on the target regardless of
        the multi-GPU probability."""
        for multi_prob in (0.0, 0.42, 0.9):
            engine, *_, injector = build_stack(
                nvlink_suite(multi_gpu_probability=multi_prob), seed=17
            )
            injector.arm()
            engine.run()
            total = len(injector.logical_events)
            assert total == pytest.approx(1500, rel=0.12), multi_prob

    def test_simultaneous_endpoint_events_share_timestamp(self):
        engine, *_, injector = build_stack(nvlink_suite(multi_gpu_probability=1.0))
        injector.arm()
        engine.run()
        by_episode = {}
        for event in injector.logical_events:
            by_episode.setdefault(event.episode_id, []).append(event.time)
        for times in by_episode.values():
            assert max(times) - min(times) < 1e-9
