"""Unit tests for the checkpointing what-if (repro.analysis.mitigation)."""

import math

import pytest

from repro.analysis.mitigation import (
    CheckpointPolicy,
    MitigationAnalysis,
)
from repro.core.exceptions import AnalysisError
from repro.core.periods import StudyWindow
from repro.core.timebase import DAY, HOUR
from repro.slurm.types import Allocation, JobRecord, JobState, Partition


@pytest.fixture()
def window():
    return StudyWindow.scaled(pre_days=10, op_days=40)


OP0 = 10 * DAY


def job(job_id, hours=10.0, gpus=2, state=JobState.COMPLETED, end=None):
    end = OP0 + 5 * DAY if end is None else end
    return JobRecord(
        job_id=job_id,
        name=f"j{job_id}",
        user="u",
        partition=Partition.GPU_A100_X4,
        submit_time=end - hours * HOUR,
        start_time=end - hours * HOUR,
        end_time=end,
        state=state,
        exit_code=0 if state is JobState.COMPLETED else 137,
        allocation=Allocation(nodes=("gpua001",), gpus={"gpua001": tuple(range(gpus))}),
        gpu_count=gpus,
    )


class TestPolicyValidation:
    def test_interval_must_be_positive(self):
        with pytest.raises(AnalysisError):
            CheckpointPolicy(interval_hours=0.0)

    def test_overhead_bounds(self):
        with pytest.raises(AnalysisError):
            CheckpointPolicy(interval_hours=1.0, overhead_fraction=1.0)

    def test_restart_non_negative(self):
        with pytest.raises(AnalysisError):
            CheckpointPolicy(interval_hours=1.0, restart_minutes=-1.0)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_interval_must_be_finite(self, bad):
        # Regression: ``nan <= 0`` is False, so NaN used to pass the
        # positivity check and poison every downstream GPU-hour figure.
        with pytest.raises(AnalysisError):
            CheckpointPolicy(interval_hours=bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_overhead_must_be_finite(self, bad):
        with pytest.raises(AnalysisError):
            CheckpointPolicy(interval_hours=1.0, overhead_fraction=bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_restart_must_be_finite(self, bad):
        with pytest.raises(AnalysisError):
            CheckpointPolicy(interval_hours=1.0, restart_minutes=bad)


class TestLostCompute:
    def test_lost_gpu_hours_counts_failed_jobs_only(self, window):
        jobs = [
            job(1, hours=10.0, gpus=2, state=JobState.FAILED),  # killed
            job(2, hours=5.0, gpus=1),  # completed
        ]
        analysis = MitigationAnalysis(jobs, {1}, window)
        assert analysis.lost_gpu_hours() == pytest.approx(20.0)
        assert analysis.failed_jobs == 1
        assert analysis.analyzed_jobs == 2

    def test_pre_op_jobs_excluded(self, window):
        jobs = [job(1, state=JobState.FAILED, end=5 * DAY)]
        analysis = MitigationAnalysis(jobs, {1}, window)
        assert analysis.lost_gpu_hours() == 0.0


class TestEvaluation:
    def test_checkpointing_bounds_loss(self, window):
        jobs = [job(1, hours=10.0, gpus=2, state=JobState.FAILED)]
        analysis = MitigationAnalysis(jobs, {1}, window)
        report = analysis.evaluate(
            CheckpointPolicy(
                interval_hours=1.0, overhead_fraction=0.0, restart_minutes=0.0
            )
        )
        # Expected loss: half an interval * 2 GPUs = 1 GPU-hour.
        assert report.lost_with_checkpointing == pytest.approx(1.0)
        assert report.lost_without_checkpointing == pytest.approx(20.0)
        assert report.net_benefit == pytest.approx(19.0)

    def test_loss_capped_at_job_elapsed(self, window):
        jobs = [job(1, hours=0.5, gpus=1, state=JobState.FAILED)]
        analysis = MitigationAnalysis(jobs, {1}, window)
        report = analysis.evaluate(
            CheckpointPolicy(
                interval_hours=100.0, overhead_fraction=0.0, restart_minutes=0.0
            )
        )
        # A 30-minute job cannot lose more than 30 minutes.
        assert report.lost_with_checkpointing == pytest.approx(0.5)
        assert report.net_benefit == pytest.approx(0.0)

    def test_overhead_charged_to_all_jobs(self, window):
        jobs = [
            job(1, hours=10.0, gpus=1, state=JobState.FAILED),
            job(2, hours=90.0, gpus=1),
        ]
        analysis = MitigationAnalysis(jobs, {1}, window)
        report = analysis.evaluate(
            CheckpointPolicy(
                interval_hours=1.0, overhead_fraction=0.1, restart_minutes=0.0
            )
        )
        assert report.checkpoint_overhead == pytest.approx(10.0)

    def test_restart_cost_included(self, window):
        jobs = [job(1, hours=10.0, gpus=1, state=JobState.FAILED)]
        analysis = MitigationAnalysis(jobs, {1}, window)
        report = analysis.evaluate(
            CheckpointPolicy(
                interval_hours=2.0, overhead_fraction=0.0, restart_minutes=30.0
            )
        )
        assert report.lost_with_checkpointing == pytest.approx(1.5)


class TestEdgeCases:
    def test_zero_failure_window_is_well_defined(self, window):
        # No GPU-failed jobs: zero loss either way, overhead still paid,
        # and every figure stays finite (no 0/0 NaN).
        jobs = [job(1, hours=10.0, gpus=2), job(2, hours=5.0, gpus=1)]
        analysis = MitigationAnalysis(jobs, set(), window)
        report = analysis.evaluate(CheckpointPolicy(interval_hours=1.0))
        assert analysis.failed_jobs == 0
        assert report.lost_without_checkpointing == 0.0
        assert report.lost_with_checkpointing == 0.0
        assert report.net_benefit == pytest.approx(-report.checkpoint_overhead)
        assert all(
            math.isfinite(v)
            for v in (
                report.lost_without_checkpointing,
                report.lost_with_checkpointing,
                report.checkpoint_overhead,
                report.net_benefit,
            )
        )

    def test_empty_population_is_well_defined(self, window):
        analysis = MitigationAnalysis([], set(), window)
        report = analysis.evaluate(CheckpointPolicy(interval_hours=1.0))
        assert analysis.analyzed_jobs == 0
        assert report.checkpoint_overhead == 0.0
        assert report.net_benefit == 0.0

    def test_interval_longer_than_every_job(self, window):
        # An interval past the longest job reduces to the uncheckpointed
        # loss (capped at elapsed), never above it.
        jobs = [job(1, hours=2.0, gpus=3, state=JobState.FAILED)]
        analysis = MitigationAnalysis(jobs, {1}, window)
        report = analysis.evaluate(
            CheckpointPolicy(
                interval_hours=1000.0, overhead_fraction=0.0, restart_minutes=0.0
            )
        )
        assert report.lost_with_checkpointing == pytest.approx(
            report.lost_without_checkpointing
        )
        assert report.net_benefit == pytest.approx(0.0)


class TestSweep:
    def _analysis(self, window):
        jobs = [
            job(i, hours=20.0, gpus=1, state=JobState.FAILED) for i in range(5)
        ] + [job(100 + i, hours=20.0, gpus=1) for i in range(20)]
        return MitigationAnalysis(jobs, set(range(5)), window)

    def test_sweep_returns_one_report_per_interval(self, window):
        reports = self._analysis(window).sweep([0.5, 1.0, 4.0])
        assert [r.policy.interval_hours for r in reports] == [0.5, 1.0, 4.0]

    def test_loss_monotone_in_interval(self, window):
        reports = self._analysis(window).sweep([0.25, 1.0, 4.0, 16.0])
        losses = [r.lost_with_checkpointing for r in reports]
        assert losses == sorted(losses)

    def test_best_policy_maximizes_net_benefit(self, window):
        analysis = self._analysis(window)
        reports = analysis.sweep([0.25, 1.0, 4.0])
        best = analysis.best_policy([0.25, 1.0, 4.0])
        assert best.net_benefit == max(r.net_benefit for r in reports)

    def test_best_policy_requires_intervals(self, window):
        with pytest.raises(AnalysisError):
            self._analysis(window).best_policy([])
