"""Unit tests for deterministic random streams (repro.sim.rng)."""

import numpy as np
import pytest

from repro.sim.rng import RngRegistry


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RngRegistry(7).stream("x").random(10)
        b = RngRegistry(7).stream("x").random(10)
        assert np.array_equal(a, b)

    def test_different_names_differ(self):
        registry = RngRegistry(7)
        a = registry.stream("x").random(10)
        b = registry.stream("y").random(10)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngRegistry(7).stream("x").random(10)
        b = RngRegistry(8).stream("x").random(10)
        assert not np.array_equal(a, b)

    def test_stream_is_cached(self):
        registry = RngRegistry(7)
        assert registry.stream("x") is registry.stream("x")

    def test_stream_isolation(self):
        """Creating/consuming one stream must not disturb another."""
        reference = RngRegistry(7).stream("b").random(5)
        registry = RngRegistry(7)
        registry.stream("a").random(1000)  # consume a lot from "a"
        assert np.array_equal(registry.stream("b").random(5), reference)


class TestValidation:
    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError, match="int"):
            RngRegistry("seed")  # type: ignore[arg-type]

    def test_seed_property(self):
        assert RngRegistry(99).seed == 99


class TestFork:
    def test_fork_is_deterministic(self):
        a = RngRegistry(7).fork("rep1").stream("x").random(5)
        b = RngRegistry(7).fork("rep1").stream("x").random(5)
        assert np.array_equal(a, b)

    def test_fork_differs_from_parent(self):
        parent = RngRegistry(7)
        child = parent.fork("rep1")
        assert child.seed != parent.seed
        assert not np.array_equal(
            parent.stream("x").random(5), child.stream("x").random(5)
        )

    def test_forks_with_different_names_differ(self):
        parent = RngRegistry(7)
        a = parent.fork("rep1").stream("x").random(5)
        b = parent.fork("rep2").stream("x").random(5)
        assert not np.array_equal(a, b)
