"""Tests for gzip-compressed syslog support and pipeline robustness."""

from dataclasses import replace

import pytest

from repro import DeltaStudy, StudyConfig
from repro.core.exceptions import ConfigurationError
from repro.core.timebase import DAY
from repro.pipeline import run_pipeline
from repro.syslog.reader import iter_parsed_lines, list_day_files
from repro.syslog.records import LogRecord
from repro.syslog.writer import day_file_name, write_day_partitioned


class TestCompressedWriterReader:
    def _records(self):
        return [
            LogRecord(time=100.0, host="gpua001", message="kernel: one"),
            LogRecord(time=DAY + 5.0, host="gpua002", message="kernel: two"),
        ]

    def test_gz_file_names(self):
        assert day_file_name(0.0, compress=True) == "syslog-2022-01-01.log.gz"

    def test_compressed_roundtrip(self, tmp_path):
        paths = write_day_partitioned(tmp_path, self._records(), compress=True)
        assert all(p.name.endswith(".log.gz") for p in paths)
        parsed = list(iter_parsed_lines(tmp_path))
        assert [p.message for p in parsed] == ["kernel: one", "kernel: two"]

    def test_mixed_plain_and_compressed(self, tmp_path):
        write_day_partitioned(tmp_path, [self._records()[0]], compress=False)
        write_day_partitioned(tmp_path, [self._records()[1]], compress=True)
        files = list_day_files(tmp_path)
        assert len(files) == 2
        # Chronological order across forms.
        assert files[0].name.startswith("syslog-2022-01-01")
        parsed = list(iter_parsed_lines(tmp_path))
        assert [p.host for p in parsed] == ["gpua001", "gpua002"]

    def test_compression_actually_shrinks(self, tmp_path):
        records = [
            LogRecord(time=float(i), host="gpua001", message="kernel: NVRM: x" * 5)
            for i in range(2000)
        ]
        (tmp_path / "plain").mkdir()
        (tmp_path / "gz").mkdir()
        [plain] = write_day_partitioned(tmp_path / "plain", records)
        [gz] = write_day_partitioned(tmp_path / "gz", records, compress=True)
        assert gz.stat().st_size < plain.stat().st_size / 5


class TestCompressedEndToEnd:
    def test_pipeline_over_compressed_run(self, tmp_path):
        config = replace(
            StudyConfig.small(seed=41, job_scale=0.005, op_days=20),
            compress_logs=True,
        )
        artifacts = DeltaStudy(config).run(tmp_path)
        files = list((tmp_path / "syslog").iterdir())
        assert files and all(f.name.endswith(".log.gz") for f in files)
        result = run_pipeline(tmp_path)
        assert len(result.errors) == pytest.approx(
            len(artifacts.logical_events), rel=0.03
        )


class TestPipelineRobustness:
    def test_missing_syslog_dir_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="syslog"):
            run_pipeline(tmp_path)

    def test_empty_syslog_dir_yields_empty_result(self, tmp_path):
        (tmp_path / "syslog").mkdir()
        result = run_pipeline(tmp_path)
        assert result.errors == []
        assert result.downtime == []
        assert result.jobs == []
        assert result.coalescing_reduction == 1.0

    def test_missing_inventory_falls_back_to_pci_keys(self, tmp_path):
        config = StudyConfig.small(seed=43, job_scale=0.005, op_days=15)
        artifacts = DeltaStudy(config).run(tmp_path)
        (tmp_path / "inventory.json").unlink()
        result = run_pipeline(tmp_path)
        # Errors still recovered; GPU indices unresolved but PCI-keyed
        # coalescing keeps counts intact.
        assert len(result.errors) == pytest.approx(
            len(artifacts.logical_events), rel=0.03
        )
        assert all(e.gpu_index is None for e in result.errors)

    def test_missing_sacct_tolerated(self, tmp_path):
        config = StudyConfig.small(seed=43, job_scale=0.005, op_days=15)
        DeltaStudy(config).run(tmp_path)
        (tmp_path / "sacct.csv").unlink()
        result = run_pipeline(tmp_path)
        assert result.jobs == []
        assert result.errors
