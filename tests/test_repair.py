"""Unit tests for the repair-time model (repro.ops.repair)."""

import numpy as np
import pytest

from repro.ops.repair import RecoveryKind, RepairTimeConfig, RepairTimeModel


class TestConfig:
    def test_default_mean_is_paper_mttr(self):
        # Section V-C: mean unavailable duration 0.88 hours.
        assert RepairTimeConfig().mean_hours == pytest.approx(0.88, abs=0.03)

    def test_component_means(self):
        config = RepairTimeConfig(
            reboot_median_hours=1.0,
            reboot_sigma=0.5,
            replacement_probability=0.0,
        )
        assert config.reboot_mean_hours == pytest.approx(np.exp(0.125))
        assert config.mean_hours == config.reboot_mean_hours

    def test_validation(self):
        with pytest.raises(ValueError):
            RepairTimeConfig(reboot_median_hours=0.0)
        with pytest.raises(ValueError):
            RepairTimeConfig(replacement_probability=1.5)
        with pytest.raises(ValueError):
            RepairTimeConfig(replacement_min_hours=10, replacement_max_hours=5)


class TestDraws:
    def test_empirical_mean_matches_config(self):
        config = RepairTimeConfig()
        model = RepairTimeModel(config, np.random.default_rng(0))
        draws = [model.draw(RecoveryKind.REBOOT)[0] for _ in range(20_000)]
        mean_hours = np.mean(draws) / 3600.0
        assert mean_hours == pytest.approx(config.mean_hours, rel=0.08)

    def test_replace_kind_always_swaps(self):
        model = RepairTimeModel(RepairTimeConfig(), np.random.default_rng(1))
        for _ in range(50):
            duration, replaced = model.draw(RecoveryKind.REPLACE)
            assert replaced
            assert duration >= 6.0 * 3600.0

    def test_reset_rarely_escalates(self):
        model = RepairTimeModel(RepairTimeConfig(), np.random.default_rng(2))
        swaps = sum(model.draw(RecoveryKind.RESET)[1] for _ in range(5000))
        assert swaps / 5000 == pytest.approx(0.01, abs=0.005)

    def test_durations_positive(self):
        model = RepairTimeModel(RepairTimeConfig(), np.random.default_rng(3))
        for kind in RecoveryKind:
            duration, _ = model.draw(kind)
            assert duration > 0
