"""Unit tests for shared record types (repro.core.records)."""

import pytest

from repro.core.records import DowntimeRecord, ExtractedError, GpuErrorEvent
from repro.core.xid import EventClass


class TestGpuErrorEvent:
    def test_basic_construction(self):
        event = GpuErrorEvent(
            time=10.0,
            node="gpua001",
            gpu_index=2,
            event_class=EventClass.MMU_ERROR,
            xid=31,
        )
        assert event.affected_gpus == ()
        assert event.episode_id == 0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            GpuErrorEvent(
                time=-1.0,
                node="gpua001",
                gpu_index=0,
                event_class=EventClass.MMU_ERROR,
                xid=31,
            )

    def test_node_scoped_event_without_gpu(self):
        event = GpuErrorEvent(
            time=0.0,
            node="gpua001",
            gpu_index=None,
            event_class=EventClass.FALLEN_OFF_BUS,
            xid=79,
        )
        assert event.gpu_index is None


class TestExtractedError:
    def test_span_zero_without_last_time(self):
        error = ExtractedError(
            time=5.0,
            node="gpua001",
            gpu_index=0,
            event_class=EventClass.NVLINK_ERROR,
            xid=74,
        )
        assert error.span == 0.0
        assert error.raw_line_count == 1

    def test_span_with_last_time(self):
        error = ExtractedError(
            time=5.0,
            node="gpua001",
            gpu_index=0,
            event_class=EventClass.NVLINK_ERROR,
            xid=74,
            raw_line_count=4,
            last_time=12.5,
        )
        assert error.span == 7.5

    def test_span_never_negative(self):
        error = ExtractedError(
            time=5.0,
            node="gpua001",
            gpu_index=0,
            event_class=EventClass.NVLINK_ERROR,
            xid=74,
            last_time=3.0,
        )
        assert error.span == 0.0


class TestDowntimeRecord:
    def test_durations(self):
        record = DowntimeRecord(
            node="gpua001",
            start=3600.0,
            end=3600.0 * 3,
            cause=EventClass.GSP_ERROR,
        )
        assert record.duration == 7200.0
        assert record.duration_hours == 2.0
        assert not record.gpu_replaced

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="ends before"):
            DowntimeRecord(
                node="gpua001",
                start=100.0,
                end=50.0,
                cause=EventClass.GSP_ERROR,
            )

    def test_zero_duration_allowed(self):
        record = DowntimeRecord(
            node="gpua001", start=5.0, end=5.0, cause=EventClass.GSP_ERROR
        )
        assert record.duration == 0.0
