"""Multi-tenant service tests: isolation, routing, degraded serving.

Uses tiny hand-written syslog directories for the fast structural
tests and the shared ``small_run`` corpus for the once-mode
stream-vs-batch identity check.  Chaos-driven heal tests live in
``tests/test_stream_chaos.py``.
"""

import json
import threading
import time
from pathlib import Path

import pytest

from repro.core.exceptions import ConfigurationError
from repro.stream import (
    MultiTenantService,
    TenantRuntime,
    TenantSpec,
    parse_tenant_arg,
)
from repro.stream.ingest import CHECKPOINT_FILE
from repro.obs import MetricsRegistry

LINE = "2022-01-{day:02d}T00:00:{sec:02d}.000000 gpua001 kernel: ok\n"


def make_corpus(root: Path, days: int = 1, lines_per_day: int = 3) -> Path:
    """A minimal artifact dir: a few parseable syslog lines, no errors."""
    syslog = root / "syslog"
    syslog.mkdir(parents=True)
    for day in range(1, days + 1):
        path = syslog / f"syslog-2022-01-{day:02d}.log"
        path.write_text(
            "".join(
                LINE.format(day=day, sec=sec) for sec in range(lines_per_day)
            )
        )
    return root


@pytest.fixture
def corpus(tmp_path):
    return make_corpus(tmp_path / "corpus")


def make_service(corpus, tmp_path, names=("alpha", "beta"), **kwargs):
    specs = [TenantSpec(name=name, follow_dir=corpus) for name in names]
    kwargs.setdefault("port", None)
    kwargs.setdefault("checkpoint_root", tmp_path / "ckpt")
    return MultiTenantService(specs, **kwargs)


class TestParseTenantArg:
    def test_valid(self):
        name, path = parse_tenant_arg("alpha=/data/alpha")
        assert name == "alpha"
        assert path == Path("/data/alpha")

    @pytest.mark.parametrize(
        "value",
        ["alpha", "=dir", "alpha=", "bad name=dir", "-lead=dir", "a/b=dir"],
    )
    def test_invalid(self, value):
        with pytest.raises(ConfigurationError):
            parse_tenant_arg(value)


class TestTenantSpec:
    def test_bad_name_rejected(self):
        with pytest.raises(ConfigurationError):
            TenantSpec(name="no spaces", follow_dir=Path("/tmp"))

    def test_names_allow_dots_dashes(self):
        TenantSpec(name="cluster-a.prod_1", follow_dir=Path("/tmp"))


class TestServiceValidation:
    def test_requires_tenants(self):
        with pytest.raises(ConfigurationError):
            MultiTenantService([], port=None)

    def test_rejects_duplicate_names(self, corpus):
        specs = [
            TenantSpec(name="a", follow_dir=corpus),
            TenantSpec(name="a", follow_dir=corpus),
        ]
        with pytest.raises(ConfigurationError):
            MultiTenantService(specs, port=None)

    def test_rejects_bad_poll_interval(self, corpus):
        with pytest.raises(ConfigurationError):
            MultiTenantService(
                [TenantSpec(name="a", follow_dir=corpus)],
                port=None,
                poll_interval=0.0,
            )


class TestRoutingAndIsolation:
    def test_tenant_routes_registered(self, corpus, tmp_path):
        service = make_service(corpus, tmp_path, port=0)
        try:
            for name in ("alpha", "beta"):
                for stem in ("fleet", "alerts", "slo"):
                    status, _, _, _, _ = service.server.dispatch(
                        f"/v1/{name}/{stem}"
                    )
                    assert status == 200, (name, stem)
            status, _, _, _, _ = service.server.dispatch("/v1/gamma/fleet")
            assert status == 404
        finally:
            service.server.stop()

    def test_cores_are_shared_nothing(self, corpus, tmp_path):
        service = make_service(corpus, tmp_path)
        alpha, beta = service.runtimes
        assert alpha.core is not beta.core
        assert alpha.core.ingest is not beta.core.ingest
        assert alpha.core.lock is not beta.core.lock
        alpha.poll_once()
        assert alpha.core.ingest.lines_read > 0
        assert beta.core.ingest.lines_read == 0

    def test_per_tenant_slo_prefix(self, corpus, tmp_path):
        service = make_service(corpus, tmp_path)
        snapshot = service._tenant_slo_snapshot("alpha")()
        names = [obj["name"] for obj in snapshot["objectives"]]
        assert names
        assert all(name.startswith("alpha:") for name in names)
        full = service.slo_snapshot()
        all_names = {obj["name"] for obj in full["objectives"]}
        assert any(name.startswith("beta:") for name in all_names)

    def test_per_tenant_checkpoint_layout(self, corpus, tmp_path):
        service = make_service(corpus, tmp_path)
        for rt in service.runtimes:
            rt.poll_once()
            rt.checkpoint()
        for name in ("alpha", "beta"):
            assert (tmp_path / "ckpt" / name / CHECKPOINT_FILE).exists()


class TestDegradedServing:
    def test_fresh_route_has_no_staleness_header(self, corpus, tmp_path):
        service = make_service(corpus, tmp_path)
        rt = service.runtimes[0]
        rt.poll_once()
        response = rt.fleet_route()
        assert len(response) == 2  # (content_type, body): healthy
        payload = json.loads(response[1])
        assert payload["stream"]["lines_read"] == 3

    def test_marked_down_serves_with_staleness_header(self, corpus, tmp_path):
        service = make_service(corpus, tmp_path)
        rt = service.runtimes[0]
        rt.poll_once()
        rt.mark_down("crash", "closed")
        content_type, body, headers = rt.fleet_route()
        assert "X-Fleet-Staleness-Seconds" in headers
        assert float(headers["X-Fleet-Staleness-Seconds"]) >= 0.0
        assert json.loads(body)["stream"]["lines_read"] == 3

    def test_wedged_core_serves_cached_body(self, corpus, tmp_path):
        """Lock held elsewhere: the handler falls back to last-good."""
        service = make_service(corpus, tmp_path)
        rt = service.runtimes[0]
        rt.poll_once()
        fresh = rt.fleet_route()
        assert len(fresh) == 2
        rt.core.lock.acquire()
        try:
            content_type, body, headers = rt.fleet_route()
        finally:
            rt.core.lock.release()
        assert body == fresh[1]
        assert "X-Fleet-Staleness-Seconds" in headers

    def test_wedged_core_with_no_cache_still_answers(self, corpus, tmp_path):
        service = make_service(corpus, tmp_path)
        rt = service.runtimes[0]
        rt.core.lock.acquire()
        try:
            _, body, headers = rt.fleet_route()
        finally:
            rt.core.lock.release()
        payload = json.loads(body)
        assert payload["degraded"] is True
        assert "X-Fleet-Staleness-Seconds" in headers

    def test_health_snapshot_rolls_up_degraded(self, corpus, tmp_path):
        service = make_service(corpus, tmp_path)
        doc = service.health_snapshot()
        assert doc["status"] == "ok"
        assert doc["degraded"] is False
        assert set(doc["tenants"]) == {"alpha", "beta"}
        service.runtimes[0].mark_down("stall", "open")
        doc = service.health_snapshot()
        assert doc["status"] == "degraded"
        assert doc["tenants"]["alpha"]["degraded"] is True
        assert doc["tenants"]["alpha"]["breaker"] == "open"
        assert doc["tenants"]["beta"]["degraded"] is False


class TestCoreSwap:
    def test_rebuild_swaps_generation(self, corpus, tmp_path):
        service = make_service(corpus, tmp_path)
        rt = service.runtimes[0]
        rt.poll_once()
        rt.checkpoint()
        old = rt.core
        rt.rebuild()
        assert rt.core is not old
        assert rt.core.generation == old.generation + 1
        # The rebuilt core resumed from the checkpoint: same progress.
        assert rt.core.ingest.lines_read == old.ingest.lines_read

    def test_stale_generation_checkpoint_refused(self, corpus, tmp_path):
        """A checkpoint racing a rebuild must not clobber the successor.

        The checkpointer captures the old core, blocks on its lock
        while the supervisor swaps in a new generation, and on waking
        must notice it was superseded and refuse to write.
        """
        service = make_service(corpus, tmp_path)
        rt = service.runtimes[0]
        rt.poll_once()
        old_core = rt.core
        entered = threading.Event()
        results = []

        def checkpoint_on_old_gen():
            entered.set()
            results.append(rt.checkpoint())

        old_core.lock.acquire()
        try:
            worker = threading.Thread(target=checkpoint_on_old_gen)
            worker.start()
            assert entered.wait(timeout=5.0)
            # Give the checkpointer a beat to capture self.core and
            # block on the (held) old-core lock, then swap under it.
            time.sleep(0.2)
            rt.rebuild()
        finally:
            old_core.lock.release()
        worker.join(timeout=5.0)
        assert results == [None]
        assert not rt.checkpoint_path.exists()

    def test_quarantine_on_damaged_resume(self, corpus, tmp_path):
        ckpt = tmp_path / "ckpt" / "alpha"
        ckpt.mkdir(parents=True)
        (ckpt / CHECKPOINT_FILE).write_bytes(b'{"version": 1, "foll')
        registry = MetricsRegistry(enabled=True)
        rt = TenantRuntime(
            TenantSpec(name="alpha", follow_dir=corpus),
            registry=registry,
            checkpoint_dir=ckpt,
            resume=True,
        )
        assert len(rt.quarantined_checkpoints) == 1
        quarantined = Path(rt.quarantined_checkpoints[0])
        assert quarantined.name == f"{CHECKPOINT_FILE}.corrupt-1"
        assert quarantined.exists()
        assert not (ckpt / CHECKPOINT_FILE).exists()
        # The fresh core starts from scratch and can ingest.
        rt.poll_once()
        assert rt.core.ingest.lines_read == 3


class TestOnceModeIdentity:
    def test_drain_matches_single_stream_pass(self, small_run, tmp_path):
        """Two tenants over the same corpus both match a direct drain."""
        from repro.stream import StreamIngest
        from repro.cluster.inventory import Inventory

        artifacts, batch = small_run
        artifact_dir = artifacts.output_dir
        service = make_service(
            artifact_dir, tmp_path, names=("a", "b"), once=True
        )
        assert service.run(install_signals=False) == 0
        inventory = Inventory.load(artifact_dir / "inventory.json")
        reference = StreamIngest(
            artifact_dir / "syslog", inventory=inventory
        )
        reference.drain()
        expected = reference.result()
        for rt in service.runtimes:
            result = rt.core.ingest.result()
            assert rt.core.ingest.drained
            assert result.errors == expected.errors
            assert result.downtime == expected.downtime
            assert (
                result.health.lines_read == expected.health.lines_read
            )
        # And the batch pipeline agrees on the error stream.
        assert expected.errors == batch.errors
