"""Unit tests for study configuration (repro.study.config)."""

import pytest

from repro import StudyConfig
from repro.core.periods import StudyWindow


class TestDefaults:
    def test_delta_defaults(self):
        config = StudyConfig.delta()
        assert config.cluster_shape.gpu_node_count == 106
        assert config.window.total_days == pytest.approx(1169, abs=2)
        assert config.fault_scale == 1.0
        assert config.workload.job_scale == 0.05
        assert config.fault_suite.defective_episode is not None

    def test_delta_workload_focused_thins_faults(self):
        config = StudyConfig.delta_workload_focused()
        assert config.fault_scale == pytest.approx(0.02)
        assert config.workload.error_kill_allowance == pytest.approx(0.002)

    def test_small_is_small(self):
        config = StudyConfig.small()
        assert config.cluster_shape.gpu_node_count == 8
        assert config.window.total_days == pytest.approx(80)
        assert config.fault_suite.defective_episode is None

    def test_small_with_episode_fits_window(self):
        config = StudyConfig.small(include_episode=True, pre_days=20)
        episode = config.fault_suite.defective_episode
        assert episode is not None
        assert episode.end_day <= 20

    def test_validation(self):
        with pytest.raises(ValueError):
            StudyConfig(fault_scale=0.0)
        with pytest.raises(ValueError):
            StudyConfig(utilization_sample_interval_hours=0.0)

    def test_custom_window(self):
        window = StudyWindow.scaled(pre_days=1, op_days=2)
        config = StudyConfig(window=window)
        assert config.window.total_days == pytest.approx(3)
