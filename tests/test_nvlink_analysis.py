"""Unit tests for NVLink manifestation analysis (repro.analysis.nvlink)."""

import pytest

from repro.analysis.nvlink import nvlink_manifestations
from repro.core.periods import PeriodName, StudyWindow
from repro.core.records import ExtractedError
from repro.core.timebase import DAY
from repro.core.xid import EventClass


@pytest.fixture()
def window():
    return StudyWindow.scaled(pre_days=10, op_days=40)


OP0 = 10 * DAY


def nvlink_error(time, node="gpua001", gpu=0):
    return ExtractedError(
        time=time,
        node=node,
        gpu_index=gpu,
        event_class=EventClass.NVLINK_ERROR,
        xid=74,
    )


class TestGrouping:
    def test_simultaneous_errors_group_into_one_manifestation(self, window):
        errors = [
            nvlink_error(OP0 + 100.0, gpu=0),
            nvlink_error(OP0 + 100.5, gpu=1),
        ]
        stats = nvlink_manifestations(errors, window)
        assert stats.manifestations == 1
        assert stats.multi_gpu_manifestations == 1
        assert stats.errors == 2
        assert stats.size_histogram == {2: 1}

    def test_separated_errors_are_distinct(self, window):
        errors = [
            nvlink_error(OP0 + 100.0, gpu=0),
            nvlink_error(OP0 + 500.0, gpu=1),
        ]
        stats = nvlink_manifestations(errors, window)
        assert stats.manifestations == 2
        assert stats.multi_gpu_manifestations == 0

    def test_same_gpu_repeats_are_single_gpu_manifestations(self, window):
        errors = [
            nvlink_error(OP0 + 100.0, gpu=0),
            nvlink_error(OP0 + 101.0, gpu=0),
        ]
        stats = nvlink_manifestations(errors, window)
        assert stats.manifestations == 1
        assert stats.multi_gpu_manifestations == 0
        assert stats.size_histogram == {1: 1}

    def test_different_nodes_never_group(self, window):
        errors = [
            nvlink_error(OP0 + 100.0, node="gpua001"),
            nvlink_error(OP0 + 100.1, node="gpua002"),
        ]
        stats = nvlink_manifestations(errors, window)
        assert stats.manifestations == 2

    def test_multi_fraction(self, window):
        errors = [
            nvlink_error(OP0 + 0.0, gpu=0),
            nvlink_error(OP0 + 1.0, gpu=1),  # multi
            nvlink_error(OP0 + 1000.0, gpu=2),  # single
        ]
        stats = nvlink_manifestations(errors, window)
        assert stats.multi_gpu_fraction == pytest.approx(0.5)


class TestFiltering:
    def test_non_nvlink_errors_ignored(self, window):
        errors = [
            ExtractedError(
                time=OP0 + 10.0,
                node="gpua001",
                gpu_index=0,
                event_class=EventClass.MMU_ERROR,
                xid=31,
            )
        ]
        stats = nvlink_manifestations(errors, window)
        assert stats.manifestations == 0
        assert stats.multi_gpu_fraction is None

    def test_period_filter(self, window):
        errors = [nvlink_error(100.0)]  # pre-op
        op_stats = nvlink_manifestations(errors, window)
        pre_stats = nvlink_manifestations(
            errors, window, period=PeriodName.PRE_OPERATIONAL
        )
        assert op_stats.manifestations == 0
        assert pre_stats.manifestations == 1

    def test_custom_grouping_window(self, window):
        errors = [
            nvlink_error(OP0 + 0.0, gpu=0),
            nvlink_error(OP0 + 8.0, gpu=1),
        ]
        tight = nvlink_manifestations(errors, window, grouping_window_seconds=5.0)
        loose = nvlink_manifestations(errors, window, grouping_window_seconds=10.0)
        assert tight.manifestations == 2
        assert loose.manifestations == 1
