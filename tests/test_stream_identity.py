"""Replay-identity tests: streaming ingest must reproduce batch exactly.

The contract under test (DESIGN §12): a drained streaming pass over a
finished syslog directory — however the bytes arrived, in whatever
poll-sized pieces, with or without kill/resume in the middle — yields
the same coalesced errors, downtime episodes, quarantine accounting,
and (byte-identical) fleet-report JSON as one batch
:func:`~repro.pipeline.run.run_pipeline` pass, chaos-corrupted input
included.
"""

import json
import os
import random
import shutil
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import DeltaStudy, StudyConfig
from repro.cluster.inventory import Inventory
from repro.pipeline import run_pipeline
from repro.stream import StreamIngest, fleet_report, infer_stream_window
from repro.syslog.chaos import ChaosConfig, corrupt_artifacts

HEALTH_FIELDS = (
    "lines_read",
    "parsed_lines",
    "quarantined",
    "repaired",
    "file_incidents",
    "days_present",
    "days_missing",
)


def assert_identical(stream_result, batch_result, samples="exact"):
    """Field-for-field comparison of a drained stream vs a batch pass."""
    assert stream_result.errors == batch_result.errors
    assert stream_result.downtime == batch_result.downtime
    assert stream_result.raw_hits == batch_result.raw_hits
    assert vars(stream_result.extraction_stats) == vars(
        batch_result.extraction_stats
    )
    sh, bh = stream_result.health, batch_result.health
    for name in HEALTH_FIELDS:
        assert getattr(sh, name) == getattr(bh, name), name
    if samples == "exact":
        assert sh.quarantine_samples == bh.quarantine_samples
    else:
        # Live arrival order may interleave file-incident samples
        # differently; the multiset must still match.
        assert sorted(sh.quarantine_samples) == sorted(bh.quarantine_samples)


@pytest.fixture(scope="module")
def chaos_run(tmp_path_factory):
    """A chaos-corrupted artifact dir plus its batch pipeline result."""
    out = tmp_path_factory.mktemp("stream_identity") / "run"
    config = StudyConfig.small(
        seed=41, include_episode=True, job_scale=0.005, op_days=25
    )
    DeltaStudy(config).run(out)
    corrupt_artifacts(out, ChaosConfig.calibrated(seed=3).scaled(20.0))
    batch = run_pipeline(out, load_jobs=False)
    return out, batch


def _inventory(artifact_dir):
    return Inventory.load(artifact_dir / "inventory.json")


class TestStaticDirectoryIdentity:
    def test_clean_run_identity(self, small_run):
        artifacts, batch = small_run
        artifact_dir = artifacts.output_dir
        ingest = StreamIngest(
            artifact_dir / "syslog", inventory=_inventory(artifact_dir)
        )
        ingest.drain()
        result = ingest.result()
        assert result.errors == batch.errors
        assert result.downtime == batch.downtime
        assert result.raw_hits == batch.raw_hits
        assert result.health.quarantine_samples == []

    def test_chaos_run_identity(self, chaos_run):
        artifact_dir, batch = chaos_run
        ingest = StreamIngest(
            artifact_dir / "syslog", inventory=_inventory(artifact_dir)
        )
        ingest.drain()
        assert_identical(ingest.result(), batch)

    def test_fleet_report_byte_identity(self, chaos_run):
        artifact_dir, batch = chaos_run
        ingest = StreamIngest(
            artifact_dir / "syslog", inventory=_inventory(artifact_dir)
        )
        ingest.drain()
        result = ingest.result()
        window = infer_stream_window(ingest.watermark)
        stream_json = json.dumps(
            fleet_report(result.errors, result.downtime, window),
            sort_keys=True,
        )
        batch_json = json.dumps(
            fleet_report(batch.errors, batch.downtime, window),
            sort_keys=True,
        )
        assert stream_json == batch_json


class TestIncrementalReplayIdentity:
    def _replay(self, src_dir, live_dir, inventory, rng, resume_every=None):
        """Copy day files over in arbitrary byte-sized chunks, polling
        (and optionally checkpoint/restoring) between appends."""
        live_sys = live_dir / "syslog"
        live_sys.mkdir(parents=True)
        ckpt = live_dir / "ckpt"
        ckpt.mkdir()
        ingest = StreamIngest(live_sys, inventory=inventory)
        polls = 0
        files = sorted(
            (src_dir / "syslog").iterdir(),
            key=lambda p: (p.name.split(".")[0], rng.random()),
        )
        for path in files:
            data = path.read_bytes()
            if path.name.endswith(".gz"):
                (live_sys / path.name).write_bytes(data)
                ingest.poll()
                continue
            with open(live_sys / path.name, "wb") as fh:
                pos = 0
                while pos < len(data):
                    step = rng.randint(1, 200_000)
                    fh.write(data[pos : pos + step])
                    fh.flush()
                    pos += step
                    ingest.poll()
                    polls += 1
                    if resume_every and polls % resume_every == 0:
                        # Kill/resume drill: persist, discard, rebuild.
                        ingest.checkpoint(ckpt)
                        ingest = StreamIngest.resume(
                            live_sys, ckpt, inventory=inventory
                        )
        ingest.drain()
        return ingest

    def test_chunked_appends_identity(self, chaos_run, tmp_path):
        src_dir, batch = chaos_run
        ingest = self._replay(
            src_dir, tmp_path / "live", _inventory(src_dir), random.Random(7)
        )
        assert_identical(ingest.result(), batch, samples="multiset")

    def test_kill_resume_identity_no_double_counting(
        self, chaos_run, tmp_path
    ):
        src_dir, batch = chaos_run
        ingest = self._replay(
            src_dir,
            tmp_path / "live",
            _inventory(src_dir),
            random.Random(11),
            resume_every=7,
        )
        assert_identical(ingest.result(), batch, samples="multiset")

    def test_mid_utf8_checkpoint_boundary(self, tmp_path):
        """A checkpoint between polls never tears a line or a rune."""
        live = tmp_path / "syslog"
        live.mkdir()
        ingest = StreamIngest(live)
        day = live / "syslog-2022-01-01.log"
        line = "2022-01-01T00:00:00.000000 gpua001 kernel: café message\n"
        data = line.encode("utf-8")
        # Split inside the two-byte UTF-8 sequence for é.
        cut = data.index(b"\xc3") + 1
        with open(day, "wb") as fh:
            fh.write(data[:cut])
            fh.flush()
            ingest.poll()
            state = ingest.to_state()
            ingest = StreamIngest.from_state(live, state)
            fh.write(data[cut:])
            fh.flush()
        ingest.drain()
        result = ingest.result()
        assert result.health.lines_read == 1
        assert result.health.parsed_lines == 1
        assert result.health.repaired == {}


class TestCheckpointSafety:
    def test_resume_against_wrong_directory_refuses(self, tmp_path):
        a = tmp_path / "a"
        b = tmp_path / "b"
        a.mkdir()
        b.mkdir()
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        StreamIngest(a).checkpoint(ckpt)
        from repro.core.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            StreamIngest.resume(b, ckpt)

    def test_resume_without_checkpoint_returns_none(self, tmp_path):
        assert StreamIngest.resume(tmp_path, tmp_path / "missing") is None

    def test_damaged_checkpoint_raises(self, tmp_path):
        from repro.core.exceptions import ConfigurationError
        from repro.stream.ingest import CHECKPOINT_FILE

        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        (ckpt / CHECKPOINT_FILE).write_text("{not json")
        with pytest.raises(ConfigurationError):
            StreamIngest.resume(tmp_path, ckpt)

    def test_damaged_checkpoint_quarantined_not_deleted(self, tmp_path):
        """resume_or_quarantine moves the damage aside and starts fresh."""
        from repro.stream.ingest import CHECKPOINT_FILE

        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        damage = b'{"version": 1, "follower": {"files": [{"name": "tr'
        (ckpt / CHECKPOINT_FILE).write_bytes(damage)
        ingest, quarantined = StreamIngest.resume_or_quarantine(
            tmp_path, ckpt
        )
        assert ingest is None  # caller builds from scratch
        assert quarantined is not None
        assert quarantined.name == f"{CHECKPOINT_FILE}.corrupt-1"
        assert quarantined.read_bytes() == damage  # evidence preserved
        assert not (ckpt / CHECKPOINT_FILE).exists()
        # A second damaged checkpoint gets the next quarantine slot.
        (ckpt / CHECKPOINT_FILE).write_bytes(damage)
        _, second = StreamIngest.resume_or_quarantine(tmp_path, ckpt)
        assert second.name == f"{CHECKPOINT_FILE}.corrupt-2"

    def test_resume_or_quarantine_passes_through_good_checkpoint(
        self, tmp_path
    ):
        live = tmp_path / "syslog"
        live.mkdir()
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        StreamIngest(live).checkpoint(ckpt)
        ingest, quarantined = StreamIngest.resume_or_quarantine(live, ckpt)
        assert ingest is not None
        assert quarantined is None


#: Poll/checkpoint loop run as a subprocess so the parent can SIGKILL
#: it at arbitrary byte offsets — including mid-checkpoint-write.
_CHECKPOINT_LOOP = """\
import sys, time
from pathlib import Path
from repro.cluster.inventory import Inventory
from repro.stream import StreamIngest

live, ckpt, inv = (Path(arg) for arg in sys.argv[1:4])
inventory = Inventory.load(inv)
ingest = StreamIngest.resume(live, ckpt, inventory=inventory)
if ingest is None:
    ingest = StreamIngest(live, inventory=inventory)
while True:
    ingest.poll()
    ingest.checkpoint(ckpt)
    time.sleep(0.005)
"""


class TestSigkillCheckpointAtomicity:
    """SIGKILL a live poll/checkpoint loop, repeatedly, then prove
    the survivors: resume never sees a torn checkpoint (the atomic
    writer's contract) and the final drain still matches batch (no
    duplicated or dropped lines across any number of hard kills)."""

    def _spawn(self, script, live_sys, ckpt, inventory_path):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [
                sys.executable,
                str(script),
                str(live_sys),
                str(ckpt),
                str(inventory_path),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )

    def test_sigkill_mid_checkpoint_loop_identity(self, chaos_run, tmp_path):
        src_dir, batch = chaos_run
        live_sys = tmp_path / "live" / "syslog"
        live_sys.mkdir(parents=True)
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        script = tmp_path / "checkpoint_loop.py"
        script.write_text(_CHECKPOINT_LOOP)
        inventory_path = src_dir / "inventory.json"

        rng = random.Random(13)
        kills = 0
        proc = self._spawn(script, live_sys, ckpt, inventory_path)
        try:
            files = sorted(
                (src_dir / "syslog").iterdir(),
                key=lambda p: p.name.split(".")[0],
            )
            for path in files:
                data = path.read_bytes()
                if path.name.endswith(".gz"):
                    (live_sys / path.name).write_bytes(data)
                    continue
                with open(live_sys / path.name, "wb") as fh:
                    pos = 0
                    while pos < len(data):
                        step = rng.randint(50_000, 400_000)
                        fh.write(data[pos : pos + step])
                        fh.flush()
                        pos += step
                        if kills < 4 and rng.random() < 0.05:
                            # Let the loop poll/checkpoint a little,
                            # then kill it wherever it happens to be.
                            time.sleep(rng.uniform(0.02, 0.1))
                            proc.kill()
                            stderr = proc.communicate()[1]
                            assert proc.returncode == -9, (
                                "checkpoint loop died on its own "
                                f"(rc={proc.returncode}): "
                                f"{stderr.decode(errors='replace')}"
                            )
                            kills += 1
                            proc = self._spawn(
                                script, live_sys, ckpt, inventory_path
                            )
        finally:
            proc.kill()
            proc.wait()
        assert kills >= 2, "kill schedule never fired; adjust seed"

        # Resume from whatever checkpoint survived the last SIGKILL:
        # it must parse (atomicity) and must not double- or
        # under-count a single line (identity).
        ingest = StreamIngest.resume(
            live_sys, ckpt, inventory=_inventory(src_dir)
        )
        if ingest is None:
            ingest = StreamIngest(live_sys, inventory=_inventory(src_dir))
        ingest.drain()
        assert_identical(ingest.result(), batch, samples="multiset")


class TestServiceResumeIdentity:
    def test_service_kill_resume_matches_batch(self, chaos_run, tmp_path):
        """Drive the full service through a kill/resume cycle."""
        from repro.stream import StreamService

        src_dir, batch = chaos_run
        live = tmp_path / "live"
        live_sys = live / "syslog"
        live_sys.mkdir(parents=True)
        shutil.copy(src_dir / "inventory.json", live / "inventory.json")
        ckpt = tmp_path / "ckpt"
        days = sorted(
            (src_dir / "syslog").iterdir(), key=lambda p: p.name.split(".")[0]
        )
        half = len(days) // 2
        for path in days[:half]:
            shutil.copy(path, live_sys / path.name)

        # First service instance: ingest the first half, then "die"
        # after a checkpoint (simulating SIGKILL between polls).
        first = StreamService(
            live, port=None, checkpoint_dir=ckpt, poll_interval=0.01
        )
        first.poll_once()
        first.checkpoint()

        for path in days[half:]:
            shutil.copy(path, live_sys / path.name)
        second = StreamService(
            live,
            port=None,
            checkpoint_dir=ckpt,
            resume=True,
            once=True,
            poll_interval=0.01,
        )
        assert second.run(install_signals=False) == 0
        result = second.ingest.result()
        assert_identical(result, batch, samples="multiset")
        # No double counting across the restart.
        assert second.ingest.lines_read == batch.health.lines_read
