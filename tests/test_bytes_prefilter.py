"""Differential tests: bytes-first scan vs the decoded reference path.

The bytes-first scanner (`repro.pipeline.bytescan`) must be
observably indistinguishable from the legacy decoded per-line path —
not just on hits but on *every* ``DayScan`` field: quarantine reasons
and their sampled events (in ``(line_idx, sub)`` order), clock-step
repairs, boundary candidates, line counts, and the streamed content
fingerprint.  ``scan_day_file(force_decode=True)`` pins the decoded
reference implementation; these tests fuzz both paths with the chaos
layer (torn lines, byte garbage, mid-UTF-8 cuts, clock steps, ``\\r``
endings, truncation) plus handcrafted adversarial lines, and demand
field-for-field equality.
"""

import dataclasses
import shutil

import pytest

from repro import DeltaStudy, StudyConfig
from repro.cluster.inventory import Inventory
from repro.pipeline.shard import DayScan, scan_day_file
from repro.syslog.chaos import ChaosConfig, corrupt_artifacts
from repro.syslog.reader import list_day_files


def _assert_scans_identical(fast: DayScan, slow: DayScan) -> None:
    """Field-for-field equality.

    Two fields are excluded by design: ``scan_wall_seconds`` (wall
    clock) and ``lines_decoded`` — the latter is the *point* of the
    bytes-first path (observability-only; the decoded reference
    decodes every line, the bytes-first path only its fallbacks), so
    it is checked as a relation instead.
    """
    for f in dataclasses.fields(DayScan):
        if f.name in ("scan_wall_seconds", "lines_decoded"):
            continue
        assert getattr(fast, f.name) == getattr(slow, f.name), (
            f"DayScan.{f.name} differs between bytes-first and decoded paths"
        )
    assert slow.lines_decoded == slow.lines_read
    assert fast.lines_decoded <= slow.lines_decoded


def _diff_corpus(artifact_dir) -> int:
    """Diff every day file through both paths; returns files checked."""
    inventory = Inventory.load(artifact_dir / "inventory.json")
    files = list_day_files(artifact_dir / "syslog")
    assert files
    for path in files:
        fast = scan_day_file(path, inventory, want_fingerprint=True)
        slow = scan_day_file(
            path, inventory, want_fingerprint=True, force_decode=True
        )
        _assert_scans_identical(fast, slow)
    return len(files)


@pytest.fixture(scope="module")
def clean_src(tmp_path_factory):
    """A small pristine corpus, shared (read-only) by every test."""
    src = tmp_path_factory.mktemp("prefilter") / "run"
    config = StudyConfig.small(
        seed=23, job_scale=0.003, op_days=10, include_episode=True
    )
    DeltaStudy(config).run(src)
    return src


class TestChaosDifferential:
    def test_clean_corpus_identical(self, clean_src):
        assert _diff_corpus(clean_src) > 0

    @pytest.mark.parametrize("chaos_seed", [3, 11, 29])
    def test_corrupted_corpus_identical(
        self, clean_src, tmp_path, chaos_seed
    ):
        """Heavy chaos (20x calibrated rates) through both paths."""
        work = tmp_path / "work"
        shutil.copytree(clean_src, work)
        corrupt_artifacts(
            work, ChaosConfig.calibrated(seed=chaos_seed).scaled(20.0)
        )
        _diff_corpus(work)

    def test_prefilter_actually_skips_decodes(self, clean_src):
        """The bytes-first path must decode a small minority of lines
        (otherwise it silently degraded to the legacy path)."""
        inventory = Inventory.load(clean_src / "inventory.json")
        files = list_day_files(clean_src / "syslog")
        read = decoded = 0
        for path in files:
            scan = scan_day_file(path, inventory)
            read += scan.lines_read
            decoded += scan.lines_decoded
        assert read > 0
        assert decoded / read < 0.5, (
            f"decode ratio {decoded / read:.2f}: prefilter not effective"
        )
        slow = scan_day_file(files[0], inventory, force_decode=True)
        assert slow.lines_decoded == slow.lines_read


class TestAdversarialLines:
    def _scan_both(self, tmp_path, payload: bytes):
        path = tmp_path / "syslog-2022-01-01.log"
        path.write_bytes(payload)
        fast = scan_day_file(path, None, want_fingerprint=True)
        slow = scan_day_file(
            path, None, want_fingerprint=True, force_decode=True
        )
        _assert_scans_identical(fast, slow)
        return fast

    def test_handcrafted_nasties(self, tmp_path):
        """Torn lines, mid-rune cuts, NUL bytes, CRLF, clock steps,
        missing hosts, excluded/unknown XIDs, ECC lines, bursts."""
        lines = [
            # Clean XID line (analyzed class).
            b"2022-01-01T00:00:01.000000 node-1 kernel: NVRM: Xid "
            b"(PCI:0000:27:00): 79, GPU has fallen off the bus.",
            # Burst repeat of the same triple.
            b"2022-01-01T00:00:01.100000 node-1 kernel: NVRM: Xid "
            b"(PCI:0000:27:00): 79, GPU has fallen off the bus.",
            # Excluded and unknown XIDs.
            b"2022-01-01T00:00:02.000000 node-1 kernel: NVRM: Xid "
            b"(PCI:0000:27:00): 13, Graphics Exception",
            b"2022-01-01T00:00:03.000000 node-1 kernel: NVRM: Xid "
            b"(PCI:0000:27:00): 999, mystery",
            # ECC accounting line.
            b"2022-01-01T00:00:04.000000 node-2 kernel: NVRM: GPU at "
            b"PCI:0000:63:00: uncorrectable ECC error",
            # Clock step backwards (repair), then recovery.
            b"2022-01-01T00:00:01.500000 node-1 late: clock stepped",
            b"2022-01-01T00:00:05.000000 node-1 ok: monotonic again",
            # Torn write: embedded second timestamp.
            b"2022-01-01T00:00:06.000000 node-1 a 2022-01-01T00:00:07"
            b".000000 node-1 b",
            # Missing host (trailing-colon host field).
            b"2022-01-01T00:00:08.000000 kernel: NVRM: Xid "
            b"(PCI:0000:27:00): 79, orphan",
            # Mid-UTF-8 cut and raw garbage.
            b"2022-01-01T00:00:09.000000 node-1 msg: caf\xc3",
            b"\x00\xff\xfe garbage " + bytes(range(32)),
            # CRLF line ending and empty lines.
            b"2022-01-01T00:00:10.000000 node-1 crlf: fine\r",
            b"",
            b"   ",
            # Double space between fields (whitespace-run tolerance).
            b"2022-01-01T00:00:11.000000 node-1  doubled: NVRM: Xid "
            b"(PCI:0000:27:00): 79, spaced",
            # Non-canonical timestamp (short fraction).
            b"2022-01-01T00:00:12.5 node-1 short: fraction",
        ]
        fast = self._scan_both(tmp_path, b"\n".join(lines) + b"\n")
        assert len(fast.hits) > 0
        assert fast.rejected or fast.repaired

    def test_truncated_final_line(self, tmp_path):
        """A file cut mid-line (no trailing newline), even mid-rune."""
        payload = (
            b"2022-01-01T00:00:01.000000 node-1 kernel: NVRM: Xid "
            b"(PCI:0000:27:00): 79, ok\n"
            b"2022-01-01T00:00:02.000000 node-1 cut mid-rune caf\xc3"
        )
        fast = self._scan_both(tmp_path, payload)
        assert fast.lines_read == 2

    def test_byte_mutation_fuzz(self, tmp_path):
        """Deterministic fuzz: random single-byte flips, deletions and
        splices over a realistic line mix, both paths per mutation."""
        import random

        rng = random.Random(1337)
        base = bytearray()
        for i in range(200):
            t = f"2022-01-01T00:{i // 60:02d}:{i % 60:02d}.{i:06d}"
            if i % 7 == 0:
                base += (
                    f"{t} node-{i % 5} kernel: NVRM: Xid "
                    f"(PCI:0000:{i % 200:02X}:00): 79, fell off\n"
                ).encode()
            elif i % 13 == 0:
                base += (
                    f"{t} node-{i % 5} kernel: NVRM: GPU at "
                    f"PCI:0000:{i % 200:02X}:00: uncorrectable ECC error\n"
                ).encode()
            else:
                base += f"{t} node-{i % 5} daemon: routine message {i}\n".encode()
        for trial in range(25):
            mutated = bytearray(base)
            for _ in range(rng.randrange(1, 6)):
                kind = rng.randrange(3)
                pos = rng.randrange(len(mutated))
                if kind == 0:
                    mutated[pos] = rng.randrange(256)
                elif kind == 1:
                    del mutated[pos : pos + rng.randrange(1, 40)]
                else:
                    mutated[pos:pos] = bytes(
                        rng.randrange(256) for _ in range(rng.randrange(1, 8))
                    )
            self._scan_both(tmp_path, bytes(mutated))
