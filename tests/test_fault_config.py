"""Unit tests for fault-model configuration (repro.faults.config)."""

import pytest

from repro.core.exceptions import CalibrationError
from repro.core.periods import PeriodName, StudyWindow
from repro.core.xid import EventClass
from repro.faults.config import (
    DefectiveEpisodeConfig,
    DuplicationConfig,
    EpisodeShape,
    ImpactPolicy,
    SimpleFaultConfig,
    UtilizationCouplingConfig,
)
from repro.calibration.delta import delta_fault_suite, delta_memory_chain


class TestEpisodeShape:
    def test_mean_errors_includes_onset(self):
        assert EpisodeShape(mean_extra_errors=14.0).mean_errors == 15.0
        assert EpisodeShape().mean_errors == 1.0

    def test_validation(self):
        with pytest.raises(CalibrationError):
            EpisodeShape(mean_extra_errors=-1.0)
        with pytest.raises(CalibrationError):
            EpisodeShape(mean_duration_hours=0.0)


class TestImpactPolicy:
    @pytest.mark.parametrize(
        "field",
        ["kill_probability", "recovery_probability", "propagate_mmu_probability"],
    )
    def test_probability_validation(self, field):
        with pytest.raises(CalibrationError, match=field):
            ImpactPolicy(**{field: 2.0})


class TestOnsetRates:
    def test_rates_invert_counts(self):
        window = StudyWindow.delta_default()
        config = SimpleFaultConfig(
            event_class=EventClass.MMU_ERROR,
            xid=31,
            pre_op_count=1078,
            op_count=8863,
            episode=EpisodeShape(mean_extra_errors=1.5),
        )
        pre_rate, op_rate = config.onset_rates_per_hour(window)
        pre_hours = window.pre_operational.duration_hours
        op_hours = window.operational.duration_hours
        # rate * episode-mean * hours recovers the count targets.
        assert pre_rate * 2.5 * pre_hours == pytest.approx(1078)
        assert op_rate * 2.5 * op_hours == pytest.approx(8863)

    def test_negative_counts_rejected(self):
        with pytest.raises(CalibrationError):
            SimpleFaultConfig(
                event_class=EventClass.MMU_ERROR,
                xid=31,
                pre_op_count=-1,
                op_count=0,
            )


class TestMemoryChain:
    def test_params_for_period(self):
        chain = delta_memory_chain()
        assert chain.params_for(PeriodName.PRE_OPERATIONAL) is chain.pre_op
        assert chain.params_for(PeriodName.OPERATIONAL) is chain.op

    def test_delta_branch_probabilities_from_table1(self):
        chain = delta_memory_chain()
        # 15 RRF of 46 attempts pre-op; 0 of 34 op.
        assert chain.pre_op.remap_failure_probability == pytest.approx(15 / 46)
        assert chain.op.remap_failure_probability == 0.0
        # 13 contained + 11 uncontained of 24 touches op.
        assert chain.op.recovery.containment_success_probability == pytest.approx(
            13 / 24
        )

    def test_onset_rates(self):
        window = StudyWindow.delta_default()
        pre, op = delta_memory_chain().onset_rates_per_hour(window)
        assert pre * window.pre_operational.duration_hours == pytest.approx(46)
        assert op * window.operational.duration_hours == pytest.approx(34)


class TestDefectiveEpisode:
    def test_expected_count_near_38900(self):
        episode = DefectiveEpisodeConfig()
        assert episode.expected_logical_errors == pytest.approx(38_900, rel=0.01)

    def test_expected_raw_volume_over_a_million(self):
        episode = DefectiveEpisodeConfig()
        raw = episode.expected_logical_errors * (1 + episode.duplicates_mean)
        assert raw > 1_000_000  # "over a million duplicated log entries"

    def test_validation(self):
        with pytest.raises(CalibrationError):
            DefectiveEpisodeConfig(start_day=10, end_day=10)


class TestUtilizationCoupling:
    def test_default_reproduces_gsp_factor(self):
        coupling = UtilizationCouplingConfig()
        op = coupling.rate_multiplier(PeriodName.OPERATIONAL)
        pre = coupling.rate_multiplier(PeriodName.PRE_OPERATIONAL)
        # The utilization jump alone yields the paper's ~5.6x GSP factor.
        assert op / pre == pytest.approx(5.6, rel=0.05)

    def test_derive_pre_op_rate(self):
        coupling = UtilizationCouplingConfig()
        derived = coupling.derive_pre_op_rate(10.0)
        assert derived == pytest.approx(
            10.0
            * coupling.rate_multiplier(PeriodName.PRE_OPERATIONAL)
            / coupling.rate_multiplier(PeriodName.OPERATIONAL)
        )

    def test_validation(self):
        with pytest.raises(CalibrationError):
            UtilizationCouplingConfig(pre_op_utilization=1.5)


class TestSuite:
    def test_delta_suite_has_all_simple_classes(self):
        suite = delta_fault_suite()
        classes = {cfg.event_class for cfg in suite.simple_faults}
        assert classes == {
            EventClass.MMU_ERROR,
            EventClass.GSP_ERROR,
            EventClass.PMU_SPI_ERROR,
            EventClass.FALLEN_OFF_BUS,
        }

    def test_fault_for_lookup(self):
        suite = delta_fault_suite()
        assert suite.fault_for(EventClass.GSP_ERROR).xid == 119
        with pytest.raises(CalibrationError):
            suite.fault_for(EventClass.NVLINK_ERROR)

    def test_without_episode(self):
        suite = delta_fault_suite().without_episode()
        assert suite.defective_episode is None

    def test_with_coupling(self):
        coupling = UtilizationCouplingConfig()
        suite = delta_fault_suite().with_coupling(coupling)
        assert suite.utilization_coupling is coupling

    def test_duplication_validation(self):
        with pytest.raises(CalibrationError):
            DuplicationConfig(mean_extra_lines=-1.0)

    def test_gsp_kills_whole_node(self):
        from repro.faults.config import KillScope

        suite = delta_fault_suite()
        gsp = suite.fault_for(EventClass.GSP_ERROR)
        assert gsp.impact.kill_scope is KillScope.NODE
        assert gsp.impact.kill_probability == 1.0
        assert gsp.impact.node_failure_state
