"""Unit tests for the workload layer (spec, names, generator)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.ml import is_ml_job_name
from repro.core.exceptions import CalibrationError
from repro.core.periods import StudyWindow
from repro.workload.generator import WorkloadConfig, WorkloadGenerator
from repro.workload.names import draw_job_name, draw_user
from repro.workload.spec import (
    TABLE3_BUCKETS,
    WorkloadSpec,
    bucket_for_gpu_count,
    capped_lognormal_mean,
    solve_sigma,
)


class TestSolveSigma:
    @pytest.mark.parametrize("bucket", TABLE3_BUCKETS, ids=lambda b: b.label)
    def test_every_table3_bucket_solvable(self, bucket):
        sigma = bucket.duration_sigma
        assert sigma > 0
        mean = capped_lognormal_mean(bucket.duration_mu, sigma, bucket.p99_minutes)
        assert mean == pytest.approx(bucket.mean_minutes, rel=0.01)

    def test_monte_carlo_agrees_with_analytic(self):
        bucket = TABLE3_BUCKETS[0]
        rng = np.random.default_rng(1)
        draws = rng.lognormal(
            mean=bucket.duration_mu, sigma=bucket.duration_sigma, size=200_000
        )
        capped = np.minimum(draws, bucket.p99_minutes)
        assert capped.mean() == pytest.approx(bucket.mean_minutes, rel=0.05)

    def test_inconsistent_stats_rejected(self):
        with pytest.raises(CalibrationError):
            solve_sigma(median=10.0, mean=5.0, cap=5.0)  # cap <= median

    @given(
        median=st.floats(min_value=0.5, max_value=100),
        ratio=st.floats(min_value=1.2, max_value=20),
    )
    @settings(max_examples=30, deadline=None)
    def test_solved_sigma_reproduces_mean(self, median, ratio):
        cap = median * 500
        mean = median * ratio
        sigma = solve_sigma(median=median, mean=mean, cap=cap)
        assert capped_lognormal_mean(
            np.log(median), sigma, cap
        ) == pytest.approx(mean, rel=0.01)


class TestBuckets:
    def test_shares_sum_to_one(self):
        assert sum(b.job_share for b in TABLE3_BUCKETS) == pytest.approx(1.0, abs=0.01)

    @pytest.mark.parametrize(
        "count,label",
        [(1, "1"), (2, "2-4"), (4, "2-4"), (5, "4-8"), (8, "4-8"), (9, "8-32"),
         (32, "8-32"), (64, "32-64"), (448, "256+")],
    )
    def test_bucket_lookup(self, count, label):
        bucket = bucket_for_gpu_count(count)
        assert bucket is not None and bucket.label == label

    def test_bucket_lookup_out_of_range(self):
        assert bucket_for_gpu_count(0) is None
        assert bucket_for_gpu_count(10_000) is None

    def test_ml_probability_from_gpu_hours(self):
        bucket = TABLE3_BUCKETS[0]
        assert bucket.ml_probability == pytest.approx(241.6 / (241.6 + 2724.0))

    def test_gpu_count_weights_normalized(self):
        for bucket in TABLE3_BUCKETS:
            counts, weights = bucket.gpu_count_weights()
            assert len(counts) == len(weights)
            assert sum(weights) == pytest.approx(1.0)
            assert all(bucket.min_gpus <= c <= bucket.max_gpus for c in counts)


class TestWorkloadSpec:
    def test_arrival_rates(self):
        spec = WorkloadSpec()
        # 1,445,119 GPU jobs over 895 days.
        assert spec.gpu_arrival_rate_per_hour == pytest.approx(67.3, rel=0.01)
        assert spec.cpu_arrival_rate_per_hour == pytest.approx(78.5, rel=0.01)

    def test_intrinsic_failure_probabilities(self):
        spec = WorkloadSpec()
        assert spec.gpu_intrinsic_failure_probability == pytest.approx(
            1 - 0.7468 - 3285 / 1_445_119, abs=1e-6
        )
        assert spec.cpu_intrinsic_failure_probability == pytest.approx(0.251)

    def test_bad_bucket_shares_rejected(self):
        bad = TABLE3_BUCKETS[:2]
        with pytest.raises(CalibrationError, match="shares"):
            WorkloadSpec(buckets=tuple(bad))


class TestNames:
    def test_ml_names_mostly_detectable(self, rng):
        names = [draw_job_name(rng, is_ml=True) for _ in range(2000)]
        detected = sum(is_ml_job_name(n) for n in names)
        # ~12% use opaque names the keyword heuristic misses.
        assert detected / 2000 == pytest.approx(0.88, abs=0.04)

    def test_hpc_names_rarely_flagged(self, rng):
        names = [draw_job_name(rng, is_ml=False) for _ in range(2000)]
        flagged = sum(is_ml_job_name(n) for n in names)
        assert flagged / 2000 < 0.02

    def test_user_population(self, rng):
        users = {draw_user(rng, population=10) for _ in range(500)}
        assert len(users) == 10


class TestGenerator:
    def _generate(self, scale=0.005, seed=3, window=None):
        window = window or StudyWindow.scaled(pre_days=10, op_days=90)
        config = WorkloadConfig(job_scale=scale)
        generator = WorkloadGenerator(config, np.random.default_rng(seed))
        return generator.generate(window), window

    def test_ids_monotone_in_submit_order(self):
        requests, _ = self._generate()
        assert [r.job_id for r in requests] == list(range(1, len(requests) + 1))
        times = [r.submit_time for r in requests]
        assert times == sorted(times)

    def test_contains_both_partitions(self):
        requests, _ = self._generate()
        partitions = {r.partition for r in requests}
        assert any(p.is_gpu for p in partitions)
        assert any(not p.is_gpu for p in partitions)

    def test_gpu_share_matches_table3(self):
        requests, _ = self._generate(scale=0.02)
        gpu_jobs = [r for r in requests if r.gpu_count > 0]
        single = sum(1 for r in gpu_jobs if r.gpu_count == 1)
        assert single / len(gpu_jobs) == pytest.approx(0.6986, abs=0.03)

    def test_pre_op_load_factor(self):
        requests, window = self._generate(scale=0.02)
        boundary = window.operational.start
        pre = sum(1 for r in requests if r.submit_time < boundary)
        op = len(requests) - pre
        pre_rate = pre / window.pre_operational.duration_hours
        op_rate = op / window.operational.duration_hours
        assert pre_rate / op_rate == pytest.approx(0.10, abs=0.04)

    def test_max_gpu_count_clamp(self):
        window = StudyWindow.scaled(pre_days=5, op_days=50)
        config = WorkloadConfig(job_scale=0.02, max_gpu_count=8)
        generator = WorkloadGenerator(config, np.random.default_rng(5))
        requests = generator.generate(window)
        assert max(r.gpu_count for r in requests) <= 8

    def test_error_kill_allowance_reduces_intrinsic_failures(self):
        spec_prob = WorkloadConfig(
            job_scale=0.01, error_kill_allowance=0.0
        ).gpu_intrinsic_failure_probability
        adjusted = WorkloadConfig(
            job_scale=0.01
        ).gpu_intrinsic_failure_probability
        assert adjusted < spec_prob

    def test_job_scale_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(job_scale=0.0)
        with pytest.raises(ValueError):
            WorkloadConfig(job_scale=1.5)
        with pytest.raises(ValueError):
            WorkloadConfig(error_kill_allowance=1.0)

    def test_durations_positive_and_capped(self):
        requests, _ = self._generate(scale=0.02)
        for request in requests:
            assert request.duration > 0
            # global walltime ceiling: 48h + rounding
            assert request.duration <= 2881 * 60


class TestGeneratorDistributions:
    def test_p99_matches_bucket_cap(self):
        """Per-bucket P99 elapsed minutes land at the configured cap."""
        import numpy as np
        from repro.workload.spec import TABLE3_BUCKETS

        rng = np.random.default_rng(8)
        bucket = TABLE3_BUCKETS[0]
        draws = rng.lognormal(
            mean=bucket.duration_mu, sigma=bucket.duration_sigma, size=100_000
        )
        capped = np.minimum(draws, bucket.p99_minutes)
        # With >=1% of mass at the cap, P99 equals the cap.
        assert np.percentile(capped, 99) == pytest.approx(
            bucket.p99_minutes, rel=0.01
        )

    def test_ml_probability_realized_per_bucket(self):
        from repro.core.periods import StudyWindow

        window = StudyWindow.scaled(pre_days=5, op_days=120)
        config = WorkloadConfig(job_scale=0.05, include_cpu_jobs=False)
        generator = WorkloadGenerator(config, np.random.default_rng(10))
        requests = generator.generate(window)
        singles = [r for r in requests if r.gpu_count == 1]
        ml_share = sum(r.is_ml for r in singles) / len(singles)
        from repro.workload.spec import TABLE3_BUCKETS

        assert ml_share == pytest.approx(
            TABLE3_BUCKETS[0].ml_probability, abs=0.02
        )

    def test_intrinsic_failure_rate_realized(self):
        from repro.core.periods import StudyWindow

        window = StudyWindow.scaled(pre_days=5, op_days=120)
        config = WorkloadConfig(job_scale=0.05, include_cpu_jobs=False)
        generator = WorkloadGenerator(config, np.random.default_rng(11))
        requests = generator.generate(window)
        rate = sum(r.intrinsic_failure for r in requests) / len(requests)
        assert rate == pytest.approx(
            config.gpu_intrinsic_failure_probability, abs=0.01
        )
