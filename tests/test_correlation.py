"""Tests for cross-class error correlation (repro.analysis.correlation)."""

import pytest

from repro.analysis.correlation import (
    correlation_matrix,
    follow_probability,
    strongest_chains,
)
from repro.core.periods import StudyWindow
from repro.core.records import ExtractedError
from repro.core.timebase import DAY, HOUR
from repro.core.xid import EventClass


@pytest.fixture()
def window():
    return StudyWindow.scaled(pre_days=10, op_days=40)


def error(time, event, node="gpua001", gpu=0):
    return ExtractedError(
        time=time, node=node, gpu_index=gpu, event_class=event, xid=31
    )


def chained_errors(n=50, delay=180.0, spacing=12 * HOUR):
    """PMU errors each followed by an MMU error on the same unit."""
    errors = []
    for i in range(n):
        base = 1000.0 + i * spacing
        errors.append(error(base, EventClass.PMU_SPI_ERROR, gpu=i % 4))
        errors.append(error(base + delay, EventClass.MMU_ERROR, gpu=i % 4))
    return errors


class TestFollowProbability:
    def test_planted_chain_detected(self, window):
        stats = follow_probability(
            chained_errors(),
            EventClass.PMU_SPI_ERROR,
            EventClass.MMU_ERROR,
            window,
        )
        assert stats.source_events == 50
        assert stats.followed == 50
        assert stats.probability == 1.0
        assert stats.lift is not None and stats.lift > 50

    def test_chain_direction_matters(self, window):
        stats = follow_probability(
            chained_errors(),
            EventClass.MMU_ERROR,
            EventClass.PMU_SPI_ERROR,
            window,
        )
        # MMU errors are *followed by* the next pair's PMU error only
        # 12 hours later — outside the window.
        assert stats.followed == 0

    def test_different_unit_does_not_count(self, window):
        errors = [
            error(1000.0, EventClass.PMU_SPI_ERROR, gpu=0),
            error(1060.0, EventClass.MMU_ERROR, gpu=1),
        ]
        stats = follow_probability(
            errors, EventClass.PMU_SPI_ERROR, EventClass.MMU_ERROR, window
        )
        assert stats.followed == 0

    def test_outside_window_does_not_count(self, window):
        errors = [
            error(1000.0, EventClass.PMU_SPI_ERROR),
            error(1000.0 + 2000.0, EventClass.MMU_ERROR),
        ]
        stats = follow_probability(
            errors,
            EventClass.PMU_SPI_ERROR,
            EventClass.MMU_ERROR,
            window,
            within_seconds=900.0,
        )
        assert stats.followed == 0

    def test_no_source_events(self, window):
        stats = follow_probability(
            [error(1.0, EventClass.MMU_ERROR)],
            EventClass.PMU_SPI_ERROR,
            EventClass.MMU_ERROR,
            window,
        )
        assert stats.probability is None
        assert stats.lift is None

    def test_invalid_window_rejected(self, window):
        with pytest.raises(ValueError):
            follow_probability(
                [], EventClass.PMU_SPI_ERROR, EventClass.MMU_ERROR, window,
                within_seconds=0.0,
            )

    def test_independent_classes_lift_near_one(self, window):
        import numpy as np

        rng = np.random.default_rng(3)
        errors = []
        duration = window.end - window.start
        # Dense independent Poisson traffic of both classes on one unit.
        for event_class, count in (
            (EventClass.PMU_SPI_ERROR, 400),
            (EventClass.MMU_ERROR, 2000),
        ):
            for t in rng.uniform(0, duration, size=count):
                errors.append(error(float(t), event_class))
        stats = follow_probability(
            errors, EventClass.PMU_SPI_ERROR, EventClass.MMU_ERROR, window
        )
        assert stats.lift == pytest.approx(1.0, abs=0.45)


class TestMatrix:
    def test_matrix_filters_rare_sources(self, window):
        errors = chained_errors(n=5)  # below min_source_events
        matrix = correlation_matrix(errors, window, min_source_events=10)
        assert (EventClass.PMU_SPI_ERROR, EventClass.MMU_ERROR) not in matrix

    def test_strongest_chains_ranking(self, window):
        matrix = correlation_matrix(chained_errors(), window)
        chains = strongest_chains(matrix)
        assert chains
        top = chains[0]
        assert top.source is EventClass.PMU_SPI_ERROR
        assert top.target is EventClass.MMU_ERROR


class TestOnSimulatedRun:
    def test_pmu_mmu_chain_emerges_from_injector(self, small_run):
        """The injector's PMU→MMU propagation shows up as lift >> 1."""
        artifacts, result = small_run
        stats = follow_probability(
            result.errors,
            EventClass.PMU_SPI_ERROR,
            EventClass.MMU_ERROR,
            artifacts.window,
            within_seconds=900.0,
        )
        if stats.source_events < 5:
            pytest.skip("too few PMU errors in this run")
        assert stats.lift is not None
        assert stats.lift > 3.0
