"""Campaign supervisor: isolation, retry, resume, degradation.

These tests drive real worker subprocesses over a deliberately tiny
study configuration (a few simulated days, thinned workload) so the
full fork/retry/kill machinery is exercised in seconds.
"""

from __future__ import annotations

import json

import pytest

from repro.core.exceptions import CampaignError, ConfigurationError
from repro.study.chaos import WorkerChaosConfig
from repro.study.supervise import (
    STATUS_DONE,
    STATUS_FAILED,
    CampaignLimits,
    CampaignSpec,
    CampaignSupervisor,
    CellSpec,
)

TINY = {"pre_days": 1.0, "op_days": 3.0, "job_scale": 0.01}

FAST_LIMITS = dict(
    timeout_seconds=120.0,
    backoff_base_seconds=0.01,
    backoff_max_seconds=0.05,
)


def _spec(name, seeds, *, max_attempts=3, max_workers=4, chaos=None, **kwargs):
    return CampaignSpec.sweep(
        name=name,
        preset="small",
        seeds=tuple(seeds),
        overrides=dict(TINY),
        limits=CampaignLimits(
            max_workers=max_workers,
            max_attempts=max_attempts,
            **FAST_LIMITS,
        ),
        chaos=chaos,
        **kwargs,
    )


class TestSpec:
    def test_sweep_cell_ids(self):
        spec = _spec("s", [7, 8])
        assert [c.cell_id for c in spec.cells] == [
            "small-seed00007",
            "small-seed00008",
        ]

    def test_empty_campaign_rejected(self):
        with pytest.raises(CampaignError):
            CampaignSpec(name="s", cells=())

    def test_duplicate_cells_rejected(self):
        cell = CellSpec(cell_id="c", preset="small", seed=1)
        with pytest.raises(CampaignError):
            CampaignSpec(name="s", cells=(cell, cell))

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError):
            CellSpec(cell_id="c", preset="huge", seed=1)

    def test_digest_ignores_supervision_policy(self):
        lax = _spec("s", [7, 8])
        strict = CampaignSpec(
            name="other-name",
            cells=lax.cells,
            limits=CampaignLimits(max_workers=1, timeout_seconds=5.0),
            chaos=WorkerChaosConfig.storm(seed=1),
        )
        assert lax.digest() == strict.digest()

    def test_digest_covers_cells_and_cadence(self):
        assert _spec("s", [7, 8]).digest() != _spec("s", [7, 9]).digest()
        assert (
            _spec("s", [7], checkpoint_cadence_days=1.0).digest()
            != _spec("s", [7]).digest()
        )


class TestBackoff:
    def test_deterministic_and_bounded(self):
        limits = CampaignLimits(
            backoff_base_seconds=0.5,
            backoff_factor=2.0,
            backoff_max_seconds=4.0,
            backoff_jitter=0.25,
        )
        first = limits.backoff_seconds("camp", "cell", 1)
        assert first == limits.backoff_seconds("camp", "cell", 1)
        assert 0.5 <= first <= 0.5 * 1.25
        # Exponential growth, capped (plus jitter headroom).
        assert limits.backoff_seconds("camp", "cell", 10) <= 4.0 * 1.25

    def test_jitter_varies_by_cell(self):
        limits = CampaignLimits()
        delays = {
            limits.backoff_seconds("camp", f"cell{i}", 1) for i in range(8)
        }
        assert len(delays) > 1


class TestCampaignRuns:
    def test_clean_campaign_full_coverage(self, tmp_path):
        spec = _spec("clean", [7, 8], max_workers=2)
        result = CampaignSupervisor(spec, tmp_path / "camp").run()
        assert result.succeeded
        assert result.coverage.complete
        assert result.coverage.cells_total == 2
        assert sorted(result.cell_status.values()) == ["done", "done"]
        manifest = json.loads(result.manifest_path.read_text("utf-8"))
        assert all(
            cell["attempts"] == 1 and cell["status"] == STATUS_DONE
            for cell in manifest["cells"].values()
        )
        summary = json.loads(result.summary_path.read_text("utf-8"))
        assert summary["coverage"]["fraction"] == 1.0
        assert summary["aggregates"]["cells"] == 2
        for cell_id in result.cell_status:
            cell_dir = tmp_path / "camp" / "cells" / cell_id
            assert (cell_dir / "result.json").is_file()
            assert (cell_dir / "worker-attempt01.log").is_file()

    def test_chaos_storm_converges_with_identical_aggregates(self, tmp_path):
        """The acceptance drill: kill/garbage chaos, byte-identical sums."""
        seeds = (7, 8, 9)
        clean = CampaignSupervisor(
            _spec("drill", seeds), tmp_path / "clean"
        ).run()
        chaos = WorkerChaosConfig(
            seed=5,
            kill_probability=0.5,
            garbage_exit_probability=0.5,
            max_strikes_per_cell=1,
        )
        stormy = CampaignSupervisor(
            _spec("drill", seeds, chaos=chaos), tmp_path / "stormy"
        ).run()
        assert stormy.coverage.complete
        assert stormy.aggregates == clean.aggregates
        # Byte-identical summaries (graceful-degradation artifact).
        assert (
            stormy.summary_path.read_bytes() == clean.summary_path.read_bytes()
        )
        # Every cell burned exactly one sabotaged attempt, then passed.
        manifest = json.loads(stormy.manifest_path.read_text("utf-8"))
        for cell in manifest["cells"].values():
            assert cell["attempts"] == 2
            assert cell["history"][0]["outcome"] in ("crash", "error")
            assert cell["history"][1]["outcome"] == "ok"

    def test_checkpointed_chaos_retry_verifies_chain(self, tmp_path):
        """A retry resumes the killed attempt's engine checkpoint chain."""
        chaos = WorkerChaosConfig(
            seed=2, kill_probability=1.0, max_strikes_per_cell=1
        )
        spec = _spec(
            "ck", [7], chaos=chaos, checkpoint_cadence_days=1.0
        )
        result = CampaignSupervisor(spec, tmp_path / "camp").run()
        assert result.coverage.complete
        cell_dir = tmp_path / "camp" / "cells" / "small-seed00007"
        doc = json.loads(
            (cell_dir / "engine_checkpoint.json").read_text("utf-8")
        )
        assert doc["completed"]

        # Same seed, no chaos, same cadence: the chain must match.
        baseline = CampaignSupervisor(
            _spec("ck", [7], checkpoint_cadence_days=1.0),
            tmp_path / "baseline",
        ).run()
        assert baseline.coverage.complete
        base_doc = json.loads(
            (
                tmp_path
                / "baseline"
                / "cells"
                / "small-seed00007"
                / "engine_checkpoint.json"
            ).read_text("utf-8")
        )
        assert doc["records"] == base_doc["records"]

    def test_timeout_reclaims_hung_worker(self, tmp_path):
        chaos = WorkerChaosConfig(
            seed=1, hang_probability=1.0, max_strikes_per_cell=1
        )
        spec = CampaignSpec.sweep(
            name="hang",
            preset="small",
            seeds=(7,),
            overrides=dict(TINY),
            limits=CampaignLimits(
                max_workers=1,
                timeout_seconds=3.0,
                max_attempts=3,
                backoff_base_seconds=0.01,
            ),
            chaos=chaos,
        )
        result = CampaignSupervisor(spec, tmp_path / "camp").run()
        assert result.coverage.complete
        manifest = json.loads(result.manifest_path.read_text("utf-8"))
        history = manifest["cells"]["small-seed00007"]["history"]
        assert [h["outcome"] for h in history] == ["timeout", "ok"]

    def test_permanent_failures_degrade_gracefully(self, tmp_path):
        # Sabotage every attempt of every cell, but give one cell a
        # clean budget by exempting it via the strikes window: instead,
        # fail half the cells deterministically by computing the chaos
        # plans up front and asserting the supervisor agrees.
        chaos = WorkerChaosConfig(
            seed=9, garbage_exit_probability=0.5, max_strikes_per_cell=99
        )
        seeds = (7, 8, 9, 10)
        spec = _spec("deg", seeds, chaos=chaos, max_attempts=2)
        expected_failed = {
            f"small-seed{seed:05d}"
            for seed in seeds
            if all(
                not chaos.plan(f"small-seed{seed:05d}", attempt).is_noop
                for attempt in (1, 2)
            )
        }
        expected_done = {
            f"small-seed{seed:05d}" for seed in seeds
        } - expected_failed
        assert expected_failed and expected_done  # seed 9 gives a mix

        result = CampaignSupervisor(spec, tmp_path / "camp").run()
        assert not result.coverage.complete
        assert set(result.coverage.missing) == expected_failed
        assert {
            cell_id
            for cell_id, status in result.cell_status.items()
            if status == STATUS_DONE
        } == expected_done
        assert {
            cell_id
            for cell_id, status in result.cell_status.items()
            if status == STATUS_FAILED
        } == expected_failed
        summary = json.loads(result.summary_path.read_text("utf-8"))
        assert summary["coverage"]["missing_cells"] == sorted(expected_failed)
        assert summary["aggregates"]["cells"] == len(expected_done)
        assert "Degraded campaign" in (
            (tmp_path / "camp" / "summary.md").read_text("utf-8")
        )

    def test_all_cells_failing_raises(self, tmp_path):
        chaos = WorkerChaosConfig(
            seed=1, garbage_exit_probability=1.0, max_strikes_per_cell=99
        )
        spec = _spec("dead", [7, 8], chaos=chaos, max_attempts=1)
        with pytest.raises(CampaignError, match="no cell produced a result"):
            CampaignSupervisor(spec, tmp_path / "camp").run()


class TestResume:
    def test_interrupted_pass_resumes_to_completion(self, tmp_path):
        spec = _spec("resume", [7, 8, 9], max_workers=1)
        supervisor = CampaignSupervisor(spec, tmp_path / "camp")
        first = supervisor.run(stop_after_cells=1)
        assert first.interrupted
        assert not first.succeeded
        assert first.coverage.cells_completed == 1

        second = CampaignSupervisor(spec, tmp_path / "camp").run(resume=True)
        assert second.succeeded
        assert second.coverage.cells_completed == 3
        # The completed cell was not re-run.
        manifest = json.loads(second.manifest_path.read_text("utf-8"))
        attempts = sorted(
            cell["attempts"] for cell in manifest["cells"].values()
        )
        assert attempts.count(1) == 3

    def test_resume_requeues_cell_with_missing_result(self, tmp_path):
        spec = _spec("heal", [7], max_workers=1)
        camp = tmp_path / "camp"
        first = CampaignSupervisor(spec, camp).run()
        assert first.succeeded
        (camp / "cells" / "small-seed00007" / "result.json").unlink()
        second = CampaignSupervisor(spec, camp).run(resume=True)
        assert second.succeeded
        manifest = json.loads(second.manifest_path.read_text("utf-8"))
        assert manifest["cells"]["small-seed00007"]["attempts"] == 2

    def test_resume_with_other_spec_refused(self, tmp_path):
        camp = tmp_path / "camp"
        CampaignSupervisor(_spec("a", [7]), camp).run()
        with pytest.raises(CampaignError, match="different campaign spec"):
            CampaignSupervisor(_spec("a", [7, 8]), camp).run(resume=True)

    def test_fresh_run_ignores_previous_manifest(self, tmp_path):
        camp = tmp_path / "camp"
        CampaignSupervisor(_spec("a", [7]), camp).run()
        # Without resume, a different spec simply starts over.
        result = CampaignSupervisor(_spec("b", [8]), camp).run()
        assert result.coverage.complete
        manifest = json.loads(result.manifest_path.read_text("utf-8"))
        assert list(manifest["cells"]) == ["small-seed00008"]
