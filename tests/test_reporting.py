"""Unit tests for reporting (compare, tables, figures)."""

import pytest

from repro.analysis.availability import AvailabilityAnalysis
from repro.analysis.job_impact import JobImpactResult, ClassImpact
from repro.analysis.mtbe import MtbeAnalysis
from repro.core.periods import StudyWindow
from repro.core.records import DowntimeRecord, ExtractedError
from repro.core.timebase import DAY, HOUR
from repro.core.xid import EventClass
from repro.reporting.compare import Comparison, ComparisonReport
from repro.reporting.figures import figure2_csv, render_figure2
from repro.reporting.tables import render_table1, render_table2


class TestComparison:
    def test_within_tolerance(self):
        comparison = Comparison("x", paper_value=100.0, measured_value=110.0, rel_tolerance=0.15)
        assert comparison.ok
        assert comparison.rel_error == pytest.approx(0.10)

    def test_outside_tolerance(self):
        comparison = Comparison("x", 100.0, 130.0, 0.15)
        assert not comparison.ok

    def test_missing_measurement_fails(self):
        comparison = Comparison("x", 100.0, None, 0.5)
        assert not comparison.ok
        assert comparison.rel_error is None
        assert "NA" in comparison.render()

    def test_render_contains_values(self):
        text = Comparison("metric-name", 100.0, 90.0, 0.2).render()
        assert "metric-name" in text
        assert "-10.0%" in text

    def test_report_aggregation(self):
        report = ComparisonReport("test")
        report.add("a", 1.0, 1.05, 0.10)
        report.add("b", 1.0, 2.0, 0.10)
        assert not report.all_ok
        assert len(report.failures) == 1
        assert report.failures[0].name == "b"
        rendered = report.render()
        assert "1/2 within tolerance" in rendered

    def test_markdown_rendering(self):
        report = ComparisonReport("Exp")
        report.add("a", 1.0, 1.05, 0.10)
        md = report.render_markdown()
        assert "| a | 1 | 1.05 |" in md
        assert md.startswith("### Exp")


class TestTableRenderers:
    def _mtbe(self):
        window = StudyWindow.scaled(pre_days=10, op_days=40)
        errors = [
            ExtractedError(
                time=11 * DAY + i * HOUR,
                node="gpua001",
                gpu_index=0,
                event_class=EventClass.MMU_ERROR,
                xid=31,
            )
            for i in range(5)
        ]
        return MtbeAnalysis(errors, window, node_count=10)

    def test_table1_contains_all_rows(self):
        text = render_table1(self._mtbe())
        for label in ("MMU Error", "RRE", "RRF", "NVLink", "GSP Error", "PMU SPI"):
            assert label in text
        assert "paper preN" in text

    def test_table1_without_paper_columns(self):
        text = render_table1(self._mtbe(), include_paper=False)
        assert "paper preN" not in text

    def test_table2_renders_probabilities(self):
        impact = JobImpactResult(
            per_class={
                EventClass.MMU_ERROR: ClassImpact(
                    event_class=EventClass.MMU_ERROR,
                    jobs_encountering=100,
                    gpu_failed_jobs=90,
                )
            },
            total_gpu_failed_jobs=90,
            total_jobs_analyzed=1000,
        )
        text = render_table2(impact)
        assert "90.00" in text
        assert "Total GPU-failed jobs: 90" in text
        # Classes without encounters still render as '-' rows.
        assert "GSP Error" in text


class TestFigureRenderers:
    def _dist(self):
        window = StudyWindow.scaled(pre_days=10, op_days=40)
        episodes = [
            DowntimeRecord(
                node="gpua001",
                start=11 * DAY + i * HOUR * 10,
                end=11 * DAY + i * HOUR * 10 + 1800,
                cause=EventClass.GSP_ERROR,
            )
            for i in range(10)
        ]
        return AvailabilityAnalysis(episodes, window, node_count=10).distribution()

    def test_render_figure2(self):
        text = render_figure2(self._dist())
        assert "Unavailability Time Distribution" in text
        assert "episodes=10" in text
        assert "#" in text

    def test_render_figure2_empty(self):
        window = StudyWindow.scaled(pre_days=10, op_days=40)
        dist = AvailabilityAnalysis([], window, node_count=10).distribution()
        text = render_figure2(dist)
        assert "episodes=0" in text

    def test_figure2_csv(self):
        csv_text = figure2_csv(self._dist())
        lines = csv_text.splitlines()
        assert lines[0] == "bin_low_hours,bin_high_hours,count,fraction"
        assert len(lines) > 5
        total = sum(int(line.split(",")[2]) for line in lines[1:])
        assert total == 10
