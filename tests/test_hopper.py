"""Tests for the Grace Hopper projection preset (repro.calibration.hopper)."""

import pytest

from repro.calibration.delta import delta_fault_suite
from repro.calibration.hopper import (
    HOPPER_SHAPE,
    HopperProjection,
    hopper_fault_suite,
    hopper_study_config,
)
from repro.core.xid import EventClass


class TestProjectionValidation:
    def test_negative_multiplier_rejected(self):
        with pytest.raises(ValueError):
            HopperProjection(gsp_rate_multiplier=-0.1)

    def test_retry_probability_bounds(self):
        with pytest.raises(ValueError):
            HopperProjection(nvlink_retry_success=1.5)


class TestSuiteScaling:
    def test_gsp_rates_scaled(self):
        baseline = delta_fault_suite(include_episode=False)
        projected = hopper_fault_suite(HopperProjection(gsp_rate_multiplier=0.5))
        base_gsp = baseline.fault_for(EventClass.GSP_ERROR)
        proj_gsp = projected.fault_for(EventClass.GSP_ERROR)
        assert proj_gsp.op_count == pytest.approx(base_gsp.op_count * 0.5)
        assert proj_gsp.pre_op_count == pytest.approx(base_gsp.pre_op_count * 0.5)

    def test_memory_rates_scaled(self):
        baseline = delta_fault_suite(include_episode=False)
        projected = hopper_fault_suite(HopperProjection(memory_rate_multiplier=2.0))
        assert projected.memory_chain.op.uncorrectable_count == pytest.approx(
            baseline.memory_chain.op.uncorrectable_count * 2.0
        )

    def test_nvlink_scaled_and_retry_updated(self):
        projected = hopper_fault_suite(
            HopperProjection(nvlink_rate_multiplier=0.5, nvlink_retry_success=0.4)
        )
        baseline = delta_fault_suite(include_episode=False)
        assert projected.nvlink.op_count == pytest.approx(
            baseline.nvlink.op_count * 0.5
        )
        assert projected.nvlink.link_model.retry_success_probability == 0.4

    def test_unit_defect_episode_not_carried_over(self):
        assert hopper_fault_suite().defective_episode is None

    def test_identity_projection_preserves_rates(self):
        identity = HopperProjection(
            gsp_rate_multiplier=1.0,
            memory_rate_multiplier=1.0,
            nvlink_rate_multiplier=1.0,
        )
        baseline = delta_fault_suite(include_episode=False)
        projected = hopper_fault_suite(identity)
        for event_class in (EventClass.MMU_ERROR, EventClass.GSP_ERROR):
            assert projected.fault_for(event_class).op_count == pytest.approx(
                baseline.fault_for(event_class).op_count
            )


class TestStudyConfig:
    def test_hopper_shape(self):
        assert HOPPER_SHAPE.gpu_node_count == 114
        assert HOPPER_SHAPE.gpu_count == 456

    def test_study_config_wires_everything(self):
        config = hopper_study_config(seed=1, job_scale=0.01)
        assert config.cluster_shape is HOPPER_SHAPE
        assert config.workload.job_scale == 0.01
        gsp = config.fault_suite.fault_for(EventClass.GSP_ERROR)
        base = delta_fault_suite().fault_for(EventClass.GSP_ERROR)
        assert gsp.op_count < base.op_count  # default projection improves GSP

    def test_projection_run_reduces_gsp_errors(self):
        """An actual (tiny) run: projected GSP errors drop ~3x."""
        from dataclasses import replace

        from repro import DeltaStudy
        from repro.core.periods import StudyWindow

        window = StudyWindow.scaled(pre_days=5, op_days=15)
        base_config = replace(
            hopper_study_config(seed=3, job_scale=0.01,
                                projection=HopperProjection(
                                    gsp_rate_multiplier=1.0)),
            window=window,
            cluster_shape=HOPPER_SHAPE,
        )
        projected_config = replace(
            hopper_study_config(seed=3, job_scale=0.01),
            window=window,
        )
        base = DeltaStudy(base_config).run(None)
        projected = DeltaStudy(projected_config).run(None)

        def gsp_count(artifacts):
            return sum(
                1
                for e in artifacts.logical_events
                if e.event_class is EventClass.GSP_ERROR
            )

        assert gsp_count(projected) < 0.6 * gsp_count(base)


class TestFromSpec:
    """`--arch-sweep` spec parsing (HopperProjection.from_spec)."""

    def test_parses_key_value_pairs(self):
        proj = HopperProjection.from_spec("gsp=0.5,memory=2.0")
        assert proj.gsp_rate_multiplier == 0.5
        assert proj.memory_rate_multiplier == 2.0
        # Untouched keys keep the calibrated defaults.
        assert proj.mmu_rate_multiplier == HopperProjection().mmu_rate_multiplier

    def test_whitespace_and_empty_parts_tolerated(self):
        proj = HopperProjection.from_spec(" gsp = 0.5 , , nvlink=1.25 ")
        assert proj.gsp_rate_multiplier == 0.5
        assert proj.nvlink_rate_multiplier == 1.25

    def test_unknown_key_rejected_with_known_list(self):
        from repro.core.exceptions import CalibrationError

        with pytest.raises(CalibrationError, match=r"unknown --arch-sweep key 'bogus'"):
            HopperProjection.from_spec("bogus=1.0")
        with pytest.raises(CalibrationError, match=r"known: fob, gsp"):
            HopperProjection.from_spec("bogus=1.0")

    def test_malformed_pair_rejected(self):
        from repro.core.exceptions import CalibrationError

        with pytest.raises(CalibrationError, match="expected key=value"):
            HopperProjection.from_spec("gsp")

    def test_non_numeric_value_rejected(self):
        from repro.core.exceptions import CalibrationError

        with pytest.raises(CalibrationError, match="gsp"):
            HopperProjection.from_spec("gsp=fast")

    def test_out_of_range_value_rejected(self):
        from repro.core.exceptions import CalibrationError

        with pytest.raises(CalibrationError):
            HopperProjection.from_spec("nvlink_retry=1.5")
        with pytest.raises(CalibrationError):
            HopperProjection.from_spec("gsp=-1.0")
