"""Persistent scan-cache semantics: hits, invalidation, quarantine.

The cache (`repro.pipeline.scancache`) may only ever change wall-clock
time.  These tests pin the contract: warm hits replay byte-identical
results; any drift in the day file (size, mtime), the inventory, or
the entry format forces a plain rescan; corrupt entries are renamed to
``<name>.corrupt-<n>`` and rescanned, never raised; and entries are
interchangeable between serial and parallel runs (workers write their
own entries) and between cache-enabled and cache-free passes.
"""

import os
import shutil

import pytest

from repro import DeltaStudy, StudyConfig
from repro.cli import main
from repro.pipeline import SCAN_CACHE_DIRNAME, run_pipeline
from repro.pipeline.scancache import ScanCache, VERSION
from repro.syslog.chaos import ChaosConfig, corrupt_artifacts
from repro.syslog.reader import dedupe_day_files, list_day_files


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """A chaos-corrupted small corpus (worst case for round-tripping:
    quarantine events, repairs, and replacement characters all have to
    survive the cache)."""
    src = tmp_path_factory.mktemp("scan_cache") / "run"
    config = StudyConfig.small(
        seed=31, job_scale=0.003, op_days=12, include_episode=True
    )
    DeltaStudy(config).run(src)
    corrupt_artifacts(src, ChaosConfig.calibrated(seed=5).scaled(20.0))
    return src


@pytest.fixture()
def work(corpus, tmp_path):
    """A private mutable copy of the corpus for each test."""
    dst = tmp_path / "work"
    shutil.copytree(corpus, dst)
    return dst


def _day_files(artifact_dir):
    """Unique day files, as the pipeline sees them (chaos can leave
    duplicate plain/gz pairs for the same day; only one is scanned)."""
    unique, _ = dedupe_day_files(list_day_files(artifact_dir / "syslog"))
    return unique


def _cache_dir(artifact_dir):
    return artifact_dir / SCAN_CACHE_DIRNAME


def _assert_identical(a, b):
    # PipelineResult equality covers errors, downtime, jobs, stats,
    # raw_hits, health (samples included), and recovery; the scan
    # field is compare=False by design (cache state always differs).
    assert a == b


class TestWarmHits:
    def test_warm_run_identical_and_fully_cached(self, work):
        baseline = run_pipeline(work, workers=1)
        cold = run_pipeline(work, workers=1, scan_cache=True)
        warm = run_pipeline(work, workers=1, scan_cache=True)
        _assert_identical(cold, baseline)
        _assert_identical(warm, baseline)

        days = len(_day_files(work))
        assert cold.scan.cache_hits == 0
        assert cold.scan.cache_stores == days
        assert cold.scan.lines_scanned == baseline.health.lines_read
        assert warm.scan.cache_hits == days
        assert warm.scan.cache_misses == 0
        assert warm.scan.lines_from_cache == baseline.health.lines_read
        assert warm.scan.lines_scanned == 0
        # The scan phase itself must be cheaper warm than cold.
        assert (
            warm.scan.cache_load_wall_seconds
            < cold.scan.scan_wall_seconds
        )

    def test_library_default_leaves_no_cache(self, work):
        run_pipeline(work, workers=1)
        assert not _cache_dir(work).exists()

    def test_decode_ratio_reported_without_cache(self, work):
        result = run_pipeline(work, workers=1)
        assert result.scan.lines_scanned == result.health.lines_read
        assert 0.0 < result.scan.decode_ratio < 0.5


class TestInvalidation:
    def test_mtime_drift_rescans_only_that_day(self, work):
        run_pipeline(work, workers=1, scan_cache=True)
        target = _day_files(work)[0]
        st = target.stat()
        os.utime(target, ns=(st.st_atime_ns, st.st_mtime_ns + 1_000_000))
        warm = run_pipeline(work, workers=1, scan_cache=True)
        days = len(_day_files(work))
        assert warm.scan.cache_hits == days - 1
        assert warm.scan.cache_misses == 1
        assert warm.scan.cache_stores == 1

    def test_size_drift_rescans_and_sees_new_content(self, work):
        cold = run_pipeline(work, workers=1, scan_cache=True)
        target = _day_files(work)[-1]
        with open(target, "ab") as handle:
            handle.write(
                b"2025-03-09T23:59:59.000000 node-x kernel: NVRM: Xid "
                b"(PCI:0000:27:00): 79, appended after caching\n"
            )
        warm = run_pipeline(work, workers=1, scan_cache=True)
        fresh = run_pipeline(work, workers=1)
        _assert_identical(warm, fresh)
        assert warm.raw_hits == cold.raw_hits + 1
        assert warm.scan.cache_misses == 1

    def test_inventory_drift_invalidates_everything(self, work):
        run_pipeline(work, workers=1, scan_cache=True)
        inventory = work / "inventory.json"
        # Whitespace change: same semantics, different content hash.
        inventory.write_text(
            inventory.read_text("utf-8") + "\n", encoding="utf-8"
        )
        warm = run_pipeline(work, workers=1, scan_cache=True)
        days = len(_day_files(work))
        assert warm.scan.cache_hits == 0
        assert warm.scan.cache_misses == days

    def test_version_drift_is_stale_not_corrupt(self, work):
        # The version field sits outside the CRC, so an entry written
        # by a different format generation is recognizably *stale*
        # (silently rescanned and overwritten), never quarantined.
        run_pipeline(work, workers=1, scan_cache=True)
        entry = next(_cache_dir(work).glob("*.scan"))
        blob = bytearray(entry.read_bytes())
        blob[4:6] = (VERSION + 1).to_bytes(2, "big")
        entry.write_bytes(bytes(blob))
        warm = run_pipeline(work, workers=1, scan_cache=True)
        assert warm.scan.cache_corrupt == 0
        assert warm.scan.cache_misses == 1
        assert not list(_cache_dir(work).glob("*.corrupt-*"))

    def test_checkpoint_requires_fingerprinted_entries(self, work):
        # Entries stored by a non-checkpointing run carry no content
        # hash; a resume pass must rescan rather than trust them.
        run_pipeline(work, workers=1, scan_cache=True)
        days = len(_day_files(work))
        first = run_pipeline(
            work, workers=1, scan_cache=True, checkpoint=True
        )
        assert first.scan.cache_hits == 0
        assert first.scan.cache_misses == days
        # The checkpointing run re-stored fingerprinted entries, so a
        # second checkpointing pass hits (resume replays payloads
        # instead, which takes precedence over the scan cache).
        second = run_pipeline(
            work, workers=1, scan_cache=True, checkpoint=True
        )
        assert second.scan.cache_hits == days
        _assert_identical(first, second)


class TestCorruptionQuarantine:
    def _poison_and_rerun(self, work, mutate):
        baseline = run_pipeline(work, workers=1)
        run_pipeline(work, workers=1, scan_cache=True)
        entry = sorted(_cache_dir(work).glob("*.scan"))[0]
        mutate(entry)
        warm = run_pipeline(work, workers=1, scan_cache=True)
        _assert_identical(warm, baseline)
        days = len(_day_files(work))
        assert warm.scan.cache_corrupt == 1
        assert warm.scan.cache_misses == 1
        assert warm.scan.cache_hits == days - 1
        quarantined = list(_cache_dir(work).glob("*.corrupt-1"))
        assert len(quarantined) == 1
        # The rescan stored a fresh entry; the next pass is clean.
        again = run_pipeline(work, workers=1, scan_cache=True)
        _assert_identical(again, baseline)
        assert again.scan.cache_hits == days
        assert again.scan.cache_corrupt == 0

    def test_truncated_entry_quarantined_and_rescanned(self, work):
        def truncate(entry):
            blob = entry.read_bytes()
            entry.write_bytes(blob[: len(blob) // 2])

        self._poison_and_rerun(work, truncate)

    def test_bitflip_entry_quarantined_and_rescanned(self, work):
        def bitflip(entry):
            blob = bytearray(entry.read_bytes())
            blob[len(blob) // 2] ^= 0x40
            entry.write_bytes(bytes(blob))

        self._poison_and_rerun(work, bitflip)

    def test_garbage_entry_quarantined(self, work):
        def garbage(entry):
            entry.write_bytes(b"not a scan cache entry at all")

        self._poison_and_rerun(work, garbage)

    def test_second_corruption_gets_next_suffix(self, work):
        run_pipeline(work, workers=1, scan_cache=True)
        entry = sorted(_cache_dir(work).glob("*.scan"))[0]
        for expected in ("corrupt-1", "corrupt-2"):
            entry.write_bytes(b"garbage")
            run_pipeline(work, workers=1, scan_cache=True)
            assert (
                entry.with_name(f"{entry.name}.{expected}")
            ).exists(), expected


class TestSerialParallelInterchange:
    def test_parallel_writes_serial_reads(self, work):
        baseline = run_pipeline(work, workers=1)
        cold = run_pipeline(work, workers=4, scan_cache=True)
        _assert_identical(cold, baseline)
        warm = run_pipeline(work, workers=1, scan_cache=True)
        _assert_identical(warm, baseline)
        assert warm.scan.cache_hits == len(_day_files(work))

    def test_serial_writes_parallel_reads(self, work):
        baseline = run_pipeline(work, workers=1)
        run_pipeline(work, workers=1, scan_cache=True)
        warm = run_pipeline(work, workers=4, scan_cache=True)
        _assert_identical(warm, baseline)
        assert warm.scan.cache_hits == len(_day_files(work))


class TestRoundTrip:
    def test_entry_round_trips_dayscan_exactly(self, work):
        """Store → load must reproduce every DayScan field (wall
        excluded), including event tuples and float bit patterns."""
        import dataclasses

        from repro.cluster.inventory import Inventory
        from repro.pipeline.shard import DayScan, scan_day_file

        inventory = Inventory.load(work / "inventory.json")
        cache = ScanCache(_cache_dir(work), "test-key")
        for path in _day_files(work)[:3]:
            st = path.stat()
            scan = scan_day_file(path, inventory, want_fingerprint=True)
            assert cache.store(path, st, scan)
            loaded = cache.load(path, st, want_fingerprint=True)
            assert loaded is not None
            for f in dataclasses.fields(DayScan):
                if f.name == "scan_wall_seconds":
                    continue
                assert getattr(loaded, f.name) == getattr(scan, f.name), (
                    f"DayScan.{f.name} did not survive the cache round-trip"
                )
            # Event tuples must come back as tuples (the merge insorts
            # tuples among them; list/tuple comparisons would raise).
            assert all(isinstance(e, tuple) for e in loaded.events)


class TestCli:
    def test_cli_defaults_to_cache_and_flag_disables(self, work, capsys):
        assert main(["pipeline", str(work)]) == 0
        assert _cache_dir(work).exists()
        out = capsys.readouterr().out
        assert "scan cache:" in out
        shutil.rmtree(_cache_dir(work))
        assert main(["pipeline", str(work), "--no-scan-cache"]) == 0
        assert not _cache_dir(work).exists()
