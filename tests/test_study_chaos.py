"""Process-level worker chaos plans (repro.study.chaos)."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ConfigurationError
from repro.sim.engine import Engine
from repro.study.chaos import (
    ACTION_GARBAGE,
    ACTION_HANG,
    ACTION_KILL,
    ACTION_NONE,
    WorkerChaosConfig,
    WorkerChaosPlan,
)


class TestPlanDeterminism:
    def test_same_inputs_same_plan(self):
        config = WorkerChaosConfig.storm(seed=5, strikes=3)
        for attempt in (1, 2, 3):
            first = config.plan("small-seed00007", attempt)
            again = config.plan("small-seed00007", attempt)
            assert first == again

    def test_cells_draw_independently(self):
        config = WorkerChaosConfig.storm(seed=5, strikes=1)
        plans = {
            cell: config.plan(cell, 1)
            for cell in (f"cell-{i}" for i in range(40))
        }
        actions = {plan.action for plan in plans.values()}
        # A 40-cell storm should exercise more than one failure mode.
        assert len(actions) > 1

    def test_seed_changes_plans(self):
        a = WorkerChaosConfig(seed=1, kill_probability=0.5)
        b = WorkerChaosConfig(seed=2, kill_probability=0.5)
        plans_a = [a.plan(f"c{i}", 1) for i in range(30)]
        plans_b = [b.plan(f"c{i}", 1) for i in range(30)]
        assert plans_a != plans_b


class TestStrikesBudget:
    def test_attempts_beyond_strikes_are_noop(self):
        config = WorkerChaosConfig(
            seed=0, kill_probability=1.0, max_strikes_per_cell=2
        )
        assert config.plan("c", 1).action == ACTION_KILL
        assert config.plan("c", 2).action == ACTION_KILL
        assert config.plan("c", 3).is_noop
        assert config.plan("c", 99).is_noop

    def test_zero_strikes_never_sabotages(self):
        config = WorkerChaosConfig(
            seed=0, kill_probability=1.0, max_strikes_per_cell=0
        )
        assert config.plan("c", 1).is_noop


class TestActionBuckets:
    @pytest.mark.parametrize(
        "kwargs, action",
        [
            ({"kill_probability": 1.0}, ACTION_KILL),
            ({"hang_probability": 1.0}, ACTION_HANG),
            ({"garbage_exit_probability": 1.0}, ACTION_GARBAGE),
            ({}, ACTION_NONE),
        ],
    )
    def test_certain_probabilities(self, kwargs, action):
        config = WorkerChaosConfig(seed=3, **kwargs)
        for cell in ("a", "b", "c"):
            assert config.plan(cell, 1).action == action

    def test_trigger_fraction_in_window(self):
        config = WorkerChaosConfig(
            seed=3,
            kill_probability=1.0,
            min_fraction=0.4,
            max_fraction=0.6,
        )
        for i in range(25):
            plan = config.plan(f"c{i}", 1)
            assert 0.4 <= plan.at_fraction <= 0.6


class TestValidation:
    def test_probabilities_must_sum_to_unit_interval(self):
        with pytest.raises(ConfigurationError):
            WorkerChaosConfig(kill_probability=0.7, hang_probability=0.7)
        with pytest.raises(ConfigurationError):
            WorkerChaosConfig(kill_probability=-0.1)

    def test_fraction_window_validated(self):
        with pytest.raises(ConfigurationError):
            WorkerChaosConfig(min_fraction=0.8, max_fraction=0.2)

    def test_negative_strikes_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerChaosConfig(max_strikes_per_cell=-1)


class TestPlanSerialization:
    def test_json_roundtrip(self):
        plan = WorkerChaosPlan(action=ACTION_HANG, at_fraction=0.375)
        assert WorkerChaosPlan.from_json(plan.to_json()) == plan

    def test_none_payload(self):
        assert WorkerChaosPlan.from_json(None) is None


class TestArming:
    def test_noop_plan_schedules_nothing(self):
        engine = Engine(horizon=100.0)
        WorkerChaosPlan(action=ACTION_NONE, at_fraction=0.0).arm(engine)
        assert engine.pending_events == 0

    def test_armed_plan_is_digest_excluded(self):
        engine = Engine(horizon=100.0)
        clean = engine.state_digest(exclude_label_prefixes=("chaos:",))
        WorkerChaosPlan(action=ACTION_KILL, at_fraction=0.5).arm(engine)
        assert engine.pending_events == 1
        assert (
            engine.state_digest(exclude_label_prefixes=("chaos:",)) == clean
        )
        assert engine.state_digest() != clean
