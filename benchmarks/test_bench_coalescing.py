"""E9 + A1 — error coalescing and the 17-day episode case study.

E9 reproduces Section IV(vi)'s numbers: one faulty GPU generates over
a million raw log lines that coalesce to ~38,900 errors, dominating
the pre-operational period (92% of all errors), and the SRE outlier
rule isolates that unit.

A1 sweeps the coalescing window Δt to show how sensitive the error
counts — and therefore every MTBE in Table I — are to this Stage-II
design choice.

The benchmarked operation is coalescing the full run's raw hit stream.
"""

from repro.analysis import MtbeAnalysis
from repro.cluster.inventory import Inventory
from repro.core.periods import PeriodName
from repro.core.xid import EventClass
from repro.pipeline import WindowMode, XidExtractor, coalesce

from conftest import write_result


def _raw_hits(artifacts):
    extractor = XidExtractor(Inventory.load(artifacts.inventory_path))
    return list(extractor.extract_directory(artifacts.syslog_dir))


def test_bench_coalescing_episode(benchmark, delta_run, results_dir):
    artifacts, result = delta_run
    hits = _raw_hits(artifacts)

    errors = benchmark.pedantic(
        lambda: coalesce(hits, window_seconds=30.0), rounds=2, iterations=1
    )

    pre = artifacts.window.pre_operational
    episode_raw = sum(
        1
        for h in hits
        if h.event_class is EventClass.UNCONTAINED_MEMORY_ERROR
        and pre.contains(h.time)
    )
    episode_coalesced = [
        e
        for e in errors
        if e.event_class is EventClass.UNCONTAINED_MEMORY_ERROR
        and pre.contains(e.time)
    ]
    pre_total = sum(1 for e in errors if pre.contains(e.time))
    share = len(episode_coalesced) / pre_total

    analysis = MtbeAnalysis(errors, artifacts.window, artifacts.node_count)
    outliers = analysis.outliers

    text = "\n".join(
        [
            "E9 — the 17-day uncontained-memory episode (Section IV(vi))",
            f"raw XID-95 lines (pre-op): {episode_raw} (paper: >1,000,000)",
            f"coalesced errors: {len(episode_coalesced)} (paper: 38,900)",
            f"share of pre-op errors: {share * 100:.1f}% (paper: 92%)",
            f"outlier units flagged: "
            f"{[(o.node, o.gpu_key, o.count) for o in outliers[:3]]}",
        ]
    )
    write_result(results_dir, "episode.txt", text)
    print()
    print(text)

    assert episode_raw > 1_000_000
    assert 0.88 * 38_900 <= len(episode_coalesced) <= 1.12 * 38_900
    assert share > 0.85
    assert outliers and outliers[0].share > 0.9


def test_bench_coalescing_window_sweep_a1(benchmark, delta_run, results_dir):
    artifacts, _ = delta_run
    hits = _raw_hits(artifacts)

    def sweep():
        return {
            window: len(coalesce(hits, window_seconds=window))
            for window in (0.0, 10.0, 30.0, 120.0, 600.0)
        }

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)

    sliding = len(coalesce(hits, window_seconds=30.0, mode=WindowMode.SLIDING))
    lines = ["A1 — coalescing window sweep (errors recovered)"]
    lines += [f"  tumbling dt={w:>5.0f}s: {n}" for w, n in counts.items()]
    lines.append(f"  sliding  dt=   30s: {sliding}")
    text = "\n".join(lines)
    write_result(results_dir, "ablation_a1.txt", text)
    print()
    print(text)

    ordered = [counts[w] for w in (0.0, 10.0, 30.0, 120.0, 600.0)]
    assert ordered == sorted(ordered, reverse=True)
    # Without coalescing the study over-counts by several x.
    assert counts[0.0] > 3 * counts[30.0]
    # Sliding-window semantics would erase the episode entirely.
    assert sliding < 0.7 * counts[30.0]
