"""E13 — sharded parallel pipeline throughput vs the serial pass.

The sharded Stage-II pipeline promises two things: ``workers=N`` is
byte-identical to ``workers=1``, and on a multi-core host it is
substantially faster.  This benchmark prices both on the same mid-size
artifact set the E11 baseline used (small preset, seed 7, ~270k
lines), so ``BENCH_obs.json``'s ``pipeline_lines_per_second`` is a
directly comparable trajectory point for the serial pass.

Two bytes-first numbers ride along so the scan rewrite's win is
visible even on hosts where ``parallel_speedup`` is just pool tax:

* ``decode_ratio`` — the fraction of scanned lines the bytes-first
  scanner had to materialize as ``str`` (its fallback traffic);
* cold-vs-warm scan-cache walls — a second pass over the unchanged
  corpus replays persisted scans, and the scan *phase* must be at
  least 10x cheaper warm than cold (the acceptance bar; end-to-end
  wall improves less because merge/coalesce/jobs still run).

Speedup assertions are gated on the cores actually present: a
single-core host can only measure the process-pool tax, so it records
the numbers without judging them.  The serial pass itself must not
regress: when a prior ``BENCH_obs.json`` baseline exists, serial
throughput must stay within 5% of it (hot-path work should only ever
move this number up).
"""

import gc
import json
import time
from pathlib import Path

from repro import DeltaStudy, StudyConfig
from repro.pipeline import host_cores, run_pipeline

from conftest import write_result

#: Repo-root trajectory file (ROADMAP: BENCH_* series).
BENCH_PATH = Path(__file__).parent.parent / "BENCH_pipeline_parallel.json"

#: The serial baseline this benchmark must not regress.
OBS_BENCH_PATH = Path(__file__).parent.parent / "BENCH_obs.json"

#: Tolerated serial slowdown vs the recorded baseline.
MAX_SERIAL_REGRESSION = 0.05

_ROUNDS = 2


def _timed_best(fn, rounds=_ROUNDS):
    best = float("inf")
    result = None
    for _ in range(rounds):
        gc.collect()
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_bench_pipeline_parallel_speedup(tmp_path_factory, results_dir):
    out = tmp_path_factory.mktemp("pipeline_parallel_bench")
    config = StudyConfig.small(seed=7, job_scale=0.01, include_episode=True)
    DeltaStudy(config).run(out)

    cores = host_cores()
    workers = min(cores, 8)

    t_serial, serial = _timed_best(lambda: run_pipeline(out, workers=1))
    t_parallel, parallel = _timed_best(
        lambda: run_pipeline(out, workers=workers)
    )

    # Identity first — a fast wrong answer is worthless.
    assert parallel.errors == serial.errors
    assert parallel.downtime == serial.downtime
    assert parallel.raw_hits == serial.raw_hits
    assert parallel.extraction_stats == serial.extraction_stats
    assert parallel.health.quarantine_samples == (
        serial.health.quarantine_samples
    )

    # Bytes-first visibility: the serial pass scans everything fresh,
    # so its decode ratio is the scanner's true fallback traffic.
    decode_ratio = serial.scan.decode_ratio
    assert serial.scan.lines_scanned == serial.health.lines_read
    assert 0.0 < decode_ratio < 0.5

    # Cold/warm persistent scan cache on the same corpus.  The cold
    # pass scans and stores; the warm pass must replay every day and
    # stay byte-identical.  Walls are best-of-one for cold (a second
    # cold pass would be warm) and best-of-2 for warm.
    gc.collect()
    t0 = time.perf_counter()
    cold = run_pipeline(out, workers=1, scan_cache=True)
    t_cold = time.perf_counter() - t0
    t_warm, warm = _timed_best(
        lambda: run_pipeline(out, workers=1, scan_cache=True)
    )
    assert cold == serial
    assert warm == serial
    assert warm.scan.cache_hits == cold.scan.cache_stores > 0
    assert warm.scan.lines_from_cache == serial.health.lines_read
    scan_speedup = cold.scan.scan_wall_seconds / max(
        warm.scan.cache_load_wall_seconds, 1e-9
    )
    assert scan_speedup >= 10.0

    lines = serial.health.lines_read
    serial_lps = lines / t_serial
    parallel_lps = lines / t_parallel
    speedup = t_serial / t_parallel

    baseline_lps = None
    baseline_ratio = None
    if OBS_BENCH_PATH.exists():
        recorded = json.loads(OBS_BENCH_PATH.read_text("utf-8"))
        baseline_lps = recorded.get("pipeline_lines_per_second")
        if baseline_lps:
            baseline_ratio = serial_lps / baseline_lps

    text = "\n".join(
        [
            "E13 — sharded parallel pipeline vs serial",
            f"lines per pass: {lines}",
            f"serial (workers=1):       {t_serial:.3f} s "
            f"({serial_lps:,.0f} lines/s)",
            f"parallel (workers={workers}): {t_parallel:.3f} s "
            f"({parallel_lps:,.0f} lines/s)",
            f"speedup: {speedup:.2f}x on {cores} core(s)",
            f"decode ratio: {decode_ratio:.4f} "
            f"({serial.scan.lines_decoded:,} of "
            f"{serial.scan.lines_scanned:,} lines decoded)",
            f"scan cache: cold {t_cold:.3f} s -> warm {t_warm:.3f} s "
            f"(scan phase {cold.scan.scan_wall_seconds:.3f} s -> "
            f"{warm.scan.cache_load_wall_seconds:.3f} s, "
            f"{scan_speedup:.1f}x)",
            (
                f"serial vs BENCH_obs baseline: {baseline_ratio:.2f}x "
                f"({baseline_lps:,.0f} lines/s recorded)"
                if baseline_ratio is not None
                else "serial vs BENCH_obs baseline: no baseline recorded"
            ),
        ]
    )
    write_result(results_dir, "pipeline_parallel.txt", text)
    print()
    print(text)

    record = {
        "schema": "repro-bench-v1",
        "benchmark": "pipeline_parallel",
        "workload": {
            "preset": "small",
            "seed": 7,
            "job_scale": 0.01,
            "pipeline_lines": int(lines),
        },
        "host_cores": cores,
        "workers": workers,
        "serial_lines_per_second": round(serial_lps, 1),
        "parallel_lines_per_second": round(parallel_lps, 1),
        "parallel_speedup": round(speedup, 2),
        "decode_ratio": round(decode_ratio, 4),
        "cold_cache_wall_seconds": round(t_cold, 3),
        "warm_cache_wall_seconds": round(t_warm, 3),
        "warm_pipeline_speedup": round(t_cold / t_warm, 2),
        "warm_scan_phase_speedup": round(scan_speedup, 1),
        "serial_baseline_lines_per_second": baseline_lps,
        "serial_vs_baseline_ratio": (
            round(baseline_ratio, 3) if baseline_ratio is not None else None
        ),
    }
    if cores < 2:
        record["parallel_note"] = (
            "single-core host: speedup measures only the process-pool "
            f"tax (host_cores={cores})"
        )
    BENCH_PATH.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    # Serial must not regress against the recorded trajectory.
    if baseline_ratio is not None:
        assert baseline_ratio >= 1.0 - MAX_SERIAL_REGRESSION
    # Parallelism must pay where the cores exist to pay it.
    if cores >= 4:
        assert speedup > 1.8
    elif cores >= 2:
        assert speedup > 1.2
