"""R1/R2 — pipeline robustness under log corruption (chaos layer).

The paper's pipeline digested three years of *production* syslog —
including the §IV(vi) episode that dumped >1M duplicate lines — so the
reproduction's Stage II must survive realistically dirty input.  These
benchmarks corrupt a full-scale artifact set with the calibrated chaos
mix and assert three things:

* the pipeline completes and the health report accounts for every
  injected corruption type (R1);
* Table I headline statistics stay within ±5% of the clean run (R1);
* an interrupted checkpointed run resumes from its manifest to results
  identical to an uninterrupted pass (R2).
"""

import shutil

import pytest

from repro.analysis import MtbeAnalysis
from repro.core.exceptions import PipelineInterrupted
from repro.core.periods import PeriodName
from repro.core.xid import EventClass
from repro.pipeline import run_pipeline
from repro.syslog.chaos import ChaosConfig, corrupt_artifacts
from repro.syslog.quarantine import (
    FILE_CORRUPT,
    FILE_DUPLICATE_DAY,
    FILE_TRUNCATED_GZIP,
    REASON_BAD_TIMESTAMP,
    REASON_CLOCK_STEP,
    REASON_ENCODING,
    REASON_MALFORMED,
    REASON_MISSING_HOST,
    REASON_TORN_WRITE,
)

from conftest import write_result

#: Tolerance on Table I counts under calibrated corruption.
TOLERANCE = 0.05


@pytest.fixture(scope="module")
def corrupted_delta(delta_run, tmp_path_factory):
    """A corrupted copy of the full Delta artifact set."""
    artifacts, clean_result = delta_run
    dirty = tmp_path_factory.mktemp("corrupted_delta") / "run"
    shutil.copytree(artifacts.output_dir, dirty)
    report = corrupt_artifacts(dirty, ChaosConfig.calibrated(seed=5))
    return artifacts, clean_result, dirty, report


def test_bench_robustness_table1_r1(benchmark, corrupted_delta, results_dir):
    artifacts, clean_result, dirty, report = corrupted_delta

    result = benchmark.pedantic(
        lambda: run_pipeline(dirty), rounds=1, iterations=1
    )
    health = result.health
    assert health is not None and not health.is_clean

    # Every injected corruption type leaves a typed signal in the
    # health report.
    prefix_rejects = (
        health.quarantined.get(REASON_MALFORMED, 0)
        + health.quarantined.get(REASON_BAD_TIMESTAMP, 0)
        + health.quarantined.get(REASON_MISSING_HOST, 0)
    )
    assert report.truncated_lines == 0 or prefix_rejects > 0
    assert report.torn_writes == 0 or (
        health.quarantined.get(REASON_TORN_WRITE, 0) > 0
    )
    assert report.garbage_lines == 0 or (
        health.repaired.get(REASON_ENCODING, 0) + prefix_rejects > 0
    )
    assert report.clock_stepped_lines == 0 or (
        health.repaired.get(REASON_CLOCK_STEP, 0) > 0
    )
    assert report.gzip_truncated_files <= (
        health.file_incidents.get(FILE_TRUNCATED_GZIP, 0)
        + health.file_incidents.get(FILE_CORRUPT, 0)
    )
    assert report.duplicated_day_files <= health.file_incidents.get(
        FILE_DUPLICATE_DAY, 0
    )
    assert health.days_missing >= report.dropped_day_files

    # Table I survives: per-class counts and the headline MTBEs stay
    # within tolerance of the clean pass.
    clean_mtbe = MtbeAnalysis(
        clean_result.errors, artifacts.window, artifacts.node_count
    )
    dirty_mtbe = MtbeAnalysis(
        result.errors, artifacts.window, artifacts.node_count
    )
    drifts = []
    for period in (PeriodName.PRE_OPERATIONAL, PeriodName.OPERATIONAL):
        for event_class in EventClass:
            clean_count = clean_mtbe.count(period, event_class)
            dirty_count = dirty_mtbe.count(period, event_class)
            drifts.append(
                (period.value, event_class.value, clean_count, dirty_count)
            )
            assert abs(dirty_count - clean_count) <= max(
                2, TOLERANCE * clean_count
            ), f"{period.value}/{event_class.value}: {clean_count} -> {dirty_count}"
    for period in (PeriodName.PRE_OPERATIONAL, PeriodName.OPERATIONAL):
        clean_overall = clean_mtbe.overall(period)
        dirty_overall = dirty_mtbe.overall(period)
        assert dirty_overall.per_node_mtbe_hours == pytest.approx(
            clean_overall.per_node_mtbe_hours, rel=TOLERANCE
        )

    lines = [
        "R1 — Stage-II robustness under calibrated corruption",
        report.summary(),
        "",
        health.render(),
        "",
        f"clean errors: {len(clean_result.errors)}  "
        f"dirty errors: {len(result.errors)}",
        "per-class count drift (period, class, clean, dirty):",
    ]
    lines += [
        f"  {p:<16} {c:<26} {a:>6} {b:>6}" for p, c, a, b in drifts if a or b
    ]
    text = "\n".join(lines)
    write_result(results_dir, "robustness_r1.txt", text)
    print()
    print(text)


def test_bench_robustness_resume_r2(benchmark, corrupted_delta, results_dir):
    artifacts, _clean, dirty, _report = corrupted_delta

    baseline = run_pipeline(dirty)
    total_files = baseline.health.days_present
    halfway = max(1, total_files // 2)

    def interrupted_then_resumed():
        shutil.rmtree(dirty / ".pipeline_checkpoint", ignore_errors=True)
        try:
            run_pipeline(dirty, checkpoint=True, interrupt_after_files=halfway)
        except PipelineInterrupted:
            pass
        return run_pipeline(dirty, resume=True)

    resumed = benchmark.pedantic(
        interrupted_then_resumed, rounds=1, iterations=1
    )

    assert resumed.health.resumed_files == halfway
    assert resumed.errors == baseline.errors
    assert resumed.downtime == baseline.downtime
    assert resumed.raw_hits == baseline.raw_hits
    assert resumed.extraction_stats == baseline.extraction_stats
    assert resumed.health.quarantined == baseline.health.quarantined
    assert resumed.health.repaired == baseline.health.repaired
    assert resumed.health.lines_read == baseline.health.lines_read

    text = "\n".join(
        [
            "R2 — kill-and-resume reproduces the uninterrupted run",
            f"day files: {total_files} (interrupted after {halfway})",
            f"resumed day files replayed from manifest: "
            f"{resumed.health.resumed_files}",
            f"errors identical: {resumed.errors == baseline.errors} "
            f"({len(resumed.errors)} errors)",
            f"downtime identical: {resumed.downtime == baseline.downtime}",
            f"stats identical: "
            f"{resumed.extraction_stats == baseline.extraction_stats}",
        ]
    )
    write_result(results_dir, "robustness_r2.txt", text)
    print()
    print(text)
