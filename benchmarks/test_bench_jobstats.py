"""E7 — Section V-A job statistics: volumes and success rates.

Regenerates the population headline: 1,445,119 GPU jobs at 74.68%
success, 1,686,696 CPU jobs at 74.90%, with 69.86% of GPU jobs on a
single GPU.  Counts are compared at full-scale-equivalent (the run is
thinned by ``job_scale``; proportions are scale-invariant).

The benchmarked operation is the population-statistics pass.
"""

from repro.analysis import JobStatistics
from repro.calibration import paper
from repro.reporting.compare import ComparisonReport

from conftest import write_result

#: job_scale of the workload-focused run.
SCALE = 0.05


def test_bench_jobstats(benchmark, workload_run, results_dir):
    artifacts = workload_run
    stats = JobStatistics(artifacts.job_records, artifacts.window)

    population = benchmark(stats.population)

    report = ComparisonReport("E7 — Section V-A job population")
    report.add(
        "GPU jobs (full-scale equivalent)",
        paper.JOB_POPULATION.gpu_jobs,
        population.gpu_jobs / SCALE,
        0.10,
    )
    report.add(
        "CPU jobs (full-scale equivalent)",
        paper.JOB_POPULATION.cpu_jobs,
        population.cpu_jobs / SCALE,
        0.10,
    )
    report.add(
        "GPU success rate",
        paper.JOB_POPULATION.gpu_success_rate,
        population.gpu_success_rate,
        0.05,
    )
    report.add(
        "CPU success rate",
        paper.JOB_POPULATION.cpu_success_rate,
        population.cpu_success_rate,
        0.05,
    )
    report.add(
        "single-GPU fraction",
        paper.JOB_POPULATION.single_gpu_fraction,
        population.single_gpu_fraction,
        0.05,
    )
    report.add(
        "2-4 GPU fraction",
        paper.JOB_POPULATION.two_to_four_gpu_fraction,
        population.two_to_four_fraction,
        0.10,
    )
    report.add(
        ">4 GPU fraction",
        paper.JOB_POPULATION.over_four_gpu_fraction,
        population.over_four_fraction,
        0.30,
    )
    write_result(results_dir, "jobstats.txt", report.render())
    print()
    print(report.render())
    assert report.all_ok, report.render()

    # GPU and CPU partitions succeed at nearly identical rates.
    assert abs(population.gpu_success_rate - population.cpu_success_rate) < 0.03
