"""E14 — streaming ingest throughput and append-to-visible latency.

The live fleet-health service must keep up with the corpus: sustained
streaming ingest (follow + incremental coalesce + estimators) has to
sit within an order of magnitude of the batch serial pass over the
same artifact set, or the "live" view would fall behind the logs it
is watching.  The second half measures freshness end to end: append a
batch of lines to the followed day file and time until the error is
visible in the published ``pipeline_raw_hits_total`` metric.

Records ``BENCH_stream.json`` at the repo root (lines/sec for batch
vs stream, p50/p95 append-to-metric-visible latency) and a rendered
summary under ``benchmarks/results/``.
"""

import gc
import json
import statistics
import time
from pathlib import Path

from repro import DeltaStudy, StudyConfig
from repro.cluster.inventory import Inventory
from repro.core.timebase import format_syslog_timestamp
from repro.pipeline import run_pipeline
from repro.stream import StreamIngest, StreamService

from conftest import write_result

#: Repo-root trajectory file (ROADMAP: BENCH_* series).
BENCH_PATH = Path(__file__).parent.parent / "BENCH_stream.json"

#: The stream must stay within this factor of batch serial throughput.
MAX_SLOWDOWN = 10.0

#: Freshness bound on p95 append-to-metric-visible latency (seconds of
#: wall time; the service polls every 50 ms here).
MAX_P95_LATENCY = 2.0

_ROUNDS = 2
_LATENCY_SAMPLES = 20


def _timed_best(fn, rounds=_ROUNDS):
    best = float("inf")
    result = None
    for _ in range(rounds):
        gc.collect()
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _stream_drain(artifact_dir):
    inventory = Inventory.load(artifact_dir / "inventory.json")
    ingest = StreamIngest(artifact_dir / "syslog", inventory=inventory)
    ingest.drain()
    return ingest


def _measure_latency(artifact_dir):
    """Append error lines to the live day file; time metric visibility."""
    syslog_dir = artifact_dir / "syslog"
    days = sorted(p for p in syslog_dir.glob("syslog-*.log"))
    day = days[-1]
    service = StreamService(artifact_dir, port=None, poll_interval=0.05)
    service.poll_once()
    hits_family = service.metrics.counter("pipeline_raw_hits_total")

    import threading

    runner = threading.Thread(
        target=service.run, kwargs={"install_signals": False}, daemon=True
    )
    runner.start()
    latencies = []
    try:
        base_time = service.ingest.watermark + 1.0
        with open(day, "a", encoding="utf-8") as fh:
            for i in range(_LATENCY_SAMPLES):
                before = hits_family.labels().value
                stamp = format_syslog_timestamp(base_time + i * 2.0)
                for j in range(30):
                    fh.write(
                        f"{stamp} gpua001 kernel: benchmark filler "
                        f"line {i}-{j}\n"
                    )
                fh.write(
                    f"{stamp} gpua001 kernel: NVRM: Xid "
                    f"(PCI:0000:07:00): 31, pid=1, Ch 00000008\n"
                )
                fh.flush()
                t0 = time.perf_counter()
                while hits_family.labels().value <= before:
                    time.sleep(0.005)
                    if time.perf_counter() - t0 > 30.0:
                        raise AssertionError(
                            "appended error never became visible"
                        )
                latencies.append(time.perf_counter() - t0)
    finally:
        service.stop()
        runner.join(timeout=10)
    return latencies


def test_bench_stream_ingest(tmp_path_factory, results_dir):
    out = tmp_path_factory.mktemp("stream_bench")
    config = StudyConfig.small(seed=7, job_scale=0.01, include_episode=True)
    DeltaStudy(config).run(out)

    t_batch, batch = _timed_best(lambda: run_pipeline(out, workers=1))
    t_stream, ingest = _timed_best(lambda: _stream_drain(out))

    # Identity first — a fast wrong answer is worthless.
    stream_result = ingest.result()
    assert stream_result.errors == batch.errors
    assert stream_result.raw_hits == batch.raw_hits

    lines = batch.health.lines_read
    batch_lps = lines / t_batch
    stream_lps = lines / t_stream

    latencies = sorted(_measure_latency(out))
    p50 = statistics.median(latencies)
    p95 = latencies[max(0, int(len(latencies) * 0.95) - 1)]

    text = "\n".join(
        [
            "E14 — streaming ingest vs batch serial",
            f"lines per pass: {lines}",
            f"batch serial:  {t_batch:.3f} s ({batch_lps:,.0f} lines/s)",
            f"stream drain:  {t_stream:.3f} s ({stream_lps:,.0f} lines/s)",
            f"stream/batch throughput ratio: {stream_lps / batch_lps:.2f}x",
            f"append-to-metric-visible latency "
            f"(n={len(latencies)}, poll=50ms): "
            f"p50={p50 * 1000:.0f} ms  p95={p95 * 1000:.0f} ms",
        ]
    )
    write_result(results_dir, "stream.txt", text)
    print()
    print(text)

    record = {
        "schema": "repro-bench-v1",
        "benchmark": "stream",
        "workload": {
            "preset": "small",
            "seed": 7,
            "job_scale": 0.01,
            "pipeline_lines": int(lines),
        },
        "batch_lines_per_second": round(batch_lps, 1),
        "stream_lines_per_second": round(stream_lps, 1),
        "stream_vs_batch_ratio": round(stream_lps / batch_lps, 3),
        "latency_poll_interval_seconds": 0.05,
        "latency_samples": len(latencies),
        "latency_p50_seconds": round(p50, 4),
        "latency_p95_seconds": round(p95, 4),
    }
    BENCH_PATH.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    # Sustained ingest must stay within an order of magnitude of the
    # batch serial pass, and appended errors must surface promptly.
    assert stream_lps * MAX_SLOWDOWN >= batch_lps
    assert p95 < MAX_P95_LATENCY
