"""E4 — Figure 2: unavailability time distribution.

Regenerates the paper's Figure 2 from the downtime episodes the
pipeline recovers out of the raw logs (drain / out-of-service /
returned-to-service lines): histogram, percentiles, and the 0.88-hour
mean repair time.

The benchmarked operation is the distribution computation.
"""

from repro.analysis import AvailabilityAnalysis
from repro.reporting import figure2_csv, render_figure2

from conftest import write_result


def test_bench_figure2(benchmark, delta_run, results_dir):
    artifacts, result = delta_run
    analysis = AvailabilityAnalysis(
        result.downtime, artifacts.window, artifacts.node_count
    )

    dist = benchmark(analysis.distribution)

    rendered = render_figure2(dist)
    write_result(
        results_dir, "figure2.txt", rendered + "\n\n" + figure2_csv(dist)
    )
    print()
    print(rendered)

    # Shape of Figure 2: most episodes are sub-hour reboot cycles with
    # a long replacement tail.
    assert dist.episodes > 500
    assert 0.6 <= dist.mean_hours <= 1.2  # paper: 0.88 h
    assert dist.p50_hours < dist.mean_hours  # right-skewed
    assert dist.p99_hours > 3 * dist.mean_hours
    # Majority of mass below 1.5 hours.
    fractions = dist.fractions()
    below_90m = sum(
        f
        for f, low in zip(fractions, dist.bin_edges_hours)
        if low < 1.5
    )
    assert below_90m > 0.75
