"""E6 — Section V-C: availability, MTTF, MTTR, lost node-hours.

Regenerates the availability analysis: MTTF from the operational
per-node MTBE (the paper's conservative all-errors-interrupt
assumption), MTTR from the measured unavailability episodes, and the
99.5% availability / ~7 minutes-per-day downtime headline.

The benchmarked operation is the availability report computation.
"""

from repro.analysis import AvailabilityAnalysis, MtbeAnalysis
from repro.core.periods import PeriodName
from repro.reporting import report_figure2

from conftest import write_result


def test_bench_availability(benchmark, delta_run, results_dir):
    artifacts, result = delta_run
    mtbe = MtbeAnalysis(result.errors, artifacts.window, artifacts.node_count)
    per_node = mtbe.overall(PeriodName.OPERATIONAL).per_node_mtbe_hours
    analysis = AvailabilityAnalysis(
        result.downtime, artifacts.window, artifacts.node_count
    )

    report = benchmark(lambda: analysis.report(per_node))

    comparison = report_figure2(
        result.downtime, artifacts.window, artifacts.node_count, per_node
    )
    lines = [
        f"MTTF (per-node MTBE, op): {report.mttf_hours:.1f} h (paper: 162)",
        f"MTTR: {report.mttr_hours:.2f} h (paper: 0.88)",
        f"availability (formula): {report.availability_formula:.4f} (paper: 0.995)",
        f"availability (direct): {report.availability_direct:.4f}",
        f"downtime minutes/day: {report.downtime_minutes_per_day:.1f} (paper: ~7)",
        f"lost node-hours: {report.downtime_node_hours:.0f} (paper: ~5700)",
        f"episodes: {report.episodes}, replacements: {report.replacements}",
        "",
        comparison.render(),
    ]
    text = "\n".join(lines)
    write_result(results_dir, "availability.txt", text)
    print()
    print(text)

    assert comparison.all_ok, comparison.render()
    # The headline: ~99.5% availability, single-digit minutes per day.
    assert 0.99 <= report.availability_formula <= 0.998
    assert 3.0 <= report.downtime_minutes_per_day <= 15.0
    # Direct availability is higher: not every error drains a node.
    assert report.availability_direct >= report.availability_formula
