"""E8 + A3 — NVLink propagation and the CRC-retry ablation.

E8 regenerates Section IV(v): 42% of operational NVLink error
manifestations touch two or more GPUs, reconstructed purely from the
coalesced error stream (simultaneous XID 74 groups per node).

A3 re-runs a reduced study with CRC retransmission disabled and shows
the job-failure probability for NVLink-encountering jobs rising — the
mechanism the paper credits for the 46% of jobs that survive.
"""

from dataclasses import replace

from repro import DeltaStudy, StudyConfig
from repro.analysis import JobImpactAnalysis, nvlink_manifestations
from repro.calibration.delta import delta_fault_suite
from repro.core.xid import EventClass
from repro.pipeline import run_pipeline
from repro.reporting import report_nvlink

from conftest import write_result


def test_bench_nvlink_propagation(benchmark, delta_run, results_dir):
    artifacts, result = delta_run

    stats = benchmark(
        lambda: nvlink_manifestations(result.errors, artifacts.window)
    )

    report = report_nvlink(result.errors, artifacts.window)
    lines = [
        f"manifestations: {stats.manifestations}",
        f"multi-GPU: {stats.multi_gpu_manifestations} "
        f"({stats.multi_gpu_fraction * 100:.1f}%, paper: 42%)",
        f"size histogram: {dict(sorted(stats.size_histogram.items()))}",
        "",
        report.render(),
    ]
    text = "\n".join(lines)
    write_result(results_dir, "nvlink.txt", text)
    print()
    print(text)
    assert report.all_ok, report.render()
    # Manifestation sizes are dominated by 1 and 2 GPUs.
    small = stats.size_histogram.get(1, 0) + stats.size_histogram.get(2, 0)
    assert small / stats.manifestations > 0.85


def _nvlink_failure_probability(tmp_path, crc_enabled, seed=13):
    suite = delta_fault_suite(include_episode=False)
    nvlink = replace(
        suite.nvlink,
        link_model=replace(suite.nvlink.link_model, crc_retry_enabled=crc_enabled),
    )
    config = replace(
        StudyConfig.small(seed=seed, job_scale=0.05),
        fault_suite=replace(suite, nvlink=nvlink),
    )
    out = tmp_path / f"crc_{crc_enabled}"
    artifacts = DeltaStudy(config).run(out)
    result = run_pipeline(out)
    impact = JobImpactAnalysis(result.errors, result.jobs, artifacts.window).run()
    row = impact.per_class.get(EventClass.NVLINK_ERROR)
    return row


def test_bench_crc_ablation_a3(benchmark, tmp_path, results_dir):
    with_crc = _nvlink_failure_probability(tmp_path, True)

    without_crc = benchmark.pedantic(
        lambda: _nvlink_failure_probability(tmp_path, False),
        rounds=1,
        iterations=1,
    )

    text = "\n".join(
        [
            "A3 — NVLink CRC retry ablation (small configuration)",
            f"CRC on : P(fail | NVLink encounter) = "
            f"{with_crc.failure_probability:.3f} "
            f"({with_crc.jobs_encountering} encounters)",
            f"CRC off: P(fail | NVLink encounter) = "
            f"{without_crc.failure_probability:.3f} "
            f"({without_crc.jobs_encountering} encounters)",
        ]
    )
    write_result(results_dir, "ablation_a3.txt", text)
    print()
    print(text)
    assert without_crc.failure_probability > with_crc.failure_probability
