"""Section IV(iv) — PMU ↔ MMU error correlation.

The paper reports that PMU SPI communication errors "exhibited high
correlations with MMU errors".  This benchmark measures the
directional follow statistics on the full run: the probability that a
PMU error is followed by an MMU error on the same GPU within 15
minutes, and its lift over independent-arrival expectations.

The benchmarked operation is the full class x class correlation matrix.
"""

from repro.analysis.correlation import (
    correlation_matrix,
    follow_probability,
    strongest_chains,
)
from repro.core.xid import EventClass

from conftest import write_result


def test_bench_correlation(benchmark, delta_run, results_dir):
    artifacts, result = delta_run

    matrix = benchmark(
        lambda: correlation_matrix(result.errors, artifacts.window)
    )

    pmu_mmu = follow_probability(
        result.errors,
        EventClass.PMU_SPI_ERROR,
        EventClass.MMU_ERROR,
        artifacts.window,
    )
    chains = strongest_chains(matrix)
    lines = [
        "Section IV(iv) — cross-class correlation",
        f"P(MMU within 15 min after PMU, same GPU) = "
        f"{pmu_mmu.probability:.3f} "
        f"({pmu_mmu.followed}/{pmu_mmu.source_events}; "
        f"expected {pmu_mmu.expected_probability:.4f}, "
        f"lift {pmu_mmu.lift:.0f}x)",
        "strongest chains:",
    ]
    lines += [
        f"  {stat.source.value} -> {stat.target.value}: "
        f"p={stat.probability:.3f}, lift={stat.lift:.0f}x "
        f"({stat.followed}/{stat.source_events})"
        for stat in chains[:5]
    ]
    text = "\n".join(lines)
    write_result(results_dir, "correlation.txt", text)
    print()
    print(text)

    # The paper's observed chain must be present and strong.
    assert pmu_mmu.lift is not None and pmu_mmu.lift > 5.0
    assert pmu_mmu.probability > 0.2
    assert any(
        stat.source is EventClass.PMU_SPI_ERROR
        and stat.target is EventClass.MMU_ERROR
        for stat in chains
    )
