"""E15 — gang-recovery engine overhead and the goodput frontier.

The recovery engine rides the simulator's existing event loop: gang
segments are ordinary scheduler jobs, every state transition is one
labelled engine event, and the scheduler's start/end listener lists
fire on every job start/end once a manager is armed. The promise is
that this fixed plumbing costs the simulator almost nothing: arming
recovery must not slow down the per-event machinery every non-gang
event goes through.

Two measurements, interleaved to share host drift:

* **armed-idle** — recovery armed, but the gangs submit past the
  horizon and the spare pool is empty, so the run executes the exact
  baseline event population through the listener-laden path.  The
  events/sec loss here is pure overhead and is bounded to <10%.
* **active** (informational) — the calibrated ``a100`` preset.  The
  small preset compresses paper-scale error counts into 80 days, so
  gangs fail every ~40 simulated minutes and recovery's own placement
  and checkpoint events become a material share of the event mix; the
  throughput delta here is added *work*, not overhead, and is recorded
  in ``BENCH_recovery.json`` without a bound.

The baseline file also records the analytic checkpoint sweep's optimal
interval (the ``repro recover-sweep`` acceptance numbers).
"""

import dataclasses
import gc
import json
from pathlib import Path

from repro import DeltaStudy, StudyConfig
from repro.analysis.checkpoint import calibrated_model, sweep
from repro.obs import Telemetry
from repro.recovery import RECOVERY_PRESETS

from conftest import write_result

#: Repo-root baseline file (ROADMAP: BENCH_* series).
BENCH_PATH = Path(__file__).parent.parent / "BENCH_recovery.json"

#: Acceptance bound on the armed-idle events/sec throughput loss.
MAX_OVERHEAD = 0.10

_ROUNDS = 2
_SEED = 7
_JOB_SCALE = 0.02

#: The a100 policy with its gangs parked past the horizon: the
#: listeners, injector gang checks, and manager structures are all
#: live, but the executed event population is exactly the baseline's.
_IDLE_POLICY = dataclasses.replace(
    RECOVERY_PRESETS["a100"],
    gang=dataclasses.replace(
        RECOVERY_PRESETS["a100"].gang, submit_day=10_000.0
    ),
    spare_nodes=0,
)


def _run_once(recovery):
    """One full study run; returns (events_per_second, events, artifacts)."""
    config = StudyConfig.small(seed=_SEED, job_scale=_JOB_SCALE)
    if recovery is not None:
        config = dataclasses.replace(config, recovery=recovery)
    telemetry = Telemetry.create(seed=_SEED)
    artifacts = DeltaStudy(config).run(None, telemetry=telemetry)
    wall = telemetry.tracer.wall_seconds_by_name()["engine-run"]
    events = sum(
        s.value
        for s in telemetry.metrics.samples()
        if s.name == "sim_events_executed_total"
    )
    return events / wall, int(events), artifacts


def test_bench_recovery_overhead(results_dir):
    modes = {
        "off": None,
        "armed-idle": _IDLE_POLICY,
        "active": RECOVERY_PRESETS["a100"],
    }
    best = {name: 0.0 for name in modes}
    events = {name: 0 for name in modes}
    artifacts_active = None
    for _ in range(_ROUNDS):
        for name, recovery in modes.items():
            gc.collect()
            eps, n_events, artifacts = _run_once(recovery)
            best[name] = max(best[name], eps)
            events[name] = n_events
            if name == "active":
                artifacts_active = artifacts
    idle_overhead = 1.0 - best["armed-idle"] / best["off"]
    active_delta = 1.0 - best["active"] / best["off"]

    recovery = artifacts_active.recovery
    report = sweep(calibrated_model(gang_nodes=2))

    text = "\n".join(
        [
            "E15 — gang-recovery engine overhead (simulator throughput)",
            f"events (off/idle/active): {events['off']:,} / "
            f"{events['armed-idle']:,} / {events['active']:,}",
            f"events/sec off:        {best['off']:,.0f}",
            f"events/sec armed-idle: {best['armed-idle']:,.0f}  "
            f"(overhead {idle_overhead:+.1%}, bound {MAX_OVERHEAD:.0%})",
            f"events/sec active:     {best['active']:,.0f}  "
            f"(delta {active_delta:+.1%}, added work — informational)",
            f"recovery: {recovery.gangs} gangs, "
            f"{recovery.incidents} incidents, "
            f"goodput {recovery.goodput:.3f}, "
            f"mean ETTR {recovery.mean_ettr_minutes:.1f} min",
            f"analytic sweep: optimal {report.optimal_interval_hours:.2f} h "
            f"vs Young {report.young_interval_hours:.2f} h "
            f"(within one step: "
            f"{report.optimal_within_one_step_of_young()})",
        ]
    )
    write_result(results_dir, "recovery_overhead.txt", text)
    print()
    print(text)

    baseline = {
        "schema": "repro-bench-v1",
        "benchmark": "recovery",
        "workload": {
            "preset": "small",
            "seed": _SEED,
            "job_scale": _JOB_SCALE,
            "recovery_preset": "a100",
            "sim_events_off": events["off"],
            "sim_events_active": events["active"],
        },
        "events_per_second_off": round(best["off"], 1),
        "events_per_second_armed_idle": round(best["armed-idle"], 1),
        "events_per_second_active": round(best["active"], 1),
        "overhead_fraction_armed_idle": round(idle_overhead, 4),
        "active_delta_fraction": round(active_delta, 4),
        "recovery": {
            "gangs": recovery.gangs,
            "incidents": recovery.incidents,
            "goodput": round(recovery.goodput, 6),
            "mean_ettr_minutes": round(recovery.mean_ettr_minutes, 3),
        },
        "checkpoint_sweep": {
            "optimal_interval_hours": round(
                report.optimal_interval_hours, 4
            ),
            "young_interval_hours": round(report.young_interval_hours, 4),
            "daly_interval_hours": round(report.daly_interval_hours, 4),
            "optimal_matches_young": report.optimal_within_one_step_of_young(),
        },
    }
    BENCH_PATH.write_text(
        json.dumps(baseline, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {BENCH_PATH.name}")

    # Armed-idle executes the identical event population (the parked
    # gang submits sit beyond the horizon), so any events/sec loss is
    # the listener/plumbing tax.
    assert events["armed-idle"] == events["off"]
    assert recovery.incidents > 0  # the preset actually exercised paths
    assert report.optimal_within_one_step_of_young()
    assert idle_overhead < MAX_OVERHEAD
