"""E2 — Table II: job-failure probability given each GPU error class.

Regenerates Table II by correlating the coalesced error stream with the
Slurm accounting records using the paper's 20-second attribution
window, and checks the per-class propagation probabilities (MMU ~90%,
PMU ~98%, GSP 100%, NVLink ~54%, contained ECC 100%).

The benchmarked operation is the full job-impact attribution pass.
"""

from repro.analysis import JobImpactAnalysis
from repro.core.xid import EventClass
from repro.reporting import render_table2, report_table2

from conftest import write_result


def test_bench_table2(benchmark, delta_run, results_dir):
    artifacts, result = delta_run

    impact = benchmark(
        lambda: JobImpactAnalysis(
            result.errors, result.jobs, artifacts.window
        ).run()
    )

    table = render_table2(impact)
    report = report_table2(impact)
    write_result(results_dir, "table2.txt", table + "\n\n" + report.render())
    print()
    print(table)
    print(report.render())

    assert report.all_ok, report.render()

    # Qualitative shape: the error classes the paper ranks as
    # unsurvivable really are deadlier than NVLink errors.
    nvlink = impact.per_class[EventClass.NVLINK_ERROR].failure_probability
    for deadly in (EventClass.GSP_ERROR, EventClass.MMU_ERROR):
        assert impact.per_class[deadly].failure_probability > nvlink
    # Roughly half of NVLink-encountering jobs survive (Section IV(v)).
    assert 0.30 <= nvlink <= 0.80
