"""A4 — row remapping / error containment ablation.

Re-runs a reduced study with the Ampere memory-recovery mechanisms
disabled (what a Kepler-era GPU without row remapping would look like)
and shows the consequences the paper credits those mechanisms with
preventing: every uncorrectable error forces a GPU reset and the
memory-caused node downtime multiplies.
"""

from dataclasses import replace

from repro import DeltaStudy, StudyConfig
from repro.calibration.delta import delta_fault_suite
from repro.core.xid import EventClass
from repro.gpu.memory import MemoryRecoveryConfig

from conftest import write_result

MEMORY_CAUSES = (
    EventClass.UNCORRECTABLE_ECC,
    EventClass.ROW_REMAP_FAILURE,
    EventClass.UNCONTAINED_MEMORY_ERROR,
)


def _run(tmp_label, enabled: bool, seed=31):
    suite = delta_fault_suite(include_episode=False)

    def patch(params):
        recovery = MemoryRecoveryConfig(
            remapping_enabled=enabled,
            containment_enabled=enabled,
            page_offlining_enabled=enabled,
            dbe_xid_probability=params.recovery.dbe_xid_probability,
            containment_success_probability=(
                params.recovery.containment_success_probability
            ),
            active_touch_probability=params.recovery.active_touch_probability,
        )
        return replace(params, recovery=recovery)

    chain = replace(
        suite.memory_chain,
        pre_op=patch(suite.memory_chain.pre_op),
        op=patch(suite.memory_chain.op),
    )
    config = replace(
        StudyConfig.small(seed=seed, job_scale=0.01),
        fault_suite=replace(suite, memory_chain=chain),
    )
    artifacts = DeltaStudy(config).run(None)
    counts = {}
    for event in artifacts.logical_events:
        counts[event.event_class] = counts.get(event.event_class, 0) + 1
    memory_downtime = [
        r for r in artifacts.downtime_records if r.cause in MEMORY_CAUSES
    ]
    return counts, memory_downtime


def test_bench_recovery_ablation_a4(benchmark, results_dir):
    baseline_counts, baseline_downtime = _run("on", True)

    ablated = benchmark.pedantic(
        lambda: _run("off", False), rounds=1, iterations=1
    )
    ablated_counts, ablated_downtime = ablated

    text = "\n".join(
        [
            "A4 — memory-recovery mechanism ablation (small configuration)",
            f"with mechanisms   : RRE={baseline_counts.get(EventClass.ROW_REMAP_EVENT, 0)}, "
            f"memory-caused downtime episodes={len(baseline_downtime)}",
            f"without mechanisms: RRE={ablated_counts.get(EventClass.ROW_REMAP_EVENT, 0)}, "
            f"memory-caused downtime episodes={len(ablated_downtime)}",
        ]
    )
    write_result(results_dir, "ablation_a4.txt", text)
    print()
    print(text)

    assert baseline_counts.get(EventClass.ROW_REMAP_EVENT, 0) > 0
    assert ablated_counts.get(EventClass.ROW_REMAP_EVENT, 0) == 0
    assert len(ablated_downtime) > 2 * max(len(baseline_downtime), 1)
