"""E12 — campaign supervisor overhead and parallel speedup.

The supervisor buys crash isolation, timeouts, retries, and resumable
manifests; this benchmark prices that machinery.  On an 8-replicate
campaign the serialized (``max_workers=1``) supervisor must stay
within 10% of a plain in-process loop over the same cells — the fork,
manifest, and polling overhead has to be a rounding error next to the
simulation work it protects.

Methodology: the measurement runs in a **fresh interpreter** (like the
deployed ``repro study`` CLI — a forked worker's copy-on-write tax
scales with the parent's heap, and pytest's heap is nothing like
production's), and modes are interleaved over rounds and compared
through **per-cell minima** — each cell's best in-process time against
the same cell's best supervised worker wall (from the campaign
manifest), plus the supervisor's own loop time (campaign wall minus
worker walls).  Pairing per cell cancels the host noise that dominates
end-to-end sums on a busy shared box.  The parallel pass records the
speedup a multi-core host gets for free; the assertion is gated on
actually having cores, and everything lands in
``BENCH_supervisor.json`` so later PRs have a trajectory to beat.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from conftest import write_result

#: Repo-root trajectory file (ROADMAP: BENCH_* series).
BENCH_PATH = Path(__file__).parent.parent / "BENCH_supervisor.json"

#: Acceptance bound: serialized supervisor vs. in-process loop.
MAX_SERIAL_OVERHEAD = 0.10

#: The measurement driver, run in a fresh interpreter (see module
#: docstring).  Prints one JSON document on stdout.
_DRIVER = r"""
import gc, json, sys, time
from pathlib import Path

from repro import DeltaStudy
from repro.study.supervise import (
    CampaignLimits, CampaignSpec, CampaignSupervisor,
)

root = Path(sys.argv[1])
rounds = int(sys.argv[2])
do_parallel = sys.argv[3] == "1"
SEEDS = tuple(range(101, 109))  # 8 replicates
# ~1 s of simulation per replicate, so the per-attempt fixed cost (one
# fork plus two manifest fsyncs) is priced against realistic work.
OVERRIDES = {"pre_days": 2.0, "op_days": 10.0, "job_scale": 0.01}


def spec(max_workers):
    return CampaignSpec.sweep(
        name=f"bench-w{max_workers}", preset="small", seeds=SEEDS,
        overrides=dict(OVERRIDES),
        limits=CampaignLimits(max_workers=max_workers, timeout_seconds=300.0),
    )


def inprocess_cells(out_root):
    times = {}
    for cell in spec(1).cells:
        out = out_root / cell.cell_id
        gc.collect()
        t0 = time.perf_counter()
        DeltaStudy(cell.build_config()).run(out).save_result(
            out / "result.json"
        )
        times[cell.cell_id] = time.perf_counter() - t0
    return times


def supervised(out_root, max_workers):
    gc.collect()
    t0 = time.perf_counter()
    result = CampaignSupervisor(spec(max_workers), out_root).run()
    total = time.perf_counter() - t0
    assert result.succeeded
    manifest = json.loads(result.manifest_path.read_text("utf-8"))
    walls = {
        cell_id: cell["history"][-1]["wall_seconds"]
        for cell_id, cell in manifest["cells"].items()
    }
    return walls, max(total - sum(walls.values()), 0.0), total


# Warm-up replicate: first-touch costs are charged to nobody.
DeltaStudy(spec(1).cells[0].build_config()).run(None)

ip_best, serial_best = {}, {}
machinery_best = serial_total_best = parallel_total_best = float("inf")
for r in range(rounds):
    for cell_id, s in inprocess_cells(root / f"ip-{r}").items():
        ip_best[cell_id] = min(ip_best.get(cell_id, s), s)
    walls, machinery, total = supervised(root / f"serial-{r}", 1)
    for cell_id, s in walls.items():
        serial_best[cell_id] = min(serial_best.get(cell_id, s), s)
    machinery_best = min(machinery_best, machinery)
    serial_total_best = min(serial_total_best, total)
    if do_parallel:
        _, _, parallel_total = supervised(root / f"parallel-{r}", 4)
        parallel_total_best = min(parallel_total_best, parallel_total)

print(json.dumps({
    "replicates": len(SEEDS),
    "overrides": OVERRIDES,
    "inprocess_seconds": sum(ip_best.values()),
    "serial_supervised_seconds": sum(serial_best.values()) + machinery_best,
    "supervisor_machinery_seconds": machinery_best,
    "serial_total_seconds": serial_total_best,
    "parallel_total_seconds": (
        parallel_total_best if do_parallel else None
    ),
}))
"""

_ROUNDS = 2


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def test_bench_supervisor_overhead_and_speedup(tmp_path, results_dir):
    # On a single-core host a 4-worker campaign can only lose to the
    # serialized one (fork overhead, no parallel cores), so recording
    # its "speedup" would poison the trajectory file with a number
    # that means "this box has one core", not "the supervisor got
    # slower".  Skip the parallel pass entirely and annotate the JSON.
    cores = _cores()
    measure_parallel = cores >= 2

    src = Path(__file__).parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            _DRIVER,
            str(tmp_path),
            str(_ROUNDS),
            "1" if measure_parallel else "0",
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=1200,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    measured = json.loads(proc.stdout.splitlines()[-1])

    t_inprocess = measured["inprocess_seconds"]
    t_serial = measured["serial_supervised_seconds"]
    machinery = measured["supervisor_machinery_seconds"]
    overhead = t_serial / t_inprocess - 1.0
    t_parallel = measured["parallel_total_seconds"]
    speedup = (
        measured["serial_total_seconds"] / t_parallel
        if t_parallel is not None
        else None
    )

    lines = [
        "E12 — supervisor overhead on an 8-replicate campaign",
        f"in-process loop (per-cell best): {t_inprocess:.2f} s",
        f"supervised, 1 worker:            {t_serial:.2f} s "
        f"({overhead:+.1%}; machinery {machinery:.3f} s)",
    ]
    if speedup is not None:
        lines.append(
            f"supervised, 4 workers:           {t_parallel:.2f} s "
            f"({speedup:.2f}x vs 1 worker on {cores} core(s))"
        )
    else:
        lines.append(
            f"supervised, 4 workers:           skipped "
            f"(single-core host; speedup would only measure fork tax)"
        )
    text = "\n".join(lines)
    write_result(results_dir, "supervisor_overhead.txt", text)
    print()
    print(text)

    baseline = {
        "schema": "repro-bench-v1",
        "benchmark": "supervisor",
        "workload": {
            "preset": "small",
            "replicates": measured["replicates"],
            **measured["overrides"],
        },
        "host_cores": cores,
        "inprocess_seconds": round(t_inprocess, 3),
        "serial_supervised_seconds": round(t_serial, 3),
        "supervisor_machinery_seconds": round(machinery, 3),
        "parallel_supervised_seconds": (
            round(t_parallel, 3) if t_parallel is not None else None
        ),
        "serial_overhead_fraction": round(overhead, 4),
        "parallel_speedup": (
            round(speedup, 2) if speedup is not None else None
        ),
    }
    if not measure_parallel:
        baseline["parallel_note"] = (
            "parallel pass skipped: single-core host "
            f"(host_cores={cores})"
        )
    BENCH_PATH.write_text(
        json.dumps(baseline, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    assert overhead < MAX_SERIAL_OVERHEAD
    # Parallelism only pays where there are cores to spend.
    if cores >= 4:
        assert speedup > 1.5
    elif cores >= 2:
        assert speedup > 1.1
