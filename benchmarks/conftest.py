"""Shared fixtures for the benchmark harness.

Two expensive session-scoped runs feed every benchmark:

* ``delta_run`` — the full calibrated study (106 nodes, 1170 days,
  5% job scale): Table I counts, MTBEs, job impact, downtime.
* ``workload_run`` — the fault-thinned variant used for the job
  population statistics (Table III / Section V-A), where the paper's
  workload is essentially unperturbed by GPU errors.

Each benchmark renders its table/figure and writes it (plus the
paper-vs-measured comparison) under ``benchmarks/results/`` so a run
leaves an inspectable record.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import DeltaStudy, StudyConfig
from repro.pipeline import run_pipeline

#: Where rendered tables/figures and comparisons are written.
RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Output directory for rendered benchmark artifacts."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def delta_run(tmp_path_factory: pytest.TempPathFactory):
    """The full calibrated Delta study + its pipeline result."""
    out = tmp_path_factory.mktemp("delta_run")
    artifacts = DeltaStudy(StudyConfig.delta(seed=2022)).run(out)
    result = run_pipeline(out)
    return artifacts, result


@pytest.fixture(scope="session")
def workload_run():
    """The fault-thinned Delta run for job-population statistics."""
    config = StudyConfig.delta_workload_focused(seed=2023)
    artifacts = DeltaStudy(config).run(None)
    return artifacts


def write_result(results_dir: Path, name: str, text: str) -> None:
    """Persist one benchmark's rendered output."""
    (results_dir / name).write_text(text + "\n", encoding="utf-8")
