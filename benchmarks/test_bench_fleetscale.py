"""E18 — fleet-scale campaign throughput and bounded-memory scaling.

The thinned sampler + slice batcher promise two things the DES path
cannot give: event throughput that stays in the hundreds of thousands
per second at any fleet size, and a peak working set that is flat in
the *event* count (it scales only with the node count of a slice).
This benchmark runs one-year campaigns at three fleet sizes (Delta's
106 GPU nodes, ~1k nodes, ~10k nodes), reads the host-side cost back
through the ``domain="host"`` metrics the campaign publishes, and
writes the trajectory to ``BENCH_fleetscale.json``.

A second test is the R1-style accuracy gate from the issue: the
106-node A100 campaign over the full 1170-day window must reproduce
the calibrated Table I targets — aggregate volume within the repo's
±5% convention, per-class means within a CLT bound that accounts for
compound-Poisson episode clustering.
"""

import json
from pathlib import Path

from repro.cluster.topology import DELTA_A100_GPUS
from repro.core.periods import PeriodName, StudyWindow
from repro.core.xid import table1_order
from repro.fleetscale import FleetCampaign, FleetCampaignConfig
from repro.obs.metrics import MetricsRegistry

from conftest import write_result

#: Repo-root throughput trajectory file (ROADMAP: BENCH_* series).
BENCH_PATH = Path(__file__).parent.parent / "BENCH_fleetscale.json"

#: One-year campaign window, split pre-op/op at Delta's 273:896 ratio.
YEAR_WINDOW = StudyWindow.scaled(
    pre_days=365.0 * 273.0 / 1169.0, op_days=365.0 * 896.0 / 1169.0
)

#: (label, arch preset, target GPU count) — ~106 / ~1k / ~10k nodes.
SCALES = (
    ("delta", "a100", DELTA_A100_GPUS),
    ("1k-node", "mixed", 4_000),
    ("10k-node", "mixed", 40_000),
)

#: Floor on sustained event throughput at every scale.
MIN_EVENTS_PER_SECOND = 20_000

#: Ceiling on process peak RSS after the largest campaign (MiB).  The
#: bounded-memory claim: 100x the fleet must not mean 100x the memory.
MAX_PEAK_RSS_MIB = 2_048


def test_bench_fleetscale_scaling(results_dir):
    rows = []
    points = []
    for label, arch, scale in SCALES:
        metrics = MetricsRegistry()
        campaign = FleetCampaign(
            FleetCampaignConfig(
                arch=arch, scale=scale, window=YEAR_WINDOW, seed=2022
            ),
            metrics=metrics,
        )
        result = campaign.run()
        host = result.host
        # The campaign publishes its host cost as domain="host" gauges;
        # read the numbers back through the registry to keep that path
        # honest.
        eps = metrics.value("fleetscale_events_per_second")
        rss = metrics.value("fleetscale_peak_rss_mib")
        nodes = campaign.spec.node_count
        rows.append(
            f"{label:>8}: {nodes:>6} nodes / {campaign.spec.gpu_count:>6} "
            f"GPUs — {result.total_events:>9,} events in "
            f"{host['wall_seconds']:.2f} s ({eps:,.0f} ev/s), "
            f"peak RSS {rss:.0f} MiB, heap high-water "
            f"{host['heap_high_water']}"
        )
        points.append(
            {
                "label": label,
                "arch": arch,
                "gpus": campaign.spec.gpu_count,
                "nodes": nodes,
                "days": round(YEAR_WINDOW.total_days, 1),
                "events": result.total_events,
                "wall_seconds": round(host["wall_seconds"], 3),
                "events_per_second": round(eps, 1),
                "peak_rss_mib": round(rss, 1),
                "heap_high_water": host["heap_high_water"],
            }
        )
        # Batching invariant: one driver entry plus at most one batch
        # entry per node ever sits in the heap.
        assert host["heap_high_water"] <= nodes + 2
        assert eps > MIN_EVENTS_PER_SECOND

    # Peak RSS is process-wide and monotone, so the final reading
    # bounds every scale: flat-memory means even the 10k-node year
    # stays far from the DES path's event-proportional footprint.
    assert points[-1]["peak_rss_mib"] < MAX_PEAK_RSS_MIB

    text = "\n".join(
        ["E18 — fleet-scale campaign scaling (one-year windows)", *rows]
    )
    write_result(results_dir, "fleetscale.txt", text)
    print()
    print(text)

    BENCH_PATH.write_text(
        json.dumps(
            {
                "schema": "repro-bench-v1",
                "benchmark": "fleetscale",
                "workload": {"window_days": round(YEAR_WINDOW.total_days, 1),
                             "seed": 2022},
                "scales": points,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    print(f"wrote {BENCH_PATH.name}")


def test_bench_fleetscale_r1_accuracy(results_dir):
    """Delta-shape full-window campaign vs the calibrated targets."""
    seeds = (2022, 2023, 2024)
    sums = {}
    expected = None
    suite = None
    for seed in seeds:
        campaign = FleetCampaign(
            FleetCampaignConfig(arch="a100", scale=DELTA_A100_GPUS, seed=seed)
        )
        campaign.run()
        from repro.core.arch import Architecture

        stats = campaign.accumulator.stats()[Architecture.A100]
        if expected is None:
            expected = campaign._samplers[Architecture.A100].expected_counts()
            suite = campaign.suites[Architecture.A100]
        for period in PeriodName:
            counts = stats.class_counts(period)
            for event_class in table1_order():
                key = (period, event_class)
                sums[key] = sums.get(key, 0) + counts[event_class]

    simple = {c.event_class: c for c in suite.simple_faults}
    n = len(seeds)
    lines = ["E18 — fleet campaign vs calibrated Table I targets "
             f"(mean of {n} seeds, 106-node A100, full window)"]
    for period in PeriodName:
        got_total = 0.0
        want_total = 0.0
        for event_class in table1_order():
            mean = sums[(period, event_class)] / n
            want = expected[period][event_class]
            got_total += mean
            want_total += want
            if want < 5:
                continue
            # Compound-Poisson clustering inflates the per-seed sigma
            # by sqrt(E[errors/onset] + 1); bound the mean by 4 sigma
            # of the n-seed average plus the repo's 5% convention.
            if event_class in simple:
                weight = simple[event_class].episode.mean_errors + 1.0
            else:
                weight = 4.0 if event_class.value == "nvlink_error" else 2.0
            sigma = (want * weight / n) ** 0.5
            tolerance = max(3.0, 0.05 * want + 4.0 * sigma)
            deviation = mean - want
            lines.append(
                f"  {period.value:>16} {event_class.value:>26}: "
                f"{mean:8.1f} vs {want:8.1f} ({deviation:+7.1f}, "
                f"tol {tolerance:.1f})"
            )
            assert abs(deviation) <= tolerance, lines[-1]
        rel = got_total / want_total - 1.0
        lines.append(
            f"  {period.value:>16} {'TOTAL':>26}: "
            f"{got_total:8.1f} vs {want_total:8.1f} ({rel:+.1%})"
        )
        # Aggregate volume meets the headline R1 bound outright.
        assert abs(rel) <= 0.05

    text = "\n".join(lines)
    write_result(results_dir, "fleetscale_r1.txt", text)
    print()
    print(text)
