"""E10 — the data-processing pipeline itself (Fig. 1).

The paper's reproducible contribution *is* the pipeline, so we
benchmark it end to end: raw day-partitioned syslog (plus Slurm
accounting) → extraction → coalescing → downtime recovery.  The run
reports line throughput over the ~1.7M-line artifact set.

A second benchmark measures attribution-window sensitivity (A2): the
20-second window is compared to tighter and looser choices.
"""

from repro.analysis import JobImpactAnalysis
from repro.pipeline import run_pipeline

from conftest import write_result


def test_bench_pipeline_end_to_end(benchmark, delta_run, results_dir):
    artifacts, reference = delta_run

    result = benchmark.pedantic(
        lambda: run_pipeline(artifacts.output_dir),
        rounds=1,
        iterations=1,
    )

    stats = result.extraction_stats
    text = "\n".join(
        [
            "E10 — Stage-II pipeline over the full artifact set",
            f"raw lines scanned: {stats.total_lines}",
            f"matched error lines: {stats.matched_lines}",
            f"excluded XID 13/43 lines: {stats.excluded_xid_lines}",
            f"coalesced errors: {len(result.errors)} "
            f"(reduction {result.coalescing_reduction:.1f}x)",
            f"downtime episodes recovered: {len(result.downtime)}",
            f"job records loaded: {len(result.jobs)}",
        ]
    )
    write_result(results_dir, "pipeline.txt", text)
    print()
    print(text)

    assert stats.total_lines > 1_500_000
    assert len(result.errors) == len(reference.errors)
    assert stats.excluded_xid_lines > 10_000
    assert result.coalescing_reduction > 3.0


def test_bench_attribution_window_sweep_a2(benchmark, delta_run, results_dir):
    artifacts, result = delta_run

    def sweep():
        table = {}
        for seconds in (5.0, 10.0, 20.0, 60.0, 120.0):
            impact = JobImpactAnalysis(
                result.errors,
                result.jobs,
                artifacts.window,
                attribution_window_seconds=seconds,
            ).run()
            table[seconds] = impact.total_gpu_failed_jobs
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["A2 — attribution window sweep (GPU-failed jobs attributed)"]
    lines += [f"  window={w:>5.0f}s: {n}" for w, n in table.items()]
    text = "\n".join(lines)
    write_result(results_dir, "ablation_a2.txt", text)
    print()
    print(text)

    counts = [table[w] for w in (5.0, 10.0, 20.0, 60.0, 120.0)]
    assert counts == sorted(counts)
    # The paper's 20 s window captures nearly all real kill delays;
    # widening to 120 s adds little.
    assert table[120.0] <= 1.1 * table[20.0]
    # Shrinking to 5 s misses a large share (kill delays span 0.5-12 s).
    assert table[5.0] < 0.9 * table[20.0]
