"""E11 — telemetry overhead and the first throughput baseline.

The observability layer promises a near-free disabled path: pipeline
instrumentation is flushed at stage boundaries (the per-line hot loop
is identical with telemetry on or off) and the engine guards its
timing with a single ``metrics is None`` check.  This benchmark holds
that promise to <3% and records the repo's first ``BENCH_obs.json``
throughput baseline (pipeline lines/sec, sim events/sec) so later
hot-path optimisation PRs have a trajectory to beat.
"""

import gc
import json
import time
from pathlib import Path

import pytest

from repro import DeltaStudy, StudyConfig
from repro.obs import Telemetry
from repro.pipeline import run_pipeline

from conftest import write_result

#: Repo-root throughput trajectory file (ROADMAP: BENCH_* series).
BENCH_PATH = Path(__file__).parent.parent / "BENCH_obs.json"

#: Acceptance bound on the disabled-telemetry pipeline overhead.
MAX_DISABLED_OVERHEAD = 0.03

_ROUNDS = 3


@pytest.fixture(scope="module")
def obs_bench_artifacts(tmp_path_factory):
    """A mid-size artifact set: big enough that per-line work dominates,
    small enough to time several full pipeline passes."""
    out = tmp_path_factory.mktemp("obs_bench")
    config = StudyConfig.small(seed=7, job_scale=0.01, include_episode=True)
    DeltaStudy(config).run(out)
    return out


def _interleaved_best(modes, rounds=_ROUNDS):
    """Best wall time per mode over round-robin interleaved passes.

    Interleaving spreads slow drift (cache state, host load, GC debt)
    evenly across the modes instead of charging it to whichever mode
    happened to run last; the per-mode minimum then discards the noise.
    """
    best = {name: float("inf") for name in modes}
    result = None
    for _ in range(rounds):
        for name, fn in modes.items():
            gc.collect()
            t0 = time.perf_counter()
            result = fn()
            best[name] = min(best[name], time.perf_counter() - t0)
    return best, result


def test_bench_disabled_telemetry_overhead(obs_bench_artifacts, results_dir):
    # "off" is the default telemetry=None path every pre-existing
    # caller takes.
    best, result = _interleaved_best(
        {
            "off": lambda: run_pipeline(obs_bench_artifacts),
            "disabled": lambda: run_pipeline(
                obs_bench_artifacts, telemetry=Telemetry.disabled()
            ),
            "on": lambda: run_pipeline(
                obs_bench_artifacts, telemetry=Telemetry.create(seed=7)
            ),
        }
    )
    t_off, t_disabled, t_on = best["off"], best["disabled"], best["on"]

    disabled_overhead = t_disabled / t_off - 1.0
    enabled_overhead = t_on / t_off - 1.0
    lines = result.health.lines_read

    text = "\n".join(
        [
            "E11 — telemetry overhead on the Stage-II pipeline",
            f"lines per pass: {lines}",
            f"baseline (no telemetry): {t_off:.3f} s "
            f"({lines / t_off:,.0f} lines/s)",
            f"disabled bundle: {t_disabled:.3f} s "
            f"({disabled_overhead:+.1%})",
            f"enabled bundle:  {t_on:.3f} s ({enabled_overhead:+.1%})",
        ]
    )
    write_result(results_dir, "obs_overhead.txt", text)
    print()
    print(text)

    assert lines > 200_000
    assert disabled_overhead < MAX_DISABLED_OVERHEAD
    # Stage-boundary flushing keeps even the enabled path cheap (loose
    # bound: shared-host timing noise runs several percent either way).
    assert enabled_overhead < 0.15


def test_bench_write_throughput_baseline(obs_bench_artifacts, results_dir):
    # Pipeline throughput.
    telemetry = Telemetry.create(seed=7)
    t0 = time.perf_counter()
    result = run_pipeline(obs_bench_artifacts, telemetry=telemetry)
    pipeline_seconds = time.perf_counter() - t0
    lines = result.health.lines_read
    bytes_read = telemetry.metrics.value("pipeline_bytes_read_total")

    # Simulation throughput (events through the DES kernel).
    sim_tel = Telemetry.create(seed=7)
    config = StudyConfig.small(seed=7, job_scale=0.01)
    t0 = time.perf_counter()
    DeltaStudy(config).run(telemetry=sim_tel)
    walls = sim_tel.tracer.wall_seconds_by_name()
    engine_seconds = walls["engine-run"]
    sim_events = sum(
        s.value
        for s in sim_tel.metrics.samples()
        if s.name == "sim_events_executed_total"
    )

    baseline = {
        "schema": "repro-bench-v1",
        "benchmark": "obs",
        "workload": {
            "preset": "small",
            "seed": 7,
            "job_scale": 0.01,
            "pipeline_lines": int(lines),
            "sim_events": int(sim_events),
        },
        "pipeline_lines_per_second": round(lines / pipeline_seconds, 1),
        "pipeline_bytes_per_second": round(bytes_read / pipeline_seconds, 1),
        "sim_events_per_second": round(sim_events / engine_seconds, 1),
    }
    BENCH_PATH.write_text(
        json.dumps(baseline, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print()
    print(f"wrote {BENCH_PATH.name}: "
          f"{baseline['pipeline_lines_per_second']:,.0f} lines/s, "
          f"{baseline['sim_events_per_second']:,.0f} events/s")

    assert baseline["pipeline_lines_per_second"] > 0
    assert baseline["sim_events_per_second"] > 0
