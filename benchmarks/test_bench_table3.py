"""E3 — Table III: job distribution, elapsed times, ML/non-ML GPU hours.

Regenerates Table III from the fault-thinned workload run (the paper's
job population is essentially unperturbed by GPU errors, which kill
only 0.23% of jobs at full scale).  Shares, elapsed-time statistics,
and the ML GPU-hour split all come from the accounting records alone,
with ML-ness inferred by the paper's job-name keyword heuristic.

The benchmarked operation is the Table III bucket-statistics pass.
"""

from repro.analysis import JobStatistics
from repro.reporting import render_table3, report_table3

from conftest import write_result


def test_bench_table3(benchmark, workload_run, results_dir):
    artifacts = workload_run
    stats = JobStatistics(artifacts.job_records, artifacts.window)

    rows = benchmark(stats.bucket_stats)

    population = stats.population()
    scale = 0.05  # the run's job_scale; rescales totals to full scale
    table = render_table3(rows, population, scale=scale)
    report = report_table3(stats)
    write_result(results_dir, "table3.txt", table + "\n\n" + report.render())
    print()
    print(table)
    print(report.render())

    assert report.all_ok, report.render()

    # Qualitative shape of the population (Section V-A):
    assert population.single_gpu_fraction > 0.65
    assert population.over_four_fraction < 0.05
    by_label = {r.bucket.label: r for r in rows}
    # ML share of GPU-hours is a minority in every bucket the paper
    # reports as HPC-dominated.
    one = by_label["1"]
    assert one.ml_gpu_hours < one.non_ml_gpu_hours
