"""E17 — co-tenant isolation and heal time under service chaos.

The acceptance claim for the self-healing multi-tenant service: while
one tenant is being actively broken (ingest kills, a torn checkpoint,
an injected disk error), the *other* tenant's clients barely notice —
its p99 stays within ``MAX_P99_RATIO`` of a no-chaos baseline, it
serves zero 5xx — and every injected fault is detected and healed,
with the median detect-to-recovery time recorded.

Records ``BENCH_service_chaos.json`` at the repo root and a rendered
summary under ``benchmarks/results/service_chaos.txt``.
"""

import json
import statistics
import threading
import time
from pathlib import Path

from repro import DeltaStudy, StudyConfig
from repro.loadgen import LoadConfig, build_report, run_load
from repro.stream import (
    ChaosController,
    ChaosEvent,
    GuardConfig,
    MultiTenantService,
    TenantSpec,
)
from repro.stream.chaos import CORRUPT_CHECKPOINT, IO_ERROR, KILL_INGEST

from conftest import write_result

#: Repo-root trajectory file (ROADMAP: BENCH_* series).
BENCH_PATH = Path(__file__).parent.parent / "BENCH_service_chaos.json"

#: The healthy tenant's p99 under co-tenant chaos must stay within
#: this factor of its no-chaos baseline (plus an absolute guard for
#: timer noise on fast routes).
MAX_P99_RATIO = 2.0
_P99_GUARD_MS = 20.0

_LOAD_SECONDS = 6.0
_POLLERS = 16

_GUARD = GuardConfig(
    stall_timeout=30.0,
    watchdog_interval=0.05,
    backoff_base=0.1,
    backoff_max=0.5,
    backoff_jitter=0.0,
    breaker_threshold=5,
    breaker_cooldown=1.0,
    seed=17,
)


def _wait_until(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _run_service(artifact_dir, ckpt_root, chaos=None):
    """Start a two-tenant service on a thread; return (service, thread)."""
    service = MultiTenantService(
        [
            TenantSpec(name="victim", follow_dir=artifact_dir),
            TenantSpec(name="healthy", follow_dir=artifact_dir),
        ],
        port=0,
        checkpoint_root=ckpt_root,
        poll_interval=0.1,
        checkpoint_interval=0.3,
        guard=_GUARD,
        chaos=chaos,
    )
    thread = threading.Thread(
        target=service.run, kwargs={"install_signals": False}
    )
    thread.start()
    return service, thread


def _healthy_load(service):
    """Drive the healthy tenant's routes; return the loadgen report."""
    url = f"http://{service.server.address}"
    result = run_load(
        LoadConfig(
            url=url,
            mode="closed",
            pollers=_POLLERS,
            duration_seconds=_LOAD_SECONDS,
            seed=23,
            routes=("/v1/healthy/fleet", "/v1/healthy/alerts"),
        ),
        fetch_slo=True,
    )
    return build_report(result)


def _stop(service, thread):
    service.stop()
    thread.join(timeout=15.0)


def test_bench_service_chaos(tmp_path_factory, results_dir):
    out = tmp_path_factory.mktemp("service_chaos_bench")
    config = StudyConfig.small(seed=7, job_scale=0.01, include_episode=True)
    DeltaStudy(config).run(out)

    # ---- baseline: same topology, no chaos -------------------------
    service, thread = _run_service(out, tmp_path_factory.mktemp("ckpt_base"))
    try:
        _wait_until(
            lambda: all(
                rt.core.ingest.lines_read > 0 for rt in service.runtimes
            )
        )
        baseline = _healthy_load(service)
    finally:
        _stop(service, thread)
    base_fleet = baseline["routes"]["/v1/healthy/fleet"]["latency_ms"]

    # ---- chaos: one tenant under attack, same load on the other ----
    plan = [
        ChaosEvent(1.0, KILL_INGEST, "victim"),
        ChaosEvent(2.5, CORRUPT_CHECKPOINT, "victim"),
        ChaosEvent(4.0, IO_ERROR, "victim"),
    ]
    service, thread = _run_service(
        out,
        tmp_path_factory.mktemp("ckpt_chaos"),
        chaos=ChaosController(plan),
    )
    try:
        _wait_until(
            lambda: all(
                rt.core.ingest.lines_read > 0 for rt in service.runtimes
            )
        )
        chaos_report = _healthy_load(service)
        healed = _wait_until(
            lambda: (
                service.chaos.exhausted
                and service.supervisor.recoveries["victim"]
                and not any(rt.degraded for rt in service.runtimes)
            )
        )
        recoveries = [
            dict(r) for r in service.supervisor.recoveries["victim"]
        ]
        restarts = dict(service.supervisor.restart_counts["victim"])
        quarantined = len(
            service._by_name["victim"].quarantined_checkpoints
        )
    finally:
        _stop(service, thread)
    chaos_fleet = chaos_report["routes"]["/v1/healthy/fleet"]["latency_ms"]

    recovery_seconds = [r["seconds"] for r in recoveries]
    median_recovery = (
        statistics.median(recovery_seconds) if recovery_seconds else None
    )
    p99_ratio = (
        chaos_fleet["p99"] / base_fleet["p99"] if base_fleet["p99"] else 1.0
    )

    text = "\n".join(
        [
            "E17 — co-tenant isolation and heal time under service chaos",
            f"chaos plan: {len(plan)} faults against tenant 'victim' "
            f"({', '.join(event.kind for event in plan)})",
            f"healthy-tenant /fleet p99: baseline {base_fleet['p99']:.2f} ms"
            f" -> under chaos {chaos_fleet['p99']:.2f} ms "
            f"({p99_ratio:.2f}x)",
            f"healthy-tenant requests: "
            f"{chaos_report['totals']['requests']:,} "
            f"({chaos_report['totals']['errors']} errors)",
            f"shed rate under chaos: "
            f"{chaos_report['shed']['shed_rate'] * 100:.3f}%",
            f"victim restarts: {restarts}",
            f"victim recoveries: {len(recoveries)} "
            f"(median {median_recovery:.3f} s)"
            if median_recovery is not None
            else "victim recoveries: 0",
            f"checkpoints quarantined: {quarantined}",
        ]
    )
    write_result(results_dir, "service_chaos.txt", text)
    print()
    print(text)

    record = {
        "schema": "repro-bench-v1",
        "benchmark": "service_chaos",
        "workload": {
            "preset": "small",
            "seed": 7,
            "job_scale": 0.01,
            "tenants": 2,
            "pollers": _POLLERS,
            "load_seconds": _LOAD_SECONDS,
        },
        "chaos_plan": [
            {"at_seconds": e.at_seconds, "kind": e.kind, "tenant": e.tenant}
            for e in plan
        ],
        "healthy_p99_baseline_ms": round(base_fleet["p99"], 3),
        "healthy_p99_chaos_ms": round(chaos_fleet["p99"], 3),
        "healthy_p99_ratio": round(p99_ratio, 3),
        "healthy_requests": chaos_report["totals"]["requests"],
        "healthy_errors": chaos_report["totals"]["errors"],
        "shed_rate": round(chaos_report["shed"]["shed_rate"], 5),
        "victim_restarts": restarts,
        "victim_recoveries": len(recoveries),
        "median_recovery_seconds": (
            round(median_recovery, 4) if median_recovery is not None else None
        ),
        "checkpoints_quarantined": quarantined,
    }
    BENCH_PATH.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    # Every fault was injected, detected, and healed.
    assert healed, (recoveries, restarts)
    assert recoveries, "no recovery ever recorded"
    assert restarts.get("crash", 0) >= 1
    assert quarantined >= 1, "torn checkpoint was never quarantined"
    # The healthy co-tenant stayed fast and clean.
    assert chaos_report["totals"]["errors"] == 0
    assert chaos_fleet["p99"] <= (
        base_fleet["p99"] * MAX_P99_RATIO + _P99_GUARD_MS
    ), (
        f"healthy-tenant p99 degraded {p99_ratio:.2f}x under co-tenant "
        f"chaos ({base_fleet['p99']:.2f} -> {chaos_fleet['p99']:.2f} ms)"
    )
