"""E16 — load harness at scale and request-instrumentation overhead.

Two acceptance claims measured together:

* **Scale** — a closed loop of 1000 concurrent keep-alive pollers
  drives a real ``repro stream`` service (subprocess, one box) to
  completion with zero 5xx and a schema-stable ``repro-loadgen-v1``
  report carrying the service's own SLO verdicts.
* **Overhead** — the request-observability layer must be free when it
  is off: the E14 stream-drain workload through a ``StreamService``
  with ``request_obs=False`` stays within 5% of the instrumented
  service, and a NOOP dispatch costs single-digit microseconds.

Records ``BENCH_loadgen.json`` at the repo root and a rendered
summary under ``benchmarks/results/loadgen.txt``.
"""

import gc
import json
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro import DeltaStudy, StudyConfig
from repro.loadgen import LoadConfig, build_report, run_load
from repro.stream import FleetHealthServer, StreamService, json_route

from conftest import write_result

#: Repo-root trajectory file (ROADMAP: BENCH_* series).
BENCH_PATH = Path(__file__).parent.parent / "BENCH_loadgen.json"

#: Instrumented drain must stay within this factor of the NOOP drain
#: (plus a small absolute guard for timer noise on short passes).
MAX_OVERHEAD = 1.05

#: The headline scale point: concurrent closed-loop pollers.
POLLERS = 1000

_LOAD_SECONDS = 8.0
_DRAIN_ROUNDS = 3
_DISPATCH_CALLS = 20_000


def _timed_best_interleaved(fns, rounds=_DRAIN_ROUNDS):
    """Best-of-N for several callables, rounds interleaved.

    Alternating the candidates inside each round keeps slow drift
    (page cache, CPU frequency) from biasing one side of an A/B
    comparison the way back-to-back best-of-N does.
    """
    bests = [float("inf")] * len(fns)
    results = [None] * len(fns)
    for _ in range(rounds):
        for i, fn in enumerate(fns):
            gc.collect()
            t0 = time.perf_counter()
            results[i] = fn()
            bests[i] = min(bests[i], time.perf_counter() - t0)
    return bests, results


def _service_drain(artifact_dir, request_obs):
    service = StreamService(
        artifact_dir, port=None, once=True, request_obs=request_obs
    )
    service.poll_once(final=True)
    return service.ingest.lines_read


def _dispatch_cost_ns(observability=None):
    """Mean ns per FleetHealthServer.dispatch of a trivial route."""
    server = FleetHealthServer(
        {"/ping": json_route(lambda: {"pong": True})},
        port=0,
        observability=observability,
    )
    try:
        server.dispatch("/ping")  # warm up
        t0 = time.perf_counter()
        for _ in range(_DISPATCH_CALLS):
            server.dispatch("/ping")
        return (time.perf_counter() - t0) / _DISPATCH_CALLS * 1e9
    finally:
        server.stop()


def _start_service(artifact_dir):
    """Launch ``repro stream`` on an ephemeral port; return (proc, url)."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "stream",
            "--follow", str(artifact_dir),
            "--port", "0",
            "--poll-interval", "0.2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 60.0
    banner = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(
                f"service exited early (rc={proc.poll()}): {banner}"
            )
        banner += line
        match = re.search(r"http://([0-9.]+):(\d+)", line)
        if match:
            return proc, f"http://{match.group(1)}:{match.group(2)}"
    proc.kill()
    raise AssertionError(f"service never printed its address: {banner}")


def test_bench_loadgen_scale_and_overhead(tmp_path_factory, results_dir):
    out = tmp_path_factory.mktemp("loadgen_bench")
    config = StudyConfig.small(seed=7, job_scale=0.01, include_episode=True)
    DeltaStudy(config).run(out)

    # ---- overhead: E14 drain workload, NOOP vs instrumented --------
    (t_plain, t_inst), (lines, _) = _timed_best_interleaved(
        [
            lambda: _service_drain(out, False),
            lambda: _service_drain(out, True),
        ]
    )
    overhead_ratio = t_inst / t_plain
    noop_ns = _dispatch_cost_ns(observability=None)

    # ---- scale: 1000 closed-loop pollers vs a real subprocess ------
    proc, url = _start_service(out)
    try:
        time.sleep(1.0)  # let the first poll build the corpus view
        result = run_load(
            LoadConfig(
                url=url,
                mode="closed",
                pollers=POLLERS,
                duration_seconds=_LOAD_SECONDS,
                seed=16,
            )
        )
        report = build_report(result)
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()

    totals = report["totals"]
    fleet_latency = report["routes"]["/v1/fleet"]["latency_ms"]
    text = "\n".join(
        [
            "E16 — load harness at scale + request-instrumentation overhead",
            f"drain workload: {lines} lines",
            f"drain, request obs off: {t_plain:.3f} s",
            f"drain, request obs on:  {t_inst:.3f} s "
            f"({(overhead_ratio - 1) * 100:+.2f}%)",
            f"NOOP dispatch cost: {noop_ns:,.0f} ns/request",
            f"closed loop: {POLLERS} pollers x {_LOAD_SECONDS:g} s -> "
            f"{totals['requests']:,} requests "
            f"({report['rates']['achieved_per_sec']:,.0f} req/s)",
            f"errors: {totals['errors']} "
            f"(transport {totals['transport_failures']})",
            f"/v1/fleet latency ms: p50={fleet_latency['p50']:.1f} "
            f"p95={fleet_latency['p95']:.1f} p99={fleet_latency['p99']:.1f}",
            f"poller fairness (Jain): {report['fairness']['jain_index']:.4f}",
            "SLO verdicts: "
            + ", ".join(
                f"{name}={digest['verdict']}"
                for name, digest in sorted(report["slo"]["verdicts"].items())
            ),
        ]
    )
    write_result(results_dir, "loadgen.txt", text)
    print()
    print(text)

    record = {
        "schema": "repro-bench-v1",
        "benchmark": "loadgen",
        "workload": {
            "preset": "small",
            "seed": 7,
            "job_scale": 0.01,
            "pipeline_lines": int(lines),
        },
        "drain_seconds_noop": round(t_plain, 4),
        "drain_seconds_instrumented": round(t_inst, 4),
        "drain_overhead_ratio": round(overhead_ratio, 4),
        "noop_dispatch_ns": round(noop_ns, 1),
        "pollers": POLLERS,
        "load_seconds": _LOAD_SECONDS,
        "requests": totals["requests"],
        "errors": totals["errors"],
        "achieved_per_sec": round(report["rates"]["achieved_per_sec"], 1),
        "fleet_p50_ms": round(fleet_latency["p50"], 3),
        "fleet_p99_ms": round(fleet_latency["p99"], 3),
        "jain_fairness": round(report["fairness"]["jain_index"], 4),
        "slo_verdicts": {
            name: digest["verdict"]
            for name, digest in sorted(report["slo"]["verdicts"].items())
        },
    }
    BENCH_PATH.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    # Scale: the full poller fleet completed real work with no 5xx.
    assert report["schema"] == "repro-loadgen-v1"
    assert totals["requests"] >= POLLERS
    assert totals["errors"] == 0
    assert len(result.per_poller_requests) == POLLERS
    assert report["slo"] is not None
    assert set(report["slo"]["verdicts"]) >= {
        "fleet-availability", "fleet-latency",
        "alerts-availability", "alerts-latency",
        "ingest-freshness",
    }
    # Overhead: instrumentation must be free when off (small absolute
    # guard absorbs timer noise on short drains).
    assert t_inst <= t_plain * MAX_OVERHEAD + 0.02, (
        f"instrumented drain {t_inst:.3f}s vs noop {t_plain:.3f}s "
        f"({overhead_ratio:.3f}x)"
    )
