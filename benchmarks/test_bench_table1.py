"""E1 — Table I: GPU error counts and MTBE, pre-op vs operational.

Regenerates the paper's Table I from raw artifacts: Stage-II output is
fed to :class:`~repro.analysis.mtbe.MtbeAnalysis`, the table is
rendered next to the paper's published counts, and every large-count
cell is asserted to sit within its tolerance band.

The benchmarked operation is the Table I computation itself (error
stream → per-class, per-period counts and MTBEs).
"""

from repro.analysis import MtbeAnalysis
from repro.core.periods import PeriodName
from repro.core.xid import EventClass
from repro.reporting import render_table1, report_table1

from conftest import write_result


def test_bench_table1(benchmark, delta_run, results_dir):
    artifacts, result = delta_run

    def compute():
        analysis = MtbeAnalysis(
            result.errors, artifacts.window, artifacts.node_count
        )
        analysis.table1()
        return analysis

    analysis = benchmark(compute)

    table = render_table1(analysis)
    report = report_table1(analysis)
    write_result(
        results_dir, "table1.txt", table + "\n\n" + report.render()
    )
    print()
    print(table)
    print(report.render())

    # Every Table I comparison must hold at this scale and seed.
    assert report.all_ok, report.render()

    # The paper's qualitative orderings must hold regardless of bands:
    op = PeriodName.OPERATIONAL
    gsp = analysis.class_stat(op, EventClass.GSP_ERROR)
    mmu = analysis.class_stat(op, EventClass.MMU_ERROR)
    nvlink = analysis.class_stat(op, EventClass.NVLINK_ERROR)
    # MMU, GSP, NVLink dominate the operational error mix (>98%).
    dominant = gsp.count + mmu.count + nvlink.count
    total = analysis.overall(op, exclude_outliers=False).count
    assert dominant / total > 0.95
