"""E5 — headline findings (abstract / Section I).

Regenerates, from one run's raw artifacts:

(i)   the 23% per-node MTBE degradation (199 h → 154 h),
(ii)  the ~160x memory-vs-hardware MTBE ratio,
(iii) the ~5.6x GSP degradation factor,
(iv)  the ~54% NVLink job-failure fraction,

and — ablation A5 — verifies the degradation story: with the
mechanistic utilization coupling substituted for the measured pre-op
rates, the utilization jump alone reproduces the GSP degradation.

The benchmarked operation is the composite headline computation.
"""

from repro.analysis import compute_headline
from repro.core.periods import PeriodName
from repro.faults.config import UtilizationCouplingConfig
from repro.reporting import report_headline

from conftest import write_result


def test_bench_headline(benchmark, delta_run, results_dir):
    artifacts, result = delta_run

    headline = benchmark(
        lambda: compute_headline(
            result.errors,
            result.jobs,
            result.downtime,
            artifacts.window,
            artifacts.node_count,
        )
    )

    report = report_headline(
        result.errors, result.jobs, artifacts.window, artifacts.node_count
    )
    write_result(results_dir, "headline.txt", report.render())
    print()
    print(report.render())
    assert report.all_ok, report.render()

    # Orderings the paper leads with:
    assert headline.op_per_node_mtbe_hours < headline.pre_op_per_node_mtbe_hours
    assert headline.memory_vs_hardware_ratio > 50  # memory vastly safer
    assert headline.gsp_degradation_factor > 2.0  # GSP much worse in op
    assert 0.30 < headline.nvlink_job_failure_fraction < 0.80


def test_bench_coupling_ablation_a5(benchmark, results_dir):
    """A5: the utilization law alone reproduces the GSP factor."""

    coupling = UtilizationCouplingConfig()

    def derived_factor():
        op_mult = coupling.rate_multiplier(PeriodName.OPERATIONAL)
        pre_mult = coupling.rate_multiplier(PeriodName.PRE_OPERATIONAL)
        return op_mult / pre_mult

    factor = benchmark(derived_factor)
    write_result(
        results_dir,
        "ablation_a5.txt",
        f"GSP degradation factor from utilization law alone: {factor:.2f} "
        "(paper: 5.6)",
    )
    assert 4.5 <= factor <= 6.7
