#!/usr/bin/env python3
"""Temporal and spatial error characterization of a study run.

Goes beyond the paper's tables using the extension analyses:

* monthly error-rate series per class (the trend behind the pre-op/op
  comparison);
* burstiness: inter-arrival CV and an exponentiality (KS) test per
  class — hardware episodes make most classes decisively non-Poisson;
* spatial concentration: Gini coefficient and the repeat-offender
  ranking Delta's SREs use for replacement decisions.

Usage::

    python examples/error_trends.py [--seed 7]
"""

import argparse
import tempfile
from pathlib import Path

from repro import DeltaStudy, StudyConfig
from repro.analysis import (
    burstiness_by_class,
    repeat_offenders,
    spatial_stats,
    trend_ratio,
)
from repro.analysis.temporal import monthly_error_series
from repro.core.xid import EventClass
from repro.pipeline import run_pipeline


def sparkline(values, width=48) -> str:
    """Render a count series as a unicode sparkline."""
    blocks = " ▁▂▃▄▅▆▇█"
    if len(values) > width:
        # Downsample by averaging buckets.
        step = len(values) / width
        values = [
            sum(values[int(i * step): int((i + 1) * step)])
            / max(1, len(values[int(i * step): int((i + 1) * step)]))
            for i in range(width)
        ]
    peak = max(values) if len(values) and max(values) > 0 else 1
    return "".join(blocks[int(v / peak * (len(blocks) - 1))] for v in values)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    out = Path(tempfile.mkdtemp(prefix="repro-trends-"))
    print("== simulating a small study ==")
    config = StudyConfig.small(seed=args.seed, include_episode=True, job_scale=0.02)
    artifacts = DeltaStudy(config).run(out)
    result = run_pipeline(out)
    print(f"{len(result.errors)} coalesced errors over {artifacts.window.total_days:.0f} days")

    print("\n== monthly error trend per class ==")
    for event_class in (
        EventClass.MMU_ERROR,
        EventClass.GSP_ERROR,
        EventClass.NVLINK_ERROR,
        EventClass.UNCONTAINED_MEMORY_ERROR,
    ):
        _, counts = monthly_error_series(
            result.errors, artifacts.window, event_class
        )
        ratio = trend_ratio(result.errors, artifacts.window, event_class)
        trend = f"op/pre rate ratio {ratio:5.2f}" if ratio else "no pre-op data   "
        print(f"{event_class.value:>26s} {trend}  {sparkline(list(counts))}")

    print("\n== burstiness (operational period) ==")
    print(f"{'class':>26s} {'n':>6s} {'mean gap':>10s} {'CV':>6s} {'poisson?':>9s}")
    for event_class, stats in burstiness_by_class(
        result.errors, artifacts.window
    ).items():
        if stats.mean_hours is None:
            continue
        poisson = (
            "yes" if stats.ks_pvalue is not None and stats.ks_pvalue > 0.05
            else "no"
        )
        print(
            f"{event_class.value:>26s} {stats.count:>6d} "
            f"{stats.mean_hours:>9.2f}h {stats.cv:>6.2f} {poisson:>9s}"
        )

    print("\n== spatial concentration ==")
    stats = spatial_stats(result.errors)
    print(
        f"{stats.total_errors} errors over {stats.units_with_errors} GPUs; "
        f"Gini={stats.gini:.2f}, top unit holds {stats.top1_share * 100:.0f}%"
    )
    print("top offenders (SRE replacement candidates):")
    for unit in repeat_offenders(result.errors, min_count=50)[:5]:
        print(
            f"  {unit.node}/gpu{unit.gpu_key}: {unit.count} errors "
            f"({unit.share * 100:.1f}%)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
