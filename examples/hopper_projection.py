#!/usr/bin/env python3
"""Grace Hopper projection: what would this study find on H100 nodes?

The paper's stated future work extends the analysis to NVIDIA Grace
Hopper systems.  This example runs the same pipeline against the
projected H100 scenario (see ``repro.calibration.hopper`` for the
documented assumptions) and compares it with the measured A100
baseline: per-node MTBE, the memory-vs-hardware ratio, and projected
availability.

Usage::

    python examples/hopper_projection.py [--gsp-mult 0.35] [--seed 5]

Numbers on the H100 side are *projections under stated multipliers*,
not measurements — the point is that the whole study tooling transfers
to the next system unchanged.
"""

import argparse
import tempfile
from pathlib import Path

from repro import DeltaStudy, StudyConfig
from repro.analysis import AvailabilityAnalysis, MtbeAnalysis
from repro.calibration.hopper import HopperProjection, hopper_study_config
from repro.core.periods import PeriodName
from repro.pipeline import run_pipeline


def measure(config, label):
    out = Path(tempfile.mkdtemp(prefix=f"repro-{label}-"))
    artifacts = DeltaStudy(config).run(out)
    result = run_pipeline(out)
    mtbe = MtbeAnalysis(result.errors, artifacts.window, artifacts.node_count)
    op = mtbe.overall(PeriodName.OPERATIONAL)
    availability = AvailabilityAnalysis(
        result.downtime, artifacts.window, artifacts.node_count
    ).report(op.per_node_mtbe_hours)
    return {
        "per_node_mtbe_h": op.per_node_mtbe_hours,
        "memory_ratio": mtbe.memory_vs_hardware_ratio(),
        "availability": availability.availability_formula,
        "downtime_min_day": availability.downtime_minutes_per_day,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gsp-mult", type=float, default=0.35)
    parser.add_argument("--nvlink-mult", type=float, default=0.8)
    parser.add_argument("--memory-mult", type=float, default=1.6)
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--job-scale", type=float, default=0.02)
    args = parser.parse_args(argv)

    print("== A100 baseline (Delta calibration) ==")
    a100 = measure(
        StudyConfig.delta(seed=args.seed, job_scale=args.job_scale), "a100"
    )

    projection = HopperProjection(
        gsp_rate_multiplier=args.gsp_mult,
        nvlink_rate_multiplier=args.nvlink_mult,
        memory_rate_multiplier=args.memory_mult,
    )
    print("== H100 projection (DeltaAI-like, 114 GH200 nodes) ==")
    h100 = measure(
        hopper_study_config(
            seed=args.seed + 1, job_scale=args.job_scale, projection=projection
        ),
        "h100",
    )

    rows = (
        ("operational per-node MTBE (h)", "per_node_mtbe_h", "{:.0f}"),
        ("memory vs non-memory MTBE ratio", "memory_ratio", "{:.0f}x"),
        ("availability", "availability", "{:.4f}"),
        ("downtime (min/node/day)", "downtime_min_day", "{:.1f}"),
    )
    print(f"\n{'metric':<34s} {'A100 (measured)':>16s} {'H100 (projected)':>17s}")
    print("-" * 70)
    for label, key, fmt in rows:
        print(
            f"{label:<34s} {fmt.format(a100[key]):>16s} "
            f"{fmt.format(h100[key]):>17s}"
        )

    gain = h100["per_node_mtbe_h"] / a100["per_node_mtbe_h"]
    print(
        f"\nunder these assumptions the projected per-node MTBE improves "
        f"{gain:.2f}x, dominated by the GSP multiplier "
        f"({projection.gsp_rate_multiplier})."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
