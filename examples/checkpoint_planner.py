#!/usr/bin/env python3
"""Checkpoint planning against measured GPU failures (Section V-B).

The paper observes that, except for MMU and NVLink errors, no GPU
hardware error can be absorbed at the application level — long jobs
must checkpoint.  This example:

1. simulates a cluster study and attributes job failures to GPU errors
   (the paper's Table II machinery);
2. quantifies the GPU-hours lost to those failures;
3. sweeps checkpoint intervals to find the policy that maximizes net
   saved compute (recomputation avoided minus checkpoint overhead).

Usage::

    python examples/checkpoint_planner.py [--overhead 0.02] [--restart-min 5]
"""

import argparse
import tempfile
from pathlib import Path

from repro import DeltaStudy, StudyConfig
from repro.analysis import JobImpactAnalysis
from repro.analysis.mitigation import MitigationAnalysis
from repro.pipeline import run_pipeline

INTERVALS_HOURS = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--overhead", type=float, default=0.02,
                        help="checkpoint runtime overhead fraction")
    parser.add_argument("--restart-min", type=float, default=5.0,
                        help="restart time after a failure, minutes")
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args(argv)

    out = Path(tempfile.mkdtemp(prefix="repro-ckpt-"))
    print("== simulating a small study with the calibrated fault suite ==")
    config = StudyConfig.small(seed=args.seed, job_scale=0.05)
    artifacts = DeltaStudy(config).run(out)
    result = run_pipeline(out)

    impact = JobImpactAnalysis(result.errors, result.jobs, artifacts.window).run()
    print(
        f"{impact.total_gpu_failed_jobs} of {impact.total_jobs_analyzed} "
        "operational GPU jobs were ended by GPU errors"
    )

    mitigation = MitigationAnalysis(
        result.jobs, impact.gpu_failed_job_ids, artifacts.window
    )
    lost = mitigation.lost_gpu_hours()
    print(f"GPU-hours lost without checkpointing: {lost:.1f}")

    print(
        f"\n== checkpoint interval sweep "
        f"(overhead {args.overhead * 100:.1f}%, restart {args.restart_min:.0f} min) =="
    )
    header = f"{'interval':>10s} {'lost w/ ckpt':>13s} {'overhead':>10s} {'net benefit':>12s}"
    print(header)
    print("-" * len(header))
    for report in mitigation.sweep(
        INTERVALS_HOURS, args.overhead, args.restart_min
    ):
        print(
            f"{report.policy.interval_hours:>9.2f}h "
            f"{report.lost_with_checkpointing:>12.1f}h "
            f"{report.checkpoint_overhead:>9.1f}h "
            f"{report.net_benefit:>+11.1f}h"
        )

    best = mitigation.best_policy(INTERVALS_HOURS, args.overhead, args.restart_min)
    print(
        f"\nbest interval: {best.policy.interval_hours:g} h "
        f"(net benefit {best.net_benefit:+.1f} GPU-hours over the period)"
    )
    if best.net_benefit <= 0:
        print(
            "checkpointing does not pay off at this failure rate/overhead — "
            "try --overhead 0.005"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
