#!/usr/bin/env python3
"""Checkpoint planning against measured GPU failures (Section V-B).

The paper observes that, except for MMU and NVLink errors, no GPU
hardware error can be absorbed at the application level — long jobs
must checkpoint.  This example:

1. simulates a cluster study and attributes job failures to GPU errors
   (the paper's Table II machinery);
2. quantifies the GPU-hours lost to those failures;
3. sweeps checkpoint intervals to find the policy that maximizes net
   saved compute (recomputation avoided minus checkpoint overhead);
4. compares the measured sweep against the analytic Young/Daly optimum
   from the calibrated goodput model (``repro recover-sweep``).

Artifacts go to a temporary directory that is removed on exit; pass
``--out DIR`` to keep them.

Usage::

    python examples/checkpoint_planner.py [--overhead 0.02] [--restart-min 5]
    python examples/checkpoint_planner.py --out /tmp/ckpt-study
"""

import argparse
import shutil
import tempfile
from pathlib import Path

from repro import DeltaStudy, StudyConfig
from repro.analysis import JobImpactAnalysis
from repro.analysis.checkpoint import (
    MEASURED_INTERVALS_HOURS,
    calibrated_model,
    measured_sweep,
    render_measured_sweep,
    sweep,
)
from repro.analysis.mitigation import MitigationAnalysis
from repro.pipeline import run_pipeline


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--overhead", type=float, default=0.02,
                        help="checkpoint runtime overhead fraction")
    parser.add_argument("--restart-min", type=float, default=5.0,
                        help="restart time after a failure, minutes")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--out", type=Path, default=None,
                        help="artifact directory to keep (default: a "
                             "temporary directory, removed on exit)")
    args = parser.parse_args(argv)

    if args.out is not None:
        out, cleanup = args.out, False
        out.mkdir(parents=True, exist_ok=True)
    else:
        out, cleanup = Path(tempfile.mkdtemp(prefix="repro-ckpt-")), True
    try:
        print("== simulating a small study with the calibrated fault suite ==")
        config = StudyConfig.small(seed=args.seed, job_scale=0.05)
        artifacts = DeltaStudy(config).run(out)
        result = run_pipeline(out)

        impact = JobImpactAnalysis(
            result.errors, result.jobs, artifacts.window
        ).run()
        print(
            f"{impact.total_gpu_failed_jobs} of {impact.total_jobs_analyzed} "
            "operational GPU jobs were ended by GPU errors"
        )

        mitigation = MitigationAnalysis(
            result.jobs, impact.gpu_failed_job_ids, artifacts.window
        )
        lost = mitigation.lost_gpu_hours()
        print(f"GPU-hours lost without checkpointing: {lost:.1f}")

        print(
            f"\n== checkpoint interval sweep "
            f"(overhead {args.overhead * 100:.1f}%, "
            f"restart {args.restart_min:.0f} min) =="
        )
        reports = measured_sweep(
            result.jobs,
            impact.gpu_failed_job_ids,
            artifacts.window,
            overhead_fraction=args.overhead,
            restart_minutes=args.restart_min,
        )
        print(render_measured_sweep(reports))

        best = mitigation.best_policy(
            MEASURED_INTERVALS_HOURS, args.overhead, args.restart_min
        )
        print(
            f"\nbest interval: {best.policy.interval_hours:g} h "
            f"(net benefit {best.net_benefit:+.1f} GPU-hours over the period)"
        )
        if best.net_benefit <= 0:
            print(
                "checkpointing does not pay off at this failure rate/"
                "overhead — try --overhead 0.005"
            )

        print("\n== analytic reference (calibrated goodput model) ==")
        analytic = sweep(calibrated_model(gang_nodes=2))
        print(
            f"Young optimum {analytic.young_interval_hours:.2f} h, "
            f"Daly {analytic.daly_interval_hours:.2f} h, swept optimum "
            f"{analytic.optimal_interval_hours:.2f} h "
            f"(goodput {analytic.optimal_row.goodput:.4f})"
        )
        if cleanup:
            print("\n(temporary artifacts removed; pass --out DIR to keep them)")
        else:
            print(f"\nartifacts kept in {out}")
        return 0
    finally:
        if cleanup:
            shutil.rmtree(out, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
