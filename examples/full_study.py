#!/usr/bin/env python3
"""Full Delta reproduction: every table, figure, and headline finding.

Runs the complete calibrated study (106 A100 nodes, 1170 days) plus the
fault-thinned workload run, executes the whole analysis pipeline, and
writes every rendered table/figure and paper-vs-measured comparison
into an output directory.  This is the programmatic equivalent of the
benchmark harness, intended as the "reproduce the whole paper" entry
point.

Usage::

    python examples/full_study.py [output_dir] [--job-scale 0.05] [--seed 2022]

Expect a few minutes of runtime at the default scale.
"""

import argparse
import sys
from pathlib import Path

from repro import DeltaStudy, StudyConfig
from repro.analysis import (
    AvailabilityAnalysis,
    JobImpactAnalysis,
    JobStatistics,
    MtbeAnalysis,
)
from repro.core.periods import PeriodName
from repro.pipeline import run_pipeline
from repro.reporting import (
    build_all_reports,
    figure2_csv,
    render_figure2,
    render_table1,
    render_table2,
    render_table3,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output_dir", nargs="?", default="full-study-out")
    parser.add_argument("--job-scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=2022)
    args = parser.parse_args(argv)

    out = Path(args.output_dir)
    out.mkdir(parents=True, exist_ok=True)

    print(f"== simulating the full study (job_scale={args.job_scale}) ==")
    config = StudyConfig.delta(seed=args.seed, job_scale=args.job_scale)
    artifacts = DeltaStudy(config).run(out / "artifacts")
    print(artifacts.summary())

    print("\n== running the Stage-II pipeline ==")
    result = run_pipeline(out / "artifacts")
    print(
        f"{result.raw_hits} raw error lines -> {len(result.errors)} errors; "
        f"{len(result.downtime)} downtime episodes; {len(result.jobs)} jobs"
    )

    print("\n== workload-focused run for Table III ==")
    workload_config = StudyConfig.delta_workload_focused(
        seed=args.seed + 1, job_scale=args.job_scale
    )
    workload_artifacts = DeltaStudy(workload_config).run(None)

    # ---- render everything -------------------------------------------------
    mtbe = MtbeAnalysis(result.errors, artifacts.window, artifacts.node_count)
    impact = JobImpactAnalysis(result.errors, result.jobs, artifacts.window).run()
    job_stats = JobStatistics(workload_artifacts.job_records, artifacts.window)
    availability = AvailabilityAnalysis(
        result.downtime, artifacts.window, artifacts.node_count
    )
    distribution = availability.distribution()

    table1 = render_table1(mtbe)
    table2 = render_table2(impact)
    table3 = render_table3(
        job_stats.bucket_stats(), job_stats.population(), scale=args.job_scale
    )
    figure2 = render_figure2(distribution)

    (out / "table1.txt").write_text(table1 + "\n")
    (out / "table2.txt").write_text(table2 + "\n")
    (out / "table3.txt").write_text(table3 + "\n")
    (out / "figure2.txt").write_text(figure2 + "\n")
    (out / "figure2.csv").write_text(figure2_csv(distribution) + "\n")

    for name, text in (
        ("Table I", table1),
        ("Table II", table2),
        ("Table III", table3),
        ("Figure 2", figure2),
    ):
        print(f"\n==== {name} ====")
        print(text)

    # ---- paper comparisons -------------------------------------------------
    print("\n==== paper-vs-measured comparisons ====")
    reports = build_all_reports(
        result.errors,
        result.jobs,
        result.downtime,
        artifacts.window,
        artifacts.node_count,
    )
    # Table III / population comparisons use the workload-focused run.
    from repro.reporting import report_table3

    reports[2] = report_table3(job_stats)
    comparison_text = []
    for report in reports:
        print()
        print(report.render())
        comparison_text.append(report.render_markdown())
    (out / "comparisons.md").write_text("\n".join(comparison_text))

    failures = [c for r in reports for c in r.failures]
    print(
        f"\n{sum(len(r.comparisons) for r in reports) - len(failures)}"
        f"/{sum(len(r.comparisons) for r in reports)} comparisons within tolerance"
    )
    # Headline one-liners.
    op = mtbe.overall(PeriodName.OPERATIONAL)
    pre = mtbe.overall(PeriodName.PRE_OPERATIONAL)
    print(
        f"\nper-node MTBE: {pre.per_node_mtbe_hours:.0f} h (pre-op) -> "
        f"{op.per_node_mtbe_hours:.0f} h (op); paper: 199 -> 154"
    )
    ratio = mtbe.memory_vs_hardware_ratio()
    print(f"memory vs non-memory per-node MTBE ratio: {ratio:.0f}x; paper: ~160x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
