#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from fresh runs.

Runs the calibrated full study plus the fault-thinned workload run,
executes the complete Stage-II/III pipeline, and writes the
paper-vs-measured record to EXPERIMENTS.md (or a path of your choice).

Usage::

    python examples/generate_experiments.py [path] [--seed 2022] [--job-scale 0.05]

Expect a few minutes of runtime at the default scale.
"""

import argparse
import tempfile
import time
from pathlib import Path

from repro import DeltaStudy, StudyConfig
from repro.pipeline import run_pipeline
from repro.reporting.experiments_md import build_experiments_markdown


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", nargs="?", default="EXPERIMENTS.md")
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--job-scale", type=float, default=0.05)
    args = parser.parse_args(argv)

    started = time.time()
    work = Path(tempfile.mkdtemp(prefix="repro-experiments-"))

    print("== calibrated full run ==")
    config = StudyConfig.delta(seed=args.seed, job_scale=args.job_scale)
    artifacts = DeltaStudy(config).run(work)
    result = run_pipeline(work)
    print(artifacts.summary())

    print("== fault-thinned workload run ==")
    workload_config = StudyConfig.delta_workload_focused(
        seed=args.seed + 1, job_scale=args.job_scale
    )
    workload_artifacts = DeltaStudy(workload_config).run(None)

    elapsed_minutes = (time.time() - started) / 60.0
    description = (
        f"Calibrated run: `StudyConfig.delta(seed={args.seed}, "
        f"job_scale={args.job_scale})` — 106 A100 nodes, 1170-day window, "
        f"{len(result.errors):,} coalesced errors from "
        f"{result.extraction_stats.total_lines:,} raw log lines, "
        f"{len(result.jobs):,} job records.  Workload run: "
        f"`StudyConfig.delta_workload_focused(seed={args.seed + 1})` — "
        f"{len(workload_artifacts.job_records):,} job records with faults "
        f"thinned to 2%.  Generated in {elapsed_minutes:.1f} minutes by "
        "`examples/generate_experiments.py`."
    )

    markdown = build_experiments_markdown(
        errors=result.errors,
        jobs=result.jobs,
        downtime=result.downtime,
        workload_jobs=workload_artifacts.job_records,
        window=artifacts.window,
        node_count=artifacts.node_count,
        run_description=description,
    )
    Path(args.path).write_text(markdown, encoding="utf-8")
    print(f"\nwrote {args.path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
