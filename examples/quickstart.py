#!/usr/bin/env python3
"""Quickstart: simulate a small GPU cluster study and analyze it.

Runs a shrunken Delta (8 A100 nodes, 80 days) with the full calibrated
fault suite, writes the raw artifacts (day-partitioned syslog, Slurm
accounting CSV, hardware inventory), then runs the paper's Stage-II/III
pipeline over those artifacts and prints Table I/II-style statistics.

Usage::

    python examples/quickstart.py [output_dir]
"""

import sys
import tempfile
from pathlib import Path

from repro import DeltaStudy, StudyConfig
from repro.analysis import JobImpactAnalysis, MtbeAnalysis
from repro.pipeline import run_pipeline
from repro.reporting import render_table1, render_table2


def main() -> int:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="repro-quickstart-")
    )

    print("== 1. Simulate a small study (8 A100 nodes, 80 days) ==")
    config = StudyConfig.small(seed=7, include_episode=True, job_scale=0.03)
    artifacts = DeltaStudy(config).run(out)
    print(artifacts.summary())
    print(f"artifacts written to: {out}")

    print("\n== 2. Run the Stage-II pipeline over the raw artifacts ==")
    result = run_pipeline(out)
    stats = result.extraction_stats
    print(
        f"scanned {stats.total_lines} raw lines, matched {stats.matched_lines}, "
        f"excluded {stats.excluded_xid_lines} XID 13/43 lines"
    )
    print(
        f"coalesced to {len(result.errors)} errors "
        f"({result.coalescing_reduction:.1f}x reduction); "
        f"{len(result.downtime)} downtime episodes recovered"
    )

    print("\n== 3. Table I-style error statistics ==")
    mtbe = MtbeAnalysis(result.errors, artifacts.window, artifacts.node_count)
    print(render_table1(mtbe, include_paper=False))
    if mtbe.outliers:
        top = mtbe.outliers[0]
        print(
            f"\noutlier unit detected: {top.node}/gpu{top.gpu_key} produced "
            f"{top.count} {top.event_class.value} errors "
            f"({top.share * 100:.0f}% of that class)"
        )

    print("\n== 4. Table II-style job impact ==")
    impact = JobImpactAnalysis(result.errors, result.jobs, artifacts.window).run()
    print(render_table2(impact, include_paper=False))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
