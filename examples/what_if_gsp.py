#!/usr/bin/env python3
"""What-if: how much reliability does fixing the GSP buy?

The paper identifies the GPU System Processor (GSP) as the most
vulnerable A100 hardware component: 100% of GSP errors kill user jobs
and every one costs a node reboot.  NVIDIA's practical workaround at
the time was disabling GSP firmware offload.  This example runs the
calibrated study twice — as measured, and with GSP faults eliminated —
and compares per-node MTBE, availability, and GSP-attributed job
failures.

By default it runs the full Delta geometry (106 nodes, 1170 days,
~2 minutes per variant).  Pass ``--small`` for a quick shrunken run;
note that the small configuration compresses Table-I-scale error
counts into 8 nodes and 80 days, so its *absolute* availability is far
more pessimistic than Delta's — only the relative improvement is
meaningful there.

Usage::

    python examples/what_if_gsp.py [--seed 3] [--small]
"""

import argparse
import tempfile
from dataclasses import replace
from pathlib import Path

from repro import DeltaStudy, StudyConfig
from repro.analysis import (
    AvailabilityAnalysis,
    JobImpactAnalysis,
    MtbeAnalysis,
)
from repro.core.periods import PeriodName
from repro.core.xid import EventClass
from repro.pipeline import run_pipeline


def run_variant(seed: int, disable_gsp: bool, small: bool):
    if small:
        config = StudyConfig.small(seed=seed, job_scale=0.05)
    else:
        config = StudyConfig.delta(seed=seed, job_scale=0.02)
    if disable_gsp:
        suite = config.fault_suite
        patched = tuple(
            replace(cfg, pre_op_count=0.0, op_count=0.0)
            if cfg.event_class is EventClass.GSP_ERROR
            else cfg
            for cfg in suite.simple_faults
        )
        config = replace(config, fault_suite=replace(suite, simple_faults=patched))
    out = Path(tempfile.mkdtemp(prefix="repro-gsp-"))
    artifacts = DeltaStudy(config).run(out)
    result = run_pipeline(out)
    mtbe = MtbeAnalysis(result.errors, artifacts.window, artifacts.node_count)
    op_stat = mtbe.overall(PeriodName.OPERATIONAL)
    impact = JobImpactAnalysis(result.errors, result.jobs, artifacts.window).run()
    gsp_row = impact.per_class.get(EventClass.GSP_ERROR)
    availability = AvailabilityAnalysis(
        result.downtime, artifacts.window, artifacts.node_count
    ).report(op_stat.per_node_mtbe_hours)
    return {
        "per_node_mtbe_h": op_stat.per_node_mtbe_hours,
        "gsp_failed_jobs": gsp_row.gpu_failed_jobs if gsp_row else 0,
        "availability": availability.availability_formula,
        "downtime_min_per_day": availability.downtime_minutes_per_day,
        "downtime_episodes": availability.episodes,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--small", action="store_true",
                        help="quick shrunken run (relative numbers only)")
    args = parser.parse_args(argv)

    print("== baseline: GSP as measured on Delta ==")
    baseline = run_variant(args.seed, disable_gsp=False, small=args.small)
    print("== what-if: GSP faults eliminated ==")
    fixed = run_variant(args.seed, disable_gsp=True, small=args.small)

    rows = (
        ("operational per-node MTBE (h)", "per_node_mtbe_h", "{:.0f}"),
        ("GSP-attributed job failures", "gsp_failed_jobs", "{:d}"),
        ("availability", "availability", "{:.4f}"),
        ("downtime (min/node/day)", "downtime_min_per_day", "{:.1f}"),
        ("downtime episodes", "downtime_episodes", "{:d}"),
    )
    print(f"\n{'metric':<32s} {'baseline':>12s} {'GSP fixed':>12s}")
    print("-" * 58)
    for label, key, fmt in rows:
        print(
            f"{label:<32s} {fmt.format(baseline[key]):>12s} "
            f"{fmt.format(fixed[key]):>12s}"
        )

    gain = fixed["per_node_mtbe_h"] / baseline["per_node_mtbe_h"]
    print(
        f"\neliminating GSP faults improves per-node MTBE by {gain:.2f}x and "
        f"removes all {baseline['gsp_failed_jobs']} GSP-attributed job "
        "failures in this run"
    )
    if args.small:
        print(
            "(small configuration: error rates are compressed ~175x versus "
            "Delta, so absolute availability is pessimistic — compare "
            "columns, not values)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
